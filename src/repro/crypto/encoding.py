"""Byte-level encodings: Bitcoin varints, Base58(Check), safe readers.

Serialization matters in this reproduction because the evaluation metric of
the paper is *bytes on the wire*.  Every proof object serializes through
these helpers, and reported sizes are ``len(serialize())`` — never an
estimate.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256d
from repro.errors import EncodingError

_BASE58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_BASE58_INDEX = {char: value for value, char in enumerate(_BASE58_ALPHABET)}


def write_varint(value: int) -> bytes:
    """Encode ``value`` as a Bitcoin CompactSize varint."""
    if value < 0:
        raise EncodingError(f"varint cannot encode negative value {value}")
    if value < 0xFD:
        return value.to_bytes(1, "little")
    if value <= 0xFFFF:
        return b"\xfd" + value.to_bytes(2, "little")
    if value <= 0xFFFF_FFFF:
        return b"\xfe" + value.to_bytes(4, "little")
    if value <= 0xFFFF_FFFF_FFFF_FFFF:
        return b"\xff" + value.to_bytes(8, "little")
    raise EncodingError(f"varint overflow: {value}")


def varint_size(value: int) -> int:
    """Number of bytes :func:`write_varint` uses for ``value``."""
    if value < 0:
        raise EncodingError(f"varint cannot encode negative value {value}")
    if value < 0xFD:
        return 1
    if value <= 0xFFFF:
        return 3
    if value <= 0xFFFF_FFFF:
        return 5
    if value <= 0xFFFF_FFFF_FFFF_FFFF:
        return 9
    raise EncodingError(f"varint overflow: {value}")


def read_varint(data: bytes, offset: int = 0) -> "tuple[int, int]":
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    if offset >= len(data):
        raise EncodingError("varint: out of data")
    first = data[offset]
    if first < 0xFD:
        return first, offset + 1
    widths = {0xFD: 2, 0xFE: 4, 0xFF: 8}
    width = widths[first]
    end = offset + 1 + width
    if end > len(data):
        raise EncodingError("varint: truncated payload")
    value = int.from_bytes(data[offset + 1 : end], "little")
    # Reject non-canonical encodings so every value has exactly one form.
    if varint_size(value) != 1 + width:
        raise EncodingError(f"varint: non-canonical encoding of {value}")
    return value, end


def read_exact(data: bytes, offset: int, length: int) -> "tuple[bytes, int]":
    """Slice ``length`` bytes at ``offset`` or raise :class:`EncodingError`."""
    end = offset + length
    if length < 0 or end > len(data):
        raise EncodingError(
            f"expected {length} bytes at offset {offset}, have {len(data) - offset}"
        )
    return data[offset:end], end


class ByteReader:
    """Cursor over immutable bytes with canonical-decode helpers.

    Proof deserializers use this instead of hand-threading offsets; it
    raises :class:`EncodingError` on any truncation and exposes
    :meth:`finish` to assert that no trailing garbage remains.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def bytes(self, length: int) -> bytes:
        chunk, self._offset = read_exact(self._data, self._offset, length)
        return chunk

    def varint(self) -> int:
        value, self._offset = read_varint(self._data, self._offset)
        return value

    def uint(self, width: int) -> int:
        return int.from_bytes(self.bytes(width), "little")

    def var_bytes(self) -> bytes:
        return self.bytes(self.varint())

    def finish(self) -> None:
        if self.remaining:
            raise EncodingError(f"{self.remaining} trailing bytes after decode")


def write_var_bytes(payload: bytes) -> bytes:
    """Length-prefixed byte string (varint length + raw bytes)."""
    return write_varint(len(payload)) + payload


def base58_encode(payload: bytes) -> str:
    """Plain Base58 encoding (Bitcoin alphabet, leading-zero aware)."""
    zeros = 0
    for byte in payload:
        if byte:
            break
        zeros += 1
    number = int.from_bytes(payload, "big")
    digits = []
    while number:
        number, rem = divmod(number, 58)
        digits.append(_BASE58_ALPHABET[rem])
    return "1" * zeros + "".join(reversed(digits))


def base58_decode(text: str) -> bytes:
    """Inverse of :func:`base58_encode`; raises on foreign characters."""
    number = 0
    for char in text:
        if char not in _BASE58_INDEX:
            raise EncodingError(f"invalid base58 character {char!r}")
        number = number * 58 + _BASE58_INDEX[char]
    zeros = 0
    for char in text:
        if char != "1":
            break
        zeros += 1
    body = number.to_bytes((number.bit_length() + 7) // 8, "big")
    return b"\x00" * zeros + body


def base58check_encode(version: int, payload: bytes) -> str:
    """Base58Check: version byte + payload + 4-byte double-SHA checksum."""
    if not 0 <= version <= 0xFF:
        raise EncodingError(f"version byte out of range: {version}")
    body = bytes([version]) + payload
    return base58_encode(body + sha256d(body)[:4])


def base58check_decode(text: str) -> "tuple[int, bytes]":
    """Decode Base58Check; return ``(version, payload)``; verify checksum."""
    raw = base58_decode(text)
    if len(raw) < 5:
        raise EncodingError("base58check string too short")
    body, checksum = raw[:-4], raw[-4:]
    if sha256d(body)[:4] != checksum:
        raise EncodingError("base58check checksum mismatch")
    return body[0], body[1:]
