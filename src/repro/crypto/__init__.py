"""Cryptographic primitives: hashing and byte-level encodings."""

from repro.crypto.hashing import (
    HASH_SIZE,
    sha256,
    sha256d,
    tagged_hash,
    hash160,
)
from repro.crypto.encoding import (
    read_varint,
    write_varint,
    varint_size,
    base58_encode,
    base58_decode,
    base58check_encode,
    base58check_decode,
    read_exact,
    ByteReader,
)

__all__ = [
    "HASH_SIZE",
    "sha256",
    "sha256d",
    "tagged_hash",
    "hash160",
    "read_varint",
    "write_varint",
    "varint_size",
    "base58_encode",
    "base58_decode",
    "base58check_encode",
    "base58check_decode",
    "read_exact",
    "ByteReader",
]
