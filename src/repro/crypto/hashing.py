"""Hash functions used throughout the LVQ reproduction.

The paper writes ``H(...)`` without pinning down an encoding.  We use
SHA-256 everywhere, with two refinements that are standard practice in
authenticated data structures:

* ``sha256d`` (double SHA-256) for transaction ids and the classic Bitcoin
  Merkle tree, matching Bitcoin's actual construction.
* ``tagged_hash`` for the SMT and BMT nodes: the digest is computed over
  ``sha256(tag) || sha256(tag) || payload`` (the BIP-340 convention), so a
  leaf hash can never be confused with an interior-node hash and an SMT
  proof can never be replayed against a BMT root.  This is strictly
  stronger than the paper's unspecified ``H`` and changes no sizes.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

#: Size in bytes of every digest in this library.
HASH_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Single SHA-256 of ``data``."""
    return hashlib.sha256(data).digest()


def sha256d(data: bytes) -> bytes:
    """Double SHA-256, Bitcoin's workhorse hash (txids, block ids, MT)."""
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def hash160(data: bytes) -> bytes:
    """RIPEMD-160(SHA-256(data)) when available, else a truncated SHA-256.

    Real Bitcoin addresses commit to ``hash160`` of the public key.  Some
    Python builds ship without RIPEMD-160 in OpenSSL, so we fall back to
    the first 20 bytes of a tagged SHA-256 — the reproduction only needs a
    20-byte collision-resistant commitment, not RIPEMD itself.
    """
    inner = hashlib.sha256(data).digest()
    try:
        ripemd = hashlib.new("ripemd160")
    except ValueError:
        return tagged_hash("hash160-fallback", inner)[:20]
    ripemd.update(inner)
    return ripemd.digest()


@lru_cache(maxsize=64)
def _tag_prefix(tag: str) -> bytes:
    tag_digest = hashlib.sha256(tag.encode("ascii")).digest()
    return tag_digest + tag_digest


def tagged_hash(tag: str, *chunks: bytes) -> bytes:
    """Domain-separated SHA-256: ``sha256(sha256(tag)*2 || chunks...)``.

    ``tag`` names the structure and node kind ("smt/leaf", "bmt/node", ...)
    so digests from different structures live in disjoint codomains.
    """
    ctx = hashlib.sha256(_tag_prefix(tag))
    for chunk in chunks:
        ctx.update(chunk)
    return ctx.digest()
