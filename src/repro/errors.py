"""Exception hierarchy for the LVQ reproduction.

Every failure mode raised by the library derives from :class:`ReproError`,
so callers can catch a single base class.  Verification failures carry a
human-readable reason describing which check rejected the proof; the light
node surfaces these reasons so that a user can tell *why* a full node's
response was rejected (a wrong Merkle root, an uncovered block range, a
mismatching appearance count, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class EncodingError(ReproError):
    """Malformed serialized bytes (truncated, bad checksum, bad varint...)."""


class ChainError(ReproError):
    """Inconsistent blockchain state (bad linkage, unknown height...)."""


class WorkloadError(ReproError):
    """The synthetic workload generator was asked for something impossible."""


class ProofError(ReproError):
    """A proof object is structurally malformed (before verification)."""


class VerificationError(ReproError):
    """A proof failed verification against trusted header commitments.

    The message always names the failing check, e.g. ``"BMT root mismatch
    at height 4096"`` or ``"SMT count 2 != 3 Merkle branches supplied"``.
    """


class CorrectnessError(VerificationError):
    """Query result contains data that is not actually on chain."""


class CompletenessError(VerificationError):
    """Query result omits on-chain data (a non-membership check failed)."""


class QueryError(ReproError):
    """The full node could not serve a query (unknown system, bad range)."""


class TransportError(ReproError):
    """Simulated network failure (closed transport, oversized message)."""


class NoHonestPeerError(VerificationError):
    """Every queried full node returned an unverifiable answer.

    ``reasons`` maps a peer label to the error its answer raised, so the
    operator can see *why* each peer was rejected.
    """

    def __init__(self, reasons: "dict[str, Exception]") -> None:
        details = "; ".join(
            f"{peer}: {error}" for peer, error in reasons.items()
        )
        super().__init__(f"no peer produced a verifiable answer ({details})")
        self.reasons = reasons
