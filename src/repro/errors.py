"""Exception hierarchy for the LVQ reproduction.

Every failure mode raised by the library derives from :class:`ReproError`,
so callers can catch a single base class.  Verification failures carry a
human-readable reason describing which check rejected the proof; the light
node surfaces these reasons so that a user can tell *why* a full node's
response was rejected (a wrong Merkle root, an uncovered block range, a
mismatching appearance count, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class EncodingError(ReproError):
    """Malformed serialized bytes (truncated, bad checksum, bad varint...)."""


class ChainError(ReproError):
    """Inconsistent blockchain state (bad linkage, unknown height...)."""


class WorkloadError(ReproError):
    """The synthetic workload generator was asked for something impossible."""


class ProofError(ReproError):
    """A proof object is structurally malformed (before verification)."""


class VerificationError(ReproError):
    """A proof failed verification against trusted header commitments.

    The message always names the failing check, e.g. ``"BMT root mismatch
    at height 4096"`` or ``"SMT count 2 != 3 Merkle branches supplied"``.
    """


class CorrectnessError(VerificationError):
    """Query result contains data that is not actually on chain."""


class CompletenessError(VerificationError):
    """Query result omits on-chain data (a non-membership check failed)."""


class StaleChainError(VerificationError):
    """A peer offered a divergent chain that is not longer than ours.

    Raised by reorg-aware header sync when the peer's fork carries no
    more work (height is the work proxy here).  Unlike its parent, this
    is *not* evidence of malice — the peer may simply be lagging — so
    resilient sessions treat it as benign rather than banning the peer.
    """


class QueryError(ReproError):
    """The full node could not serve a query (unknown system, bad range)."""


class BackpressureError(QueryError):
    """Base class for benign "the server is shedding load" refusals.

    Overload is traffic, not malice: an honest server under a burst
    rejects work with a typed frame instead of collapsing, and a client
    must treat that frame as a *backoff signal* — honor the optional
    ``retry_after`` hint (seconds) and try again later — never as
    grounds for quarantine-ladder escalation or a ban (see
    ``Peer.record_overload``).
    """

    def __init__(
        self, message: str, *, retry_after: "float | None" = None
    ) -> None:
        super().__init__(message)
        #: Server-suggested wait in seconds before retrying (optional).
        self.retry_after = retry_after

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "retry_after": self.retry_after,
        }


class ServerOverloadedError(BackpressureError):
    """A query server's bounded request queue rejected new work.

    The backpressure signal of :class:`repro.node.server.QueryServer`:
    raised at submission time when every worker is busy and the pending
    queue is full, so callers can shed load or retry with backoff
    instead of growing an unbounded backlog.

    * ``pending`` — requests queued (but not yet running) at rejection.
    * ``max_pending`` — the configured queue bound.
    """

    def __init__(
        self,
        pending: int,
        max_pending: int,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(
            f"server overloaded: {pending} requests pending "
            f"(bound {max_pending})",
            retry_after=retry_after,
        )
        self.pending = pending
        self.max_pending = max_pending

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "pending": self.pending,
            "max_pending": self.max_pending,
            "retry_after": self.retry_after,
        }


class RateLimitedError(BackpressureError):
    """One client exceeded its per-client token-bucket rate budget.

    Unlike :class:`ServerOverloadedError` this is not a statement about
    the server's global queue — only about one client's recent request
    rate.  ``client`` is the identity the bucket is keyed by (connection
    peer, or the id declared in a hello frame); ``retry_after`` is when
    the bucket next holds a token.
    """

    def __init__(
        self, client: str, retry_after: "float | None" = None
    ) -> None:
        hint = f"; retry after {retry_after:.3f}s" if retry_after else ""
        super().__init__(
            f"client {client!r} exceeded its request rate budget{hint}",
            retry_after=retry_after,
        )
        self.client = client

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "client": self.client,
            "retry_after": self.retry_after,
        }


class RequestShedError(BackpressureError):
    """The watermark load-shedder refused this priority class.

    Staged degradation (DESIGN.md §11): past the first watermark the
    server sheds batch-class work, past the second everything but
    interactive queries, past the third everything that would queue —
    so high-priority traffic keeps its latency while the excess is
    absorbed as typed, retryable rejections instead of a collapse.

    * ``priority`` — the rejected request's priority class name.
    * ``state`` — the shedder state that refused it (``shed_batch``,
      ``shed_low`` or ``shed_all``).
    """

    def __init__(
        self,
        priority: str,
        state: str,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(
            f"{priority} request shed (server in {state})",
            retry_after=retry_after,
        )
        self.priority = priority
        self.state = state

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "priority": self.priority,
            "state": self.state,
            "retry_after": self.retry_after,
        }


class ConnectionLimitError(BackpressureError):
    """A network server refused a new connection at its concurrency gate.

    Sent as a typed error frame before the server closes the socket, so
    a client can tell "the node is saturated, back off and retry" apart
    from a dead or misbehaving peer.

    * ``active`` — connections already being served at rejection.
    * ``max_connections`` — the configured gate.
    """

    def __init__(
        self,
        active: int,
        max_connections: int,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(
            f"connection limit reached: {active} active "
            f"(bound {max_connections})",
            retry_after=retry_after,
        )
        self.active = active
        self.max_connections = max_connections

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "active": self.active,
            "max_connections": self.max_connections,
            "retry_after": self.retry_after,
        }


class SubscriberEvictedError(QueryError):
    """A streaming subscription was dropped by the server's slow-consumer
    guard (PROTOCOL.md §10.5).

    The server bounds every subscriber's outbox; a client that stops
    draining its socket overflows the bound and is evicted — the outbox
    is reclaimed, a typed eviction frame is delivered as the final frame,
    and the connection is closed.  Eviction is a *denial* signal, never a
    data signal: nothing about chain content rides on it.

    * ``subscription_id`` — the evicted subscription.
    * ``dropped_frames`` — update/retraction frames discarded unread.
    """

    def __init__(
        self,
        subscription_id: int,
        dropped_frames: int,
        reason: str = "outbox overflow",
    ) -> None:
        super().__init__(
            f"subscription {subscription_id} evicted ({reason}); "
            f"{dropped_frames} pending frames dropped"
        )
        self.subscription_id = subscription_id
        self.dropped_frames = dropped_frames
        self.reason = reason

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "subscription_id": self.subscription_id,
            "dropped_frames": self.dropped_frames,
            "reason": self.reason,
        }


class TransportError(ReproError):
    """Network failure (closed transport, oversized message, dead link)."""


class QueryTimeoutError(TransportError):
    """A timeout measured on the simulated clock.

    Carries machine-readable fields so session statistics and benchmarks
    can classify timeouts without parsing messages:

    * ``timeout_seconds`` — the configured limit that was exceeded.
    * ``elapsed_seconds`` — simulated time actually spent (``None`` when
      the waiter gave up without a clock).
    """

    def __init__(
        self,
        message: str,
        *,
        timeout_seconds: "float | None" = None,
        elapsed_seconds: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.timeout_seconds = timeout_seconds
        self.elapsed_seconds = elapsed_seconds

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "timeout_seconds": self.timeout_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }


class RequestTimeoutError(QueryTimeoutError):
    """A single request/response exchange exceeded its per-attempt limit
    (the message was dropped, or injected latency blew the deadline)."""


class SessionTimeoutError(QueryTimeoutError):
    """A whole query session ran past its overall deadline across
    retries, backoff sleeps, and failovers."""


class PeerQuarantinedError(ReproError):
    """A peer was skipped because its health score put it in quarantine.

    ``peer`` names the peer; ``permanent`` distinguishes a verification
    ban (the peer served a decodable-but-unverifiable proof — malice)
    from a decaying transport-failure penalty that expires at
    ``until_seconds`` on the session clock.
    """

    def __init__(
        self,
        peer: str,
        *,
        permanent: bool,
        until_seconds: "float | None" = None,
        reason: "str | None" = None,
    ) -> None:
        state = "banned" if permanent else f"quarantined until {until_seconds}"
        super().__init__(f"peer {peer} is {state}" + (f": {reason}" if reason else ""))
        self.peer = peer
        self.permanent = permanent
        self.until_seconds = until_seconds
        self.reason = reason

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "peer": self.peer,
            "permanent": self.permanent,
            "until_seconds": self.until_seconds,
            "reason": self.reason,
        }


class RetryExhaustedError(ReproError):
    """A resilient session ran out of retry budget without a verified
    answer and without proof that every peer is malicious.

    ``reasons`` maps each peer label to the list of errors its attempts
    raised (chronological), so callers can distinguish "the network was
    down" from "half the peers lied and the rest flapped".
    """

    def __init__(
        self,
        address: str,
        attempts: int,
        reasons: "dict[str, list[Exception]]",
    ) -> None:
        summary = "; ".join(
            f"{peer}: {type(errors[-1]).__name__}: {errors[-1]}"
            for peer, errors in reasons.items()
            if errors
        )
        super().__init__(
            f"no verified answer for {address!r} after {attempts} attempts "
            f"({summary or 'no peers available'})"
        )
        self.address = address
        self.attempts = attempts
        self.reasons = reasons

    def details(self) -> "dict[str, object]":
        return {
            "kind": type(self).__name__,
            "address": self.address,
            "attempts": self.attempts,
            "reasons": {
                peer: [f"{type(e).__name__}: {e}" for e in errors]
                for peer, errors in self.reasons.items()
            },
        }


class NoHonestPeerError(VerificationError):
    """Every queried full node returned an unverifiable answer.

    ``reasons`` maps a peer label to the error its answer raised, so the
    operator can see *why* each peer was rejected.
    """

    def __init__(self, reasons: "dict[str, Exception]") -> None:
        details = "; ".join(
            f"{peer}: {error}" for peer, error in reasons.items()
        )
        super().__init__(f"no peer produced a verifiable answer ({details})")
        self.reasons = reasons
