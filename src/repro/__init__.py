"""LVQ: lightweight verifiable queries for Bitcoin transaction history.

Reproduction of Dai et al., *"LVQ: A Lightweight Verifiable Query Approach
for Transaction History in Bitcoin"* (ICDCS 2020).

Quick tour::

    from repro import (
        WorkloadParams, generate_workload,
        SystemConfig, build_system, FullNode, LightNode,
    )

    workload = generate_workload(WorkloadParams(num_blocks=64))
    system = build_system(
        workload.bodies, SystemConfig.lvq(bf_bytes=256, segment_len=64)
    )
    full_node = FullNode(system)
    light_node = LightNode.from_full_node(full_node)

    address = workload.probe_addresses["Addr3"]
    history = light_node.query_history(full_node, address)
    print(len(history.transactions), history.balance())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.bloom import BloomFilter, bloom_positions
from repro.chain import (
    Blockchain,
    Transaction,
    TxInput,
    TxOutput,
    balance_from_history,
    merge_set,
    merge_span,
    segment_spans,
    covering_spans,
    synthetic_address,
)
from repro.merkle import (
    BmtMultiProof,
    BmtTree,
    MerkleBranch,
    MerkleTree,
    SmtInexistenceProof,
    SortedMerkleTree,
)
from repro.node import FullNode, InProcessTransport, LightNode
from repro.query import (
    BuiltSystem,
    QueryResult,
    SystemConfig,
    SystemKind,
    answer_query,
    build_system,
    verify_result,
    VerifiedHistory,
)
from repro.workload import (
    PAPER_PROBE_PROFILES,
    GeneratedWorkload,
    ProbeProfile,
    WorkloadParams,
    generate_workload,
    scaled_probe_profiles,
)
from repro.errors import (
    CompletenessError,
    CorrectnessError,
    NoHonestPeerError,
    ReproError,
    VerificationError,
)
from repro.wallet import Wallet

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "bloom_positions",
    "Blockchain",
    "Transaction",
    "TxInput",
    "TxOutput",
    "balance_from_history",
    "merge_set",
    "merge_span",
    "segment_spans",
    "covering_spans",
    "synthetic_address",
    "BmtMultiProof",
    "BmtTree",
    "MerkleBranch",
    "MerkleTree",
    "SmtInexistenceProof",
    "SortedMerkleTree",
    "FullNode",
    "InProcessTransport",
    "LightNode",
    "BuiltSystem",
    "QueryResult",
    "SystemConfig",
    "SystemKind",
    "answer_query",
    "build_system",
    "verify_result",
    "VerifiedHistory",
    "PAPER_PROBE_PROFILES",
    "GeneratedWorkload",
    "ProbeProfile",
    "WorkloadParams",
    "generate_workload",
    "scaled_probe_profiles",
    "CompletenessError",
    "CorrectnessError",
    "NoHonestPeerError",
    "ReproError",
    "VerificationError",
    "Wallet",
    "__version__",
]
