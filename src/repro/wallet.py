"""A watch-only wallet on top of the verifiable-query light client.

The wallet owns a :class:`LightNode` and a set of watched addresses.
``refresh`` pulls all histories in one verified batch (amortizing the
per-block filters on strawman-family chains); ``sync`` first brings the
headers up to date — following reorgs — then refreshes.  Balances and
histories exposed by the wallet are always *verified*: a lying full node
makes ``refresh`` raise, it can never make the wallet display a wrong
number.  ``save``/``load`` persist the watched set and the header chain.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Tuple

from repro.chain.transaction import Transaction
from repro.errors import ReproError, VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.config import SystemConfig
from repro.query.verifier import VerifiedHistory
from repro.storage.chain_store import load_headers, save_headers

_WALLET_FILE = "wallet.json"
_HEADERS_FILE = "headers.dat"


class Wallet:
    """Watch-only wallet: verified balances for a set of addresses."""

    def __init__(
        self, light_node: LightNode, addresses: Iterable[str] = ()
    ) -> None:
        self.light_node = light_node
        self._addresses: List[str] = []
        self._histories: Dict[str, VerifiedHistory] = {}
        for address in addresses:
            self.watch(address)

    # -- watched set ---------------------------------------------------------

    @property
    def addresses(self) -> List[str]:
        return list(self._addresses)

    def watch(self, address: str) -> None:
        """Add an address to the watched set (idempotent)."""
        if not address:
            raise ValueError("cannot watch an empty address")
        if address not in self._addresses:
            self._addresses.append(address)

    def unwatch(self, address: str) -> None:
        if address in self._addresses:
            self._addresses.remove(address)
            self._histories.pop(address, None)

    # -- syncing ---------------------------------------------------------------

    def refresh(self, full_node: FullNode) -> Dict[str, int]:
        """Re-query every watched address in one verified batch.

        Returns the address → balance map.  Raises
        :class:`VerificationError` (leaving previous state untouched) if
        the full node's answer fails verification in any way.
        """
        if not self._addresses:
            return {}
        histories = self.light_node.query_batch(full_node, self._addresses)
        self._histories = histories
        return self.balances()

    def sync(self, full_node: FullNode) -> Tuple[int, int]:
        """Header sync (reorg-aware) followed by a refresh.

        Returns ``(replaced, appended)`` header counts from the sync.
        """
        replaced, appended = self.light_node.sync_with_reorg(full_node)
        if self._addresses:
            self.refresh(full_node)
        return replaced, appended

    # -- streaming ------------------------------------------------------------

    def apply_event(self, event) -> bool:
        """Merge one verified :mod:`~repro.node.subscribe` watch event.

        The streaming companion to :meth:`refresh`: events arriving from
        a :class:`~repro.node.subscribe.SubscriptionSession` were already
        verified before they were surfaced, so the wallet folds them
        straight into its histories —

        * **update/backfill** — replace the covered height range for
          every watched address the event carries;
        * **retract** — drop every transaction above the fork height
          (the replacement blocks follow as further updates).

        Only addresses with an existing verified baseline are merged (an
        update proves a *range*, not history-since-genesis — an address
        never refreshed has no verified prefix to extend).  Returns True
        when the event changed wallet state.
        """
        kind = getattr(event, "kind", None)
        if kind in ("update", "backfill"):
            first, last = event.first_height, event.last_height
            changed = False
            for address, incoming in event.histories.items():
                baseline = self._histories.get(address)
                if baseline is None or address not in self._addresses:
                    continue
                kept = [
                    (height, tx)
                    for height, tx in baseline.transactions
                    if height < first or height > last
                ]
                merged = kept + list(incoming.transactions)
                merged.sort(key=lambda entry: entry[0])
                self._histories[address] = VerifiedHistory(
                    address, merged, baseline.num_endpoints
                )
                changed = True
            return changed
        if kind == "retract":
            fork = event.fork_height
            changed = False
            for address, baseline in list(self._histories.items()):
                kept = [
                    (height, tx)
                    for height, tx in baseline.transactions
                    if height <= fork
                ]
                if len(kept) != len(baseline.transactions):
                    self._histories[address] = VerifiedHistory(
                        address, kept, baseline.num_endpoints
                    )
                    changed = True
            return changed
        return False  # eviction/disconnect/closed carry no chain data

    # -- verified views ---------------------------------------------------------

    def balance(self, address: str) -> int:
        history = self._histories.get(address)
        if history is None:
            raise VerificationError(
                f"no verified history for {address!r}; call refresh() first"
            )
        return history.balance()

    def balances(self) -> Dict[str, int]:
        return {address: self.balance(address) for address in self._addresses
                if address in self._histories}

    def total_balance(self) -> int:
        return sum(self.balances().values())

    def history(self, address: str) -> List[Tuple[int, Transaction]]:
        history = self._histories.get(address)
        if history is None:
            raise VerificationError(
                f"no verified history for {address!r}; call refresh() first"
            )
        return list(history.transactions)

    def activity(self) -> List[Tuple[int, str, Transaction]]:
        """All watched transactions, ``(height, address, tx)``, by height."""
        merged = []
        for address in self._addresses:
            history = self._histories.get(address)
            if history is None:
                continue
            merged.extend(
                (height, address, tx) for height, tx in history.transactions
            )
        merged.sort(key=lambda entry: entry[0])
        return merged

    # -- persistence ---------------------------------------------------------

    def save(self, directory: "str | pathlib.Path") -> None:
        path = pathlib.Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        save_headers(self.light_node.headers, path / _HEADERS_FILE)
        manifest = {
            "format": 1,
            "config": self.light_node.config.to_dict(),
            "addresses": self._addresses,
        }
        (path / _WALLET_FILE).write_text(json.dumps(manifest, indent=2))

    @classmethod
    def load(cls, directory: "str | pathlib.Path") -> "Wallet":
        path = pathlib.Path(directory)
        try:
            manifest = json.loads((path / _WALLET_FILE).read_text())
        except FileNotFoundError as exc:
            raise ReproError(f"no wallet file in {path}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(f"corrupt wallet file in {path}: {exc}") from exc
        config = SystemConfig.from_dict(manifest["config"])
        headers = load_headers(path / _HEADERS_FILE, config)
        light_node = LightNode(headers, config)
        return cls(light_node, manifest.get("addresses", []))

    def __repr__(self) -> str:
        return (
            f"Wallet(addresses={len(self._addresses)}, "
            f"tip={self.light_node.tip_height})"
        )
