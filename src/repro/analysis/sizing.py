"""Storage and size models (Challenge 1, DESIGN.md's scaling table).

The benchmarks run at a documented 1/16-ish linear scale of the paper's
workload (see DESIGN.md §2).  :func:`paper_equivalent_bf_bytes` converts
the paper's BF sizes ("10KB", "30KB", ...) to our scale so bench output
can be labelled in paper-equivalent units, and :func:`storage_table`
reproduces the Challenge-1 storage comparison from real header bytes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.chain.block import BASE_HEADER_SIZE, BlockHeader

#: Unique addresses per block the paper's BF sizing assumes (~2k/block on
#: the mainnet range it replays).
PAPER_ADDRESSES_PER_BLOCK = 2048


def paper_equivalent_bf_bytes(
    paper_kib: float, addresses_per_block: int
) -> int:
    """Scale a paper BF size to our workload, preserving bits-per-element.

    The paper uses ``paper_kib`` KiB filters for ~2048 unique addresses
    per block; a chain with ``addresses_per_block`` unique addresses needs
    the same ratio.  Result is rounded up to a whole number of 64-byte
    words so filters stay byte-aligned and comfortably sized.
    """
    if paper_kib <= 0:
        raise ValueError(f"paper BF size must be positive, got {paper_kib}")
    if addresses_per_block <= 0:
        raise ValueError(
            f"addresses per block must be positive, got {addresses_per_block}"
        )
    exact = paper_kib * 1024.0 * addresses_per_block / PAPER_ADDRESSES_PER_BLOCK
    words = max(1, round(exact / 64.0))
    return words * 64


def predicted_absent_result_bytes(
    num_blocks: int,
    segment_len: int,
    items_per_block: int,
    bf_bytes: int,
    num_hashes: int,
) -> float:
    """Predicted LVQ result size for an address with *no* history.

    Combines the covering-segment decomposition with the analytic
    endpoint model (:func:`repro.analysis.fpm.expected_endpoints`): each
    endpoint ships one filter plus O(tens of bytes) of structure, and
    each segment adds a small fixed frame.  Accurate to within a small
    factor — the model's purpose is explaining how Fig 13's curves arise
    from endpoint counts, not byte-exact forecasting.
    """
    from repro.analysis.fpm import expected_endpoints
    from repro.chain.segments import segment_spans

    # Per-endpoint: 1 tag byte + the filter + (for internal clean
    # endpoints, two child hashes; roughly half of endpoints) ≈ bf + 33.
    per_endpoint = bf_bytes + 33.0
    per_segment_frame = 16.0  # anchor/start/end varints + counts
    total = 10.0  # result envelope
    for start, end in segment_spans(num_blocks, segment_len):
        span = end - start + 1
        endpoints = expected_endpoints(
            span, items_per_block, bf_bytes * 8, num_hashes
        )
        total += endpoints * per_endpoint + per_segment_frame
    return total


def header_overhead_per_block(header: BlockHeader) -> int:
    """Bytes a header stores beyond Bitcoin's 80-byte core."""
    return header.size_bytes() - BASE_HEADER_SIZE


def storage_table(
    labelled_headers: Sequence[Tuple[str, Sequence[BlockHeader]]]
) -> List[Dict[str, object]]:
    """Challenge-1 comparison rows: per-system light-node storage.

    Each row reports total header bytes, per-block overhead over the
    80-byte Bitcoin core, and the blow-up factor relative to plain SPV.
    """
    rows: List[Dict[str, object]] = []
    for label, headers in labelled_headers:
        total = sum(header.size_bytes() for header in headers)
        baseline = BASE_HEADER_SIZE * len(headers)
        rows.append(
            {
                "system": label,
                "blocks": len(headers),
                "total_bytes": total,
                "per_block_overhead": (
                    (total - baseline) // len(headers) if headers else 0
                ),
                "vs_bitcoin": total / baseline if baseline else 0.0,
            }
        )
    return rows
