"""Analytic model of the BMT endpoint distribution (backs Figs 13, 15, 16).

A BMT node at layer ``j`` unions the filters of ``2^j`` blocks, so for an
address absent from all of them the probability that its check *fails*
(all ``k`` positions set) is ``fill(j)^k`` with
``fill(j) = 1 − (1 − 1/m)^(k · n · 2^j)`` under the usual independence
approximation (paper refs [16]-[17]); ``n`` is the unique-address count
per block.  An endpoint appears at a node exactly when the node's check
succeeds but its parent's failed, plus at leaves whose own check fails.

The model explains the two experimental observations the paper leans on:

* endpoint count is driven by ``m/n`` (bits per element), which is why it
  stays nearly flat across the Fig-15 BF sweep once ``m`` is large enough;
* endpoint count is U-shaped in the segment length ``M`` (Fig 16): tiny
  segments make every leaf its own endpoint, huge segments are fine for
  inexistence but the fixed per-segment overhead disappears — the rise at
  the large-``M`` end comes from busy addresses whose failed leaves force
  full descents.
"""

from __future__ import annotations

from repro.bloom.params import fill_ratio_estimate


def layer_fill_ratio(
    layer: int, items_per_block: int, size_bits: int, num_hashes: int
) -> float:
    """Expected fill of a BMT node ``layer`` levels above the leaves."""
    if layer < 0:
        raise ValueError(f"negative layer {layer}")
    return fill_ratio_estimate(
        items_per_block * (1 << layer), size_bits, num_hashes
    )


def _fail_probability(
    layer: int, items_per_block: int, size_bits: int, num_hashes: int
) -> float:
    """P(check fails at a layer-``layer`` node) for an absent address."""
    return (
        layer_fill_ratio(layer, items_per_block, size_bits, num_hashes)
        ** num_hashes
    )


def expected_endpoints(
    num_blocks: int, items_per_block: int, size_bits: int, num_hashes: int
) -> float:
    """Expected endpoint count for one absent address over one BMT.

    Approximates node checks as independent: a layer-``j`` node is an
    endpoint if its own check succeeds while its parent's fails (the root
    "parent" always counts as failed for descent purposes — descent
    starts there), and a leaf is additionally an endpoint when its own
    check fails.
    """
    if num_blocks <= 0 or num_blocks & (num_blocks - 1):
        raise ValueError(f"block count must be a power of two: {num_blocks}")
    depth = num_blocks.bit_length() - 1
    expected = 0.0
    for layer in range(depth + 1):
        nodes_at_layer = num_blocks >> layer
        succeed_here = 1.0 - _fail_probability(
            layer, items_per_block, size_bits, num_hashes
        )
        if layer == depth:
            parent_fails = 1.0  # the root has no parent; descent starts here
        else:
            parent_fails = _fail_probability(
                layer + 1, items_per_block, size_bits, num_hashes
            )
        expected += nodes_at_layer * parent_fails * succeed_here
        if layer == 0:
            # Failed leaves are endpoints too (resolved at block level).
            leaf_fails = _fail_probability(
                0, items_per_block, size_bits, num_hashes
            )
            parent_fails_leaf = (
                _fail_probability(1, items_per_block, size_bits, num_hashes)
                if depth >= 1
                else 1.0
            )
            expected += num_blocks * parent_fails_leaf * leaf_fails
    return expected


def expected_failed_leaves(
    num_blocks: int, items_per_block: int, size_bits: int, num_hashes: int
) -> float:
    """Expected failed-leaf endpoints (FPM resolutions) for an absent
    address — the paper's Challenge-2 quantity, per segment."""
    if num_blocks <= 0:
        raise ValueError(f"block count must be positive: {num_blocks}")
    return num_blocks * _fail_probability(
        0, items_per_block, size_bits, num_hashes
    )
