"""Analytic models and reporting helpers for the evaluation."""

from repro.analysis.fpm import (
    expected_endpoints,
    expected_failed_leaves,
    layer_fill_ratio,
)
from repro.analysis.sizing import (
    header_overhead_per_block,
    paper_equivalent_bf_bytes,
    predicted_absent_result_bytes,
    storage_table,
)
from repro.analysis.report import format_bytes, render_table

__all__ = [
    "expected_endpoints",
    "expected_failed_leaves",
    "layer_fill_ratio",
    "header_overhead_per_block",
    "paper_equivalent_bf_bytes",
    "predicted_absent_result_bytes",
    "storage_table",
    "format_bytes",
    "render_table",
]
