"""Plain-text table/series rendering used by the benchmark harness.

Every benchmark prints the rows/series of its paper table or figure
through these helpers, so bench output is uniform and directly
comparable with the paper's plots.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_bytes(size: float) -> str:
    """Human-readable byte count with paper-style units."""
    if size < 0:
        raise ValueError(f"negative size {size}")
    if size < 1024:
        return f"{size:.0f}B"
    if size < 1024**2:
        return f"{size / 1024:.2f}KB"
    if size < 1024**3:
        return f"{size / 1024 ** 2:.2f}MB"
    return f"{size / 1024 ** 3:.2f}GB"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a separator under the header row."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width "
                f"{len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[Sequence[object]],
    series_labels: Sequence[str],
) -> str:
    """One row per x value, one column per series — a figure as text."""
    if len(series) != len(series_labels):
        raise ValueError("series and labels must pair up")
    headers = [x_label, *series_labels]
    rows = []
    for index, x_value in enumerate(x_values):
        rows.append([x_value, *(column[index] for column in series)])
    return render_table(headers, rows)
