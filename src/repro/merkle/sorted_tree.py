"""Sorted Merkle Tree over (address, appearance-count) leaves (§III-A, §IV-B2).

Each LVQ block commits to an SMT whose leaves are the unique addresses
appearing in the block, each paired with the number of transactions that
involve it, sorted lexicographically.  Two kinds of proofs come out of it:

* an **existence branch** — authenticates ``(address, count)``, pinning the
  exact appearance count and thereby solving the paper's Challenge 3;
* an **inexistence proof** — the predecessor and successor branches around
  the queried address (Fig 9).  Adjacent leaf indices plus the sort order
  prove that nothing between the two leaves exists, which resolves Bloom
  filter false positives without shipping the integral block (Challenge 2).

Deviation from the paper (documented in DESIGN.md): the leaf list is padded
to a power of two with ``+∞`` sentinel leaves so that "the queried address
sorts after every real leaf" is provable with an ordinary adjacent pair.
When the real leaf count is already a power of two no sentinel exists, and
the right-edge case is instead proven by a predecessor branch whose index
is the all-ones path (the provably-last slot).  Branch direction bits prove
leaf indices, which is what makes adjacency verifiable at all.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.crypto.hashing import HASH_SIZE, tagged_hash
from repro.errors import EncodingError, ProofError, VerificationError

#: Sorts strictly after every Base58 string (Base58 is pure ASCII < 0x7f).
SMT_SENTINEL = "\x7f"

_LEAF_TAG = "smt/leaf"
_NODE_TAG = "smt/node"


class SmtLeaf:
    """One SMT leaf: an address and its appearance count in the block."""

    __slots__ = ("address", "count")

    def __init__(self, address: str, count: int) -> None:
        if count < 0:
            raise ValueError(f"negative appearance count {count}")
        if address != SMT_SENTINEL and address >= SMT_SENTINEL:
            raise ValueError("address collides with the SMT sentinel space")
        self.address = address
        self.count = count

    @classmethod
    def sentinel(cls) -> "SmtLeaf":
        return cls(SMT_SENTINEL, 0)

    @property
    def is_sentinel(self) -> bool:
        return self.address == SMT_SENTINEL

    def hash(self) -> bytes:
        return tagged_hash(_LEAF_TAG, self.serialize())

    def serialize(self) -> bytes:
        return write_var_bytes(self.address.encode("utf-8")) + write_varint(
            self.count
        )

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "SmtLeaf":
        raw_address = reader.var_bytes()
        try:
            address = raw_address.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EncodingError(f"SMT leaf address is not UTF-8: {exc}") from exc
        count = reader.varint()
        leaf = cls.__new__(cls)
        leaf.address = address
        leaf.count = count
        if count < 0:
            raise EncodingError("negative count in SMT leaf")
        return leaf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SmtLeaf):
            return NotImplemented
        return self.address == other.address and self.count == other.count

    def __repr__(self) -> str:
        label = "<sentinel>" if self.is_sentinel else self.address
        return f"SmtLeaf({label}, count={self.count})"


class SmtBranch:
    """Authentication path for one SMT leaf, index included."""

    __slots__ = ("leaf", "leaf_index", "siblings")

    def __init__(
        self, leaf: SmtLeaf, leaf_index: int, siblings: Sequence[bytes]
    ) -> None:
        if leaf_index < 0 or leaf_index >> len(siblings):
            raise ProofError(
                f"leaf index {leaf_index} does not fit in depth {len(siblings)}"
            )
        for sibling in siblings:
            if len(sibling) != HASH_SIZE:
                raise ProofError(f"sibling hash must be {HASH_SIZE} bytes")
        self.leaf = leaf
        self.leaf_index = leaf_index
        self.siblings = list(siblings)

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def compute_root(self) -> bytes:
        node = self.leaf.hash()
        index = self.leaf_index
        for sibling in self.siblings:
            if index & 1:
                node = tagged_hash(_NODE_TAG, sibling, node)
            else:
                node = tagged_hash(_NODE_TAG, node, sibling)
            index >>= 1
        return node

    def verify(self, root: bytes) -> bool:
        return self.compute_root() == root

    def serialize(self) -> bytes:
        parts = [
            self.leaf.serialize(),
            write_varint(self.leaf_index),
            write_varint(len(self.siblings)),
        ]
        parts.extend(self.siblings)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "SmtBranch":
        leaf = SmtLeaf.deserialize(reader)
        leaf_index = reader.varint()
        count = reader.varint()
        if count > 64:
            raise EncodingError(f"implausible SMT branch depth {count}")
        siblings = [reader.bytes(HASH_SIZE) for _ in range(count)]
        return cls(leaf, leaf_index, siblings)

    def size_bytes(self) -> int:
        return len(self.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SmtBranch):
            return NotImplemented
        return (
            self.leaf == other.leaf
            and self.leaf_index == other.leaf_index
            and self.siblings == other.siblings
        )

    def __repr__(self) -> str:
        return f"SmtBranch(index={self.leaf_index}, leaf={self.leaf!r})"


class SmtInexistenceProof:
    """Predecessor/successor branch pair proving an address is absent.

    Exactly three shapes are valid:

    * both branches — adjacent indices with ``pred.addr < a < succ.addr``;
    * successor only at index 0 — ``a`` sorts before every leaf;
    * predecessor only at the all-ones index — ``a`` sorts after every leaf
      of a sentinel-free (full power-of-two) tree.
    """

    __slots__ = ("predecessor", "successor")

    def __init__(
        self,
        predecessor: Optional[SmtBranch],
        successor: Optional[SmtBranch],
    ) -> None:
        if predecessor is None and successor is None:
            raise ProofError("inexistence proof needs at least one branch")
        self.predecessor = predecessor
        self.successor = successor

    def verify(self, root: bytes, address: str) -> None:
        """Raise :class:`VerificationError` unless the proof is sound."""
        pred, succ = self.predecessor, self.successor
        if pred is not None and not pred.verify(root):
            raise VerificationError("SMT predecessor branch does not match root")
        if succ is not None and not succ.verify(root):
            raise VerificationError("SMT successor branch does not match root")

        if pred is not None and succ is not None:
            if pred.depth != succ.depth:
                raise VerificationError("SMT branch depths disagree")
            if succ.leaf_index != pred.leaf_index + 1:
                raise VerificationError(
                    "SMT predecessor/successor leaves are not adjacent: "
                    f"indices {pred.leaf_index} and {succ.leaf_index}"
                )
            if not pred.leaf.address < address < succ.leaf.address:
                raise VerificationError(
                    f"address {address!r} does not fall strictly between "
                    f"{pred.leaf.address!r} and {succ.leaf.address!r}"
                )
            return

        if succ is not None:  # address sorts before the whole tree
            if succ.leaf_index != 0:
                raise VerificationError(
                    "successor-only proof requires leaf index 0, got "
                    f"{succ.leaf_index}"
                )
            if not address < succ.leaf.address:
                raise VerificationError(
                    f"address {address!r} does not sort before the first leaf"
                )
            return

        # Predecessor-only: the right edge of a sentinel-free full tree.
        assert pred is not None
        last_index = (1 << pred.depth) - 1
        if pred.leaf_index != last_index:
            raise VerificationError(
                "predecessor-only proof requires the last leaf slot "
                f"{last_index}, got {pred.leaf_index}"
            )
        if pred.leaf.is_sentinel:
            raise VerificationError(
                "predecessor-only proof cannot end on a sentinel leaf"
            )
        if not address > pred.leaf.address:
            raise VerificationError(
                f"address {address!r} does not sort after the last leaf"
            )

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        flags = (1 if self.predecessor else 0) | (2 if self.successor else 0)
        parts = [bytes([flags])]
        if self.predecessor is not None:
            parts.append(self.predecessor.serialize())
        if self.successor is not None:
            parts.append(self.successor.serialize())
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "SmtInexistenceProof":
        flags = reader.bytes(1)[0]
        if flags not in (1, 2, 3):
            raise EncodingError(f"bad SMT inexistence flags {flags}")
        predecessor = SmtBranch.deserialize(reader) if flags & 1 else None
        successor = SmtBranch.deserialize(reader) if flags & 2 else None
        return cls(predecessor, successor)

    def size_bytes(self) -> int:
        return len(self.serialize())

    def __repr__(self) -> str:
        return (
            f"SmtInexistenceProof(pred={self.predecessor!r}, "
            f"succ={self.successor!r})"
        )


class SortedMerkleTree:
    """The per-block SMT: sorted unique (address, count) leaves."""

    def __init__(self, leaves: Sequence[SmtLeaf]) -> None:
        addresses = [leaf.address for leaf in leaves]
        if any(leaf.is_sentinel for leaf in leaves):
            raise ValueError("sentinel leaves are added automatically")
        if sorted(addresses) != addresses or len(set(addresses)) != len(addresses):
            raise ValueError("SMT leaves must be strictly sorted and unique")
        self._real_count = len(leaves)
        padded: List[SmtLeaf] = list(leaves)
        target = 1
        while target < len(padded):
            target <<= 1
        if not padded:
            target = 1
        padded.extend(SmtLeaf.sentinel() for _ in range(target - len(padded)))
        self._leaves = padded
        self._levels: List[List[bytes]] = [[leaf.hash() for leaf in padded]]
        level = self._levels[0]
        while len(level) > 1:
            level = [
                tagged_hash(_NODE_TAG, level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self._levels.append(level)
        self._addresses = [leaf.address for leaf in padded]

    @classmethod
    def from_counts(cls, counts: "dict[str, int]") -> "SortedMerkleTree":
        """Build from an address → appearance-count mapping."""
        leaves = [
            SmtLeaf(address, count) for address, count in sorted(counts.items())
        ]
        return cls(leaves)

    # -- inspection --------------------------------------------------------

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def num_leaves(self) -> int:
        """Total leaf slots, sentinels included (a power of two)."""
        return len(self._leaves)

    @property
    def num_real_leaves(self) -> int:
        return self._real_count

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def leaf(self, index: int) -> SmtLeaf:
        return self._leaves[index]

    def count_of(self, address: str) -> int:
        """Appearance count of ``address`` (0 when absent)."""
        index = self._find(address)
        return self._leaves[index].count if index is not None else 0

    def __contains__(self, address: str) -> bool:
        return self._find(address) is not None

    # -- proofs ------------------------------------------------------------

    def branch(self, index: int) -> SmtBranch:
        if not 0 <= index < self.num_leaves:
            raise IndexError(f"leaf index {index} out of range")
        siblings: List[bytes] = []
        position = index
        for level in self._levels[:-1]:
            siblings.append(level[position ^ 1])
            position >>= 1
        return SmtBranch(self._leaves[index], index, siblings)

    def prove_existence(self, address: str) -> SmtBranch:
        index = self._find(address)
        if index is None:
            raise ProofError(f"address {address!r} is not in this SMT")
        return self.branch(index)

    def prove_inexistence(self, address: str) -> SmtInexistenceProof:
        if self._find(address) is not None:
            raise ProofError(
                f"address {address!r} exists; use prove_existence instead"
            )
        insertion = bisect.bisect_left(self._addresses, address)
        if insertion == 0:
            return SmtInexistenceProof(None, self.branch(0))
        if insertion == self.num_leaves:
            return SmtInexistenceProof(self.branch(self.num_leaves - 1), None)
        return SmtInexistenceProof(
            self.branch(insertion - 1), self.branch(insertion)
        )

    def __repr__(self) -> str:
        return (
            f"SortedMerkleTree(real={self._real_count}, "
            f"slots={self.num_leaves})"
        )

    # -- internals ---------------------------------------------------------

    def _find(self, address: str) -> Optional[int]:
        index = bisect.bisect_left(self._addresses, address)
        if index < len(self._addresses) and self._addresses[index] == address:
            if not self._leaves[index].is_sentinel:
                return index
        return None


def appearance_counts(
    transactions: Sequence[Tuple[bytes, Sequence[str]]]
) -> "dict[str, int]":
    """Count, per address, the number of *distinct transactions* touching it.

    ``transactions`` is a sequence of ``(txid, addresses)`` pairs.  An
    address occurring several times inside one transaction (say, as both
    sender and change receiver) counts once — the SMT commits to "how many
    transactions must the existence proof exhibit", and proofs are
    per-transaction Merkle branches.
    """
    counts: "dict[str, int]" = {}
    for _txid, addresses in transactions:
        for address in set(addresses):
            counts[address] = counts.get(address, 0) + 1
    return counts
