"""Authenticated data structures: MT (§II-A), SMT (§III-A), BMT (§III-B)."""

from repro.merkle.tree import MerkleTree, MerkleBranch
from repro.merkle.sorted_tree import (
    SMT_SENTINEL,
    SmtLeaf,
    SmtBranch,
    SmtInexistenceProof,
    SortedMerkleTree,
)
from repro.merkle.bmt import (
    BmtNode,
    BmtTree,
    BmtEndpoint,
    BmtBranch,
    BmtMultiProof,
    EndpointKind,
)

__all__ = [
    "MerkleTree",
    "MerkleBranch",
    "SMT_SENTINEL",
    "SmtLeaf",
    "SmtBranch",
    "SmtInexistenceProof",
    "SortedMerkleTree",
    "BmtNode",
    "BmtTree",
    "BmtEndpoint",
    "BmtBranch",
    "BmtMultiProof",
    "EndpointKind",
]
