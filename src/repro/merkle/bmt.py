"""Bloom-filter-integrated Merkle Tree (paper §III-B2, §IV-B1, Fig 3-5, 11).

A BMT node carries both a hash and a Bloom filter:

* ``node.bf = left.bf | right.bf``                       (Eq 3)
* ``node.hash = H(left.hash, right.hash, node.bf)``      (Eq 2, layer > 0)
* ``leaf.hash = H(leaf.bf)``                             (Eq 2, layer = 0)

Binding the BF into the hash is what makes BMT branches unforgeable
(§VI): a tampered filter changes every ancestor hash.

Each leaf is the address filter of one block; a tree over ``2^d``
consecutive blocks lets a single *successful check* (some checked bit
position is 0) prove an address absent from all ``2^d`` blocks at once.
Checking descends from the root and stops at **endpoint nodes**: either a
node whose check succeeds (a ``CLEAN`` endpoint — inexistence proven for
its whole subtree) or a leaf whose check fails (``LEAF_FAILED`` — the
address is either really in that block or a false positive; block-level
SMT evidence resolves which).

Two proof forms are implemented:

* :class:`BmtBranch` — the single-endpoint branch of Fig 4/5, with
  ``(hash, bf)`` sibling stubs along the path;
* :class:`BmtMultiProof` — the merged proof of Fig 11.  Because a failed
  check always explores *both* children, the union of all endpoint paths
  is a full frontier of the tree, so the merged proof is simply a
  recursive partial-tree encoding in which every interior ``(hash, bf)``
  is recomputed by the verifier and only endpoint filters ship.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bloom.bitarray import BitArray
from repro.bloom.filter import BloomFilter, bloom_positions
from repro.crypto.encoding import ByteReader, write_varint
from repro.crypto.hashing import HASH_SIZE, tagged_hash
from repro.errors import EncodingError, ProofError, VerificationError

_LEAF_TAG = "bmt/leaf"
_NODE_TAG = "bmt/node"

# Multiproof node tags (serialized as single bytes).
_TAG_INTERNAL = 0
_TAG_CLEAN_LEAF = 1
_TAG_CLEAN_INTERNAL = 2
_TAG_FAILED_LEAF = 3
# Range-query stubs: subtrees entirely outside the queried height range
# contribute only the material needed to recompute ancestors (§V extension
# "a query of larger range can be performed similarly" — and of *smaller*
# range, symmetrically).  A leaf stub is just its filter (its hash is
# H(bf)); an internal stub is its hash plus its filter.
_TAG_STUB_LEAF = 4
_TAG_STUB_INTERNAL = 5


class EndpointKind(enum.Enum):
    """Why the BMT descent stopped at a node."""

    CLEAN = "clean"  # check succeeded: address absent from the subtree
    LEAF_FAILED = "leaf_failed"  # bottom layer reached with all bits set


def leaf_hash(bf: BloomFilter) -> bytes:
    return tagged_hash(_LEAF_TAG, bf.to_bytes())


def node_hash(left_hash: bytes, right_hash: bytes, bf: BloomFilter) -> bytes:
    return tagged_hash(_NODE_TAG, left_hash, right_hash, bf.to_bytes())


class BmtNode:
    """One node of a built BMT; leaves know which block height they cover."""

    __slots__ = ("hash", "bf", "layer", "start", "end", "left", "right")

    def __init__(
        self,
        hash_value: bytes,
        bf: BloomFilter,
        layer: int,
        start: int,
        end: int,
        left: "Optional[BmtNode]" = None,
        right: "Optional[BmtNode]" = None,
    ) -> None:
        self.hash = hash_value
        self.bf = bf
        self.layer = layer
        self.start = start  # first covered block height (inclusive)
        self.end = end  # last covered block height (inclusive)
        self.left = left
        self.right = right

    @property
    def is_leaf(self) -> bool:
        return self.layer == 0

    @property
    def num_blocks(self) -> int:
        return self.end - self.start + 1

    def __repr__(self) -> str:
        return f"BmtNode(layer={self.layer}, blocks=[{self.start},{self.end}])"


class BmtEndpoint:
    """An endpoint node found by the existence check."""

    __slots__ = ("node", "kind")

    def __init__(self, node: BmtNode, kind: EndpointKind) -> None:
        self.node = node
        self.kind = kind

    def __repr__(self) -> str:
        return f"BmtEndpoint({self.kind.value}, {self.node!r})"


class BmtTree:
    """A built BMT over the Bloom filters of consecutive blocks."""

    def __init__(self, root: BmtNode) -> None:
        self.root = root

    @classmethod
    def build(cls, leaves: Sequence[Tuple[int, BloomFilter]]) -> "BmtTree":
        """Build over ``(height, bf)`` pairs.

        Heights must be consecutive and the count a power of two — the
        merge sets of Algorithm 1 always satisfy both.
        """
        if not leaves:
            raise ValueError("BMT needs at least one leaf")
        count = len(leaves)
        if count & (count - 1):
            raise ValueError(f"BMT leaf count must be a power of two: {count}")
        heights = [height for height, _bf in leaves]
        if heights != list(range(heights[0], heights[0] + count)):
            raise ValueError("BMT leaves must cover consecutive heights")
        nodes = [
            BmtNode(leaf_hash(bf), bf, 0, height, height)
            for height, bf in leaves
        ]
        layer = 0
        while len(nodes) > 1:
            layer += 1
            paired = []
            for i in range(0, len(nodes), 2):
                left, right = nodes[i], nodes[i + 1]
                merged = left.bf | right.bf
                paired.append(
                    BmtNode(
                        node_hash(left.hash, right.hash, merged),
                        merged,
                        layer,
                        left.start,
                        right.end,
                        left,
                        right,
                    )
                )
            nodes = paired
        return cls(nodes[0])

    # -- inspection --------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        return self.root.num_blocks

    @property
    def depth(self) -> int:
        return self.root.layer

    @property
    def start(self) -> int:
        return self.root.start

    @property
    def end(self) -> int:
        return self.root.end

    # -- checking ----------------------------------------------------------

    def find_endpoints(
        self, item: bytes, positions: "Optional[List[int]]" = None
    ) -> List[BmtEndpoint]:
        """Top-down existence check; returns endpoints left to right.

        ``positions`` lets the caller supply the item's precomputed
        checked-bit positions for this tree's geometry (derived once per
        query instead of once per tree).
        """
        if positions is None:
            positions = bloom_positions(
                item, self.root.bf.num_hashes, self.root.bf.size_bits
            )
        endpoints: List[BmtEndpoint] = []
        self._descend(self.root, BitArray.positions_mask(positions), endpoints)
        return endpoints

    @staticmethod
    def _descend(node: BmtNode, mask: int, out: List[BmtEndpoint]) -> None:
        if not node.bf.bits.covers_mask(mask):
            out.append(BmtEndpoint(node, EndpointKind.CLEAN))
            return
        if node.is_leaf:
            out.append(BmtEndpoint(node, EndpointKind.LEAF_FAILED))
            return
        assert node.left is not None and node.right is not None
        BmtTree._descend(node.left, mask, out)
        BmtTree._descend(node.right, mask, out)

    # -- proofs ------------------------------------------------------------

    def branch(self, endpoint: BmtEndpoint) -> "BmtBranch":
        """Single-endpoint branch (Fig 4/5) for one endpoint node."""
        path: List[BmtNode] = []
        node = self.root
        while node is not endpoint.node:
            assert node.left is not None and node.right is not None
            if endpoint.node.end <= node.left.end:
                path.append(node.right)
                node = node.left
            else:
                path.append(node.left)
                node = node.right
        # ``path`` holds siblings from root level down; reverse for fold-up.
        siblings = [(sib.hash, sib.bf) for sib in reversed(path)]
        child_hashes = None
        if not endpoint.node.is_leaf:
            assert endpoint.node.left is not None
            assert endpoint.node.right is not None
            child_hashes = (endpoint.node.left.hash, endpoint.node.right.hash)
        index = (endpoint.node.start - self.start) >> endpoint.node.layer
        return BmtBranch(
            endpoint.node.bf,
            endpoint.node.layer,
            index,
            child_hashes,
            siblings,
        )

    def multiproof(
        self,
        item: bytes,
        query_range: "Optional[Tuple[int, int]]" = None,
        positions: "Optional[List[int]]" = None,
        failed_heights: "Optional[List[int]]" = None,
    ) -> "BmtMultiProof":
        """Merged inexistence/endpoint proof (Fig 11) for ``item``.

        With ``query_range=(first, last)`` the proof is *restricted*:
        subtrees entirely outside that height range ship as ``(hash, bf)``
        stubs, supporting verifiable range queries over a slice of the
        blocks the tree covers.

        ``positions`` optionally supplies precomputed checked-bit
        positions (one derivation per query instead of per tree).  When
        ``failed_heights`` is given, the in-range failed-leaf heights
        discovered during this descent are appended to it left-to-right —
        exactly the set :meth:`find_endpoints` would report inside the
        range, but without a second traversal.  (Both traversals descend
        precisely through nodes whose checks fail; a failed leaf's
        ancestors all fail too, because every ancestor filter is a
        superset union of the leaf's.)
        """
        if positions is None:
            positions = bloom_positions(
                item, self.root.bf.num_hashes, self.root.bf.size_bits
            )
        if query_range is None:
            query_range = (self.start, self.end)
        first, last = query_range
        if first > last or first > self.end or last < self.start:
            raise ValueError(
                f"query range [{first},{last}] does not intersect the tree "
                f"range [{self.start},{self.end}]"
            )
        mask = BitArray.positions_mask(positions)
        return BmtMultiProof(
            self._build_proof(self.root, mask, first, last, failed_heights)
        )

    @staticmethod
    def _build_proof(
        node: BmtNode,
        mask: int,
        first: int,
        last: int,
        failed_heights: "Optional[List[int]]" = None,
    ) -> "_ProofNode":
        if node.end < first or node.start > last:  # fully outside the range
            if node.is_leaf:
                return _ProofNode(_TAG_STUB_LEAF, bf=node.bf)
            return _ProofNode(
                _TAG_STUB_INTERNAL, bf=node.bf, stub_hash=node.hash
            )
        if not node.bf.bits.covers_mask(mask):
            if node.is_leaf:
                return _ProofNode(_TAG_CLEAN_LEAF, bf=node.bf)
            assert node.left is not None and node.right is not None
            return _ProofNode(
                _TAG_CLEAN_INTERNAL,
                bf=node.bf,
                child_hashes=(node.left.hash, node.right.hash),
            )
        if node.is_leaf:
            if failed_heights is not None:
                failed_heights.append(node.start)
            return _ProofNode(_TAG_FAILED_LEAF, bf=node.bf)
        assert node.left is not None and node.right is not None
        return _ProofNode(
            _TAG_INTERNAL,
            left=BmtTree._build_proof(
                node.left, mask, first, last, failed_heights
            ),
            right=BmtTree._build_proof(
                node.right, mask, first, last, failed_heights
            ),
        )

    def __repr__(self) -> str:
        return f"BmtTree(blocks=[{self.start},{self.end}], depth={self.depth})"


class _ProofNode:
    """In-memory node of a multiproof frontier."""

    __slots__ = ("tag", "bf", "child_hashes", "left", "right", "stub_hash")

    def __init__(
        self,
        tag: int,
        bf: Optional[BloomFilter] = None,
        child_hashes: Optional[Tuple[bytes, bytes]] = None,
        left: "Optional[_ProofNode]" = None,
        right: "Optional[_ProofNode]" = None,
        stub_hash: Optional[bytes] = None,
    ) -> None:
        self.tag = tag
        self.bf = bf
        self.child_hashes = child_hashes
        self.left = left
        self.right = right
        self.stub_hash = stub_hash


class VerifiedBmt:
    """Outcome of a successful multiproof verification."""

    __slots__ = ("clean_ranges", "failed_heights", "num_endpoints")

    def __init__(
        self,
        clean_ranges: List[Tuple[int, int]],
        failed_heights: List[int],
        num_endpoints: int,
    ) -> None:
        #: Height ranges proven to not contain the address.
        self.clean_ranges = clean_ranges
        #: Heights whose per-block filter check failed (need SMT evidence).
        self.failed_heights = failed_heights
        self.num_endpoints = num_endpoints


class BmtMultiProof:
    """Merged endpoint proof for one BMT (the form LVQ queries ship)."""

    def __init__(self, root: _ProofNode) -> None:
        self._root = root

    # -- verification ------------------------------------------------------

    def verify(
        self,
        expected_root: bytes,
        item: bytes,
        start_height: int,
        num_blocks: int,
        size_bits: int,
        num_hashes: int,
        query_range: "Optional[Tuple[int, int]]" = None,
        positions: "Optional[List[int]]" = None,
    ) -> VerifiedBmt:
        """Check the proof against a trusted ``expected_root``.

        ``positions`` optionally supplies the item's precomputed
        checked-bit positions for ``(num_hashes, size_bits)`` — the
        caller must have derived them for exactly that geometry.

        Raises :class:`VerificationError` on any inconsistency.  On
        success, the union of ``clean_ranges`` and ``failed_heights``
        covers ``[start_height, start_height + num_blocks)`` exactly — the
        structural guarantee completeness verification builds on.

        Contract: ``start_height`` and ``num_blocks`` must come from the
        verifier's own trusted chain state (the covering-segment
        computation), never from the prover.  Eq 2 hashes do not encode a
        node's layer, so the claimed block count is what anchors endpoint
        ranges; LVQ's light node always derives it from its header count.

        ``query_range=(first, last)`` verifies a *restricted* proof: stub
        nodes are accepted only for subtrees entirely outside that range,
        so on success the clean/failed partition still covers every
        in-range block.  Without it, stub nodes are rejected outright.
        """
        if num_blocks <= 0 or num_blocks & (num_blocks - 1):
            raise VerificationError(
                f"BMT block count must be a power of two: {num_blocks}"
            )
        if query_range is None:
            query_range = (start_height, start_height + num_blocks - 1)
        first, last = query_range
        if first > last:
            raise VerificationError(f"empty query range [{first},{last}]")
        depth = num_blocks.bit_length() - 1
        if positions is None:
            positions = bloom_positions(item, num_hashes, size_bits)
        result = VerifiedBmt([], [], 0)
        hash_value, _bf = self._verify_node(
            self._root,
            depth,
            start_height,
            BitArray.positions_mask(positions),
            size_bits,
            result,
            first,
            last,
        )
        if hash_value != expected_root:
            raise VerificationError("BMT multiproof root hash mismatch")
        return result

    def _verify_node(
        self,
        node: _ProofNode,
        layer: int,
        start: int,
        mask: int,
        size_bits: int,
        result: VerifiedBmt,
        first: int,
        last: int,
    ) -> Tuple[bytes, BloomFilter]:
        span = 1 << layer
        if node.tag == _TAG_INTERNAL:
            if layer == 0:
                raise VerificationError("internal proof node at leaf layer")
            assert node.left is not None and node.right is not None
            left_hash, left_bf = self._verify_node(
                node.left,
                layer - 1,
                start,
                mask,
                size_bits,
                result,
                first,
                last,
            )
            right_hash, right_bf = self._verify_node(
                node.right,
                layer - 1,
                start + span // 2,
                mask,
                size_bits,
                result,
                first,
                last,
            )
            merged = left_bf | right_bf
            if not merged.bits.covers_mask(mask):
                raise VerificationError(
                    "descent past a node whose check already succeeds "
                    f"(layer {layer}, start {start}) — proof is not minimal"
                )
            return node_hash(left_hash, right_hash, merged), merged

        bf = node.bf
        assert bf is not None
        if bf.size_bits != size_bits:
            raise VerificationError(
                f"BF size {bf.size_bits} bits differs from the chain "
                f"parameter {size_bits}"
            )

        if node.tag in (_TAG_STUB_LEAF, _TAG_STUB_INTERNAL):
            end = start + span - 1
            if not (end < first or start > last):
                raise VerificationError(
                    f"stub node covering [{start},{end}] intrudes into the "
                    f"queried range [{first},{last}]"
                )
            if node.tag == _TAG_STUB_LEAF:
                if layer != 0:
                    raise VerificationError("leaf stub above layer 0")
                return leaf_hash(bf), bf
            if layer == 0:
                raise VerificationError("internal stub at leaf layer")
            if node.stub_hash is None:
                raise VerificationError("internal stub lacks its hash")
            return node.stub_hash, bf

        check_failed = bf.bits.covers_mask(mask)

        if node.tag == _TAG_CLEAN_LEAF:
            if layer != 0:
                raise VerificationError("clean-leaf endpoint above layer 0")
            if check_failed:
                raise VerificationError(
                    f"endpoint at height {start} claims a successful check "
                    "but every checked bit position is set"
                )
            result.clean_ranges.append((start, start))
            result.num_endpoints += 1
            return leaf_hash(bf), bf

        if node.tag == _TAG_CLEAN_INTERNAL:
            if layer == 0:
                raise VerificationError("internal endpoint at leaf layer")
            if check_failed:
                raise VerificationError(
                    f"endpoint covering [{start},{start + span - 1}] claims "
                    "a successful check but every checked bit position is set"
                )
            if node.child_hashes is None:
                raise VerificationError("internal endpoint lacks child hashes")
            result.clean_ranges.append((start, start + span - 1))
            result.num_endpoints += 1
            return node_hash(node.child_hashes[0], node.child_hashes[1], bf), bf

        if node.tag == _TAG_FAILED_LEAF:
            if layer != 0:
                raise VerificationError("failed endpoint above layer 0")
            if not first <= start <= last:
                raise VerificationError(
                    f"failed endpoint at height {start} lies outside the "
                    f"queried range [{first},{last}] — it must be a stub"
                )
            if not check_failed:
                raise VerificationError(
                    f"endpoint at height {start} claims a failed check but "
                    "some checked bit position is clear"
                )
            result.failed_heights.append(start)
            result.num_endpoints += 1
            return leaf_hash(bf), bf

        raise VerificationError(f"unknown multiproof node tag {node.tag}")

    # -- statistics --------------------------------------------------------

    def num_endpoints(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.tag == _TAG_INTERNAL:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
            elif node.tag not in (_TAG_STUB_LEAF, _TAG_STUB_INTERNAL):
                count += 1
        return count

    def num_stubs(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.tag == _TAG_INTERNAL:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
            elif node.tag in (_TAG_STUB_LEAF, _TAG_STUB_INTERNAL):
                count += 1
        return count

    def failed_leaf_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.tag == _TAG_INTERNAL:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
            elif node.tag == _TAG_FAILED_LEAF:
                count += 1
        return count

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        parts: List[bytes] = []
        self._serialize_node(self._root, parts)
        return b"".join(parts)

    @staticmethod
    def _serialize_node(node: _ProofNode, parts: List[bytes]) -> None:
        parts.append(bytes([node.tag]))
        if node.tag == _TAG_INTERNAL:
            assert node.left is not None and node.right is not None
            BmtMultiProof._serialize_node(node.left, parts)
            BmtMultiProof._serialize_node(node.right, parts)
            return
        assert node.bf is not None
        if node.tag == _TAG_CLEAN_INTERNAL:
            assert node.child_hashes is not None
            parts.append(node.child_hashes[0])
            parts.append(node.child_hashes[1])
        elif node.tag == _TAG_STUB_INTERNAL:
            assert node.stub_hash is not None
            parts.append(node.stub_hash)
        parts.append(node.bf.to_bytes())

    @classmethod
    def deserialize(
        cls, reader: ByteReader, size_bits: int, num_hashes: int
    ) -> "BmtMultiProof":
        return cls(cls._deserialize_node(reader, size_bits, num_hashes, 0))

    @classmethod
    def _deserialize_node(
        cls, reader: ByteReader, size_bits: int, num_hashes: int, depth: int
    ) -> _ProofNode:
        if depth > 64:
            raise EncodingError("BMT multiproof nests implausibly deep")
        tag = reader.bytes(1)[0]
        if tag == _TAG_INTERNAL:
            left = cls._deserialize_node(reader, size_bits, num_hashes, depth + 1)
            right = cls._deserialize_node(reader, size_bits, num_hashes, depth + 1)
            return _ProofNode(_TAG_INTERNAL, left=left, right=right)
        child_hashes = None
        stub_hash = None
        if tag == _TAG_CLEAN_INTERNAL:
            child_hashes = (reader.bytes(HASH_SIZE), reader.bytes(HASH_SIZE))
        elif tag == _TAG_STUB_INTERNAL:
            stub_hash = reader.bytes(HASH_SIZE)
        elif tag not in (_TAG_CLEAN_LEAF, _TAG_FAILED_LEAF, _TAG_STUB_LEAF):
            raise EncodingError(f"unknown BMT multiproof tag {tag}")
        bf = BloomFilter.from_bytes(reader.bytes(size_bits // 8), num_hashes)
        return _ProofNode(
            tag, bf=bf, child_hashes=child_hashes, stub_hash=stub_hash
        )

    def size_bytes(self) -> int:
        return len(self.serialize())


class BmtBranch:
    """Single-endpoint BMT branch (Fig 4/5); mostly pedagogical — queries
    ship :class:`BmtMultiProof`, which merges all branches of a tree."""

    __slots__ = ("bf", "layer", "index", "child_hashes", "siblings")

    def __init__(
        self,
        bf: BloomFilter,
        layer: int,
        index: int,
        child_hashes: Optional[Tuple[bytes, bytes]],
        siblings: Sequence[Tuple[bytes, BloomFilter]],
    ) -> None:
        if layer == 0 and child_hashes is not None:
            raise ProofError("leaf endpoints have no child hashes")
        if layer > 0 and child_hashes is None:
            raise ProofError("internal endpoints need their child hashes")
        if index < 0 or index >> len(siblings):
            raise ProofError(
                f"endpoint index {index} does not fit above depth "
                f"{len(siblings)}"
            )
        self.bf = bf
        self.layer = layer
        self.index = index
        self.child_hashes = child_hashes
        self.siblings = list(siblings)

    def endpoint_hash(self) -> bytes:
        if self.layer == 0:
            return leaf_hash(self.bf)
        assert self.child_hashes is not None
        return node_hash(self.child_hashes[0], self.child_hashes[1], self.bf)

    def compute_root(self) -> Tuple[bytes, BloomFilter]:
        """Fold to the root; returns ``(root_hash, root_bf)``."""
        current_hash = self.endpoint_hash()
        current_bf = self.bf
        index = self.index
        for sibling_hash, sibling_bf in self.siblings:
            merged = current_bf | sibling_bf
            if index & 1:
                current_hash = node_hash(sibling_hash, current_hash, merged)
            else:
                current_hash = node_hash(current_hash, sibling_hash, merged)
            current_bf = merged
            index >>= 1
        return current_hash, current_bf

    def verify_inexistence(
        self, expected_root: bytes, item: bytes
    ) -> Tuple[int, int]:
        """Verify the branch and that the endpoint check succeeds for
        ``item``; returns the covered ``(offset, span)`` relative to the
        tree start: blocks ``start + offset .. start + offset + span - 1``.
        """
        root_hash, _root_bf = self.compute_root()
        if root_hash != expected_root:
            raise VerificationError("BMT branch root hash mismatch")
        positions = bloom_positions(item, self.bf.num_hashes, self.bf.size_bits)
        if self.bf.bits.covers_positions(positions):
            raise VerificationError(
                "BMT branch endpoint does not witness inexistence: every "
                "checked bit position is set"
            )
        span = 1 << self.layer
        return self.index * span, span

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        parts = [
            write_varint(self.layer),
            write_varint(self.index),
            self.bf.to_bytes(),
        ]
        if self.child_hashes is not None:
            parts.extend(self.child_hashes)
        parts.append(write_varint(len(self.siblings)))
        for sibling_hash, sibling_bf in self.siblings:
            parts.append(sibling_hash)
            parts.append(sibling_bf.to_bytes())
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls, reader: ByteReader, size_bits: int, num_hashes: int
    ) -> "BmtBranch":
        layer = reader.varint()
        index = reader.varint()
        bf = BloomFilter.from_bytes(reader.bytes(size_bits // 8), num_hashes)
        child_hashes = None
        if layer > 0:
            child_hashes = (reader.bytes(HASH_SIZE), reader.bytes(HASH_SIZE))
        count = reader.varint()
        if count > 64:
            raise EncodingError(f"implausible BMT branch depth {count}")
        siblings = []
        for _ in range(count):
            sibling_hash = reader.bytes(HASH_SIZE)
            sibling_bf = BloomFilter.from_bytes(
                reader.bytes(size_bits // 8), num_hashes
            )
            siblings.append((sibling_hash, sibling_bf))
        return cls(bf, layer, index, child_hashes, siblings)

    def size_bytes(self) -> int:
        return len(self.serialize())


class BmtForest:
    """Shared-subtree cache over a chain's per-block filters.

    Merge sets produced by Algorithm 1 are aligned dyadic ranges, so the
    BMT of a later block reuses the subtrees of earlier ones verbatim.
    The forest memoizes every ``(start, end)`` node, making the cost of
    indexing a whole segment O(M) tree nodes instead of O(M log M).
    """

    def __init__(self) -> None:
        self._bfs: Dict[int, BloomFilter] = {}
        self._nodes: Dict[Tuple[int, int], BmtNode] = {}

    def add_block(self, height: int, bf: BloomFilter) -> None:
        if height in self._bfs:
            raise ValueError(f"height {height} already registered")
        self._bfs[height] = bf

    def block_filter(self, height: int) -> BloomFilter:
        return self._bfs[height]

    @property
    def max_height(self) -> int:
        """Highest registered block height (``-1`` when empty)."""
        return max(self._bfs) if self._bfs else -1

    def rollback_to(self, height: int) -> None:
        """Forget every filter above ``height`` and every memoized node
        whose span reaches above it.

        Nodes covering only heights ``<= height`` are untouched, so a
        later re-append over the same prefix rebuilds exactly the merge
        sets that changed — the BMT half of a reorg is O(affected spans),
        not O(chain).
        """
        for stale in [h for h in self._bfs if h > height]:
            del self._bfs[stale]
        for key in [key for key in self._nodes if key[1] > height]:
            del self._nodes[key]

    def node(self, start: int, end: int) -> BmtNode:
        """The BMT node covering heights ``[start, end]`` (dyadic range)."""
        key = (start, end)
        cached = self._nodes.get(key)
        if cached is not None:
            return cached
        count = end - start + 1
        if count <= 0 or count & (count - 1):
            raise ValueError(f"[{start},{end}] is not a power-of-two range")
        if count == 1:
            bf = self._bfs.get(start)
            if bf is None:
                raise ValueError(f"no Bloom filter registered for height {start}")
            built = BmtNode(leaf_hash(bf), bf, 0, start, start)
        else:
            mid = start + count // 2
            left = self.node(start, mid - 1)
            right = self.node(mid, end)
            merged = left.bf | right.bf
            built = BmtNode(
                node_hash(left.hash, right.hash, merged),
                merged,
                left.layer + 1,
                start,
                end,
                left,
                right,
            )
        self._nodes[key] = built
        return built

    def tree(self, start: int, end: int) -> BmtTree:
        return BmtTree(self.node(start, end))
