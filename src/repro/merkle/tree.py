"""Bitcoin-style Merkle tree and Merkle branches (paper §II-A).

Transactions in a block are hashed into a binary tree whose root lives in
the block header.  A :class:`MerkleBranch` (the paper's "MBr") proves that
one transaction is committed by the root — the *correctness* half of the
verifiable-query problem.  As the paper stresses, an MBr can never prove
*inexistence*; that is what the SMT and BMT exist for.

The construction follows Bitcoin: ``sha256d`` everywhere and odd levels
duplicate their last node.  The branch carries the leaf index so the
verifier can fold siblings on the correct side, and so two branches for
the same root can be shown to refer to *distinct* leaves (needed when the
SMT says an address appears ``c`` times and the prover must exhibit ``c``
different transactions).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.encoding import ByteReader, write_varint
from repro.crypto.hashing import HASH_SIZE, sha256d
from repro.errors import EncodingError, ProofError


def _combine(left: bytes, right: bytes) -> bytes:
    return sha256d(left + right)


class MerkleBranch:
    """An authentication path from one leaf to the Merkle root."""

    __slots__ = ("leaf_hash", "leaf_index", "siblings")

    def __init__(
        self, leaf_hash: bytes, leaf_index: int, siblings: Sequence[bytes]
    ) -> None:
        if len(leaf_hash) != HASH_SIZE:
            raise ProofError(f"leaf hash must be {HASH_SIZE} bytes")
        if leaf_index < 0:
            raise ProofError(f"negative leaf index {leaf_index}")
        for sibling in siblings:
            if len(sibling) != HASH_SIZE:
                raise ProofError(f"sibling hash must be {HASH_SIZE} bytes")
        if leaf_index >> len(siblings):
            raise ProofError(
                f"leaf index {leaf_index} does not fit in depth {len(siblings)}"
            )
        self.leaf_hash = leaf_hash
        self.leaf_index = leaf_index
        self.siblings = list(siblings)

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def compute_root(self) -> bytes:
        """Fold the branch upward and return the implied root."""
        node = self.leaf_hash
        index = self.leaf_index
        for sibling in self.siblings:
            if index & 1:
                node = _combine(sibling, node)
            else:
                node = _combine(node, sibling)
            index >>= 1
        return node

    def verify(self, root: bytes) -> bool:
        """True iff the branch authenticates ``leaf_hash`` under ``root``."""
        return self.compute_root() == root

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        parts = [
            self.leaf_hash,
            write_varint(self.leaf_index),
            write_varint(len(self.siblings)),
        ]
        parts.extend(self.siblings)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "MerkleBranch":
        leaf_hash = reader.bytes(HASH_SIZE)
        leaf_index = reader.varint()
        count = reader.varint()
        if count > 64:
            raise EncodingError(f"implausible branch depth {count}")
        siblings = [reader.bytes(HASH_SIZE) for _ in range(count)]
        return cls(leaf_hash, leaf_index, siblings)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "MerkleBranch":
        reader = ByteReader(payload)
        branch = cls.deserialize(reader)
        reader.finish()
        return branch

    def size_bytes(self) -> int:
        return len(self.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MerkleBranch):
            return NotImplemented
        return (
            self.leaf_hash == other.leaf_hash
            and self.leaf_index == other.leaf_index
            and self.siblings == other.siblings
        )

    def __repr__(self) -> str:
        return f"MerkleBranch(index={self.leaf_index}, depth={self.depth})"


class MerkleTree:
    """Full Merkle tree over a list of leaf hashes (e.g. txids)."""

    def __init__(self, leaf_hashes: Sequence[bytes]) -> None:
        if not leaf_hashes:
            raise ValueError("Merkle tree needs at least one leaf")
        for leaf in leaf_hashes:
            if len(leaf) != HASH_SIZE:
                raise ValueError(f"leaf hashes must be {HASH_SIZE} bytes")
        self._levels: List[List[bytes]] = [list(leaf_hashes)]
        level = self._levels[0]
        while len(level) > 1:
            if len(level) & 1:
                level = level + [level[-1]]  # Bitcoin's duplicate-last rule
            parent = [
                _combine(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(parent)
            level = parent

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def num_leaves(self) -> int:
        return len(self._levels[0])

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def leaf(self, index: int) -> bytes:
        return self._levels[0][index]

    def branch(self, leaf_index: int) -> MerkleBranch:
        """Authentication path for the leaf at ``leaf_index``."""
        if not 0 <= leaf_index < self.num_leaves:
            raise IndexError(
                f"leaf index {leaf_index} out of range [0, {self.num_leaves})"
            )
        siblings: List[bytes] = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index >= len(level):
                sibling_index = index  # duplicated last node
            siblings.append(level[sibling_index])
            index >>= 1
        return MerkleBranch(self._levels[0][leaf_index], leaf_index, siblings)

    def __repr__(self) -> str:
        return f"MerkleTree(leaves={self.num_leaves}, depth={self.depth})"
