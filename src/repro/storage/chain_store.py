"""On-disk chain and header storage.

A chain directory holds three files:

* ``manifest.json`` — the :class:`SystemConfig` plus block count and the
  tip block id (hex), written last so a torn write is detectable;
* ``bodies.dat``   — concatenated ``var_bytes(block body)`` records;
* ``headers.dat``  — concatenated ``var_bytes(header)`` records.

``load_system`` rebuilds the full node's indexes (filters, SMTs, Merkle
trees, BMT forest) from the bodies — they are pure functions of the
blocks — and then cross-checks every rebuilt header against the stored
one, so silent corruption of either file is caught at load time rather
than at query time.

Light nodes persist just the header file via :func:`save_headers` /
:func:`load_headers`; loading re-validates the prev-hash linkage.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Union

from repro.chain.block import Block, BlockHeader
from repro.crypto.encoding import ByteReader, write_var_bytes
from repro.errors import ChainError, EncodingError
from repro.query.builder import BuiltSystem, build_system
from repro.query.config import SystemConfig

_MANIFEST = "manifest.json"
_BODIES = "bodies.dat"
_HEADERS = "headers.dat"

PathLike = Union[str, pathlib.Path]


def save_system(system: BuiltSystem, directory: PathLike) -> None:
    """Persist a built chain to ``directory`` (created if missing)."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with open(path / _BODIES, "wb") as bodies_file:
        for block in system.chain:
            bodies_file.write(write_var_bytes(block.body_bytes()))
    with open(path / _HEADERS, "wb") as headers_file:
        for header in system.headers():
            headers_file.write(write_var_bytes(header.serialize()))

    manifest = {
        "format": 1,
        "config": system.config.to_dict(),
        "blocks": len(system.chain),
        "tip_id": system.chain.header_at(system.tip_height)
        .block_id()
        .hex(),
    }
    # The manifest is written last — its presence marks a complete store —
    # and atomically: a crash mid-write must leave either the old manifest
    # or the new one, never a torn JSON prefix.
    tmp_path = path / (_MANIFEST + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(json.dumps(manifest, indent=2).encode("ascii"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path / _MANIFEST)
    _fsync_dir(path)


def load_system(directory: PathLike) -> BuiltSystem:
    """Load a chain directory and rebuild the full node's indexes.

    Raises :class:`ChainError` on any inconsistency between manifest,
    bodies, and headers.
    """
    path = pathlib.Path(directory)
    try:
        manifest = json.loads((path / _MANIFEST).read_text())
    except FileNotFoundError as exc:
        raise ChainError(f"no chain manifest in {path}") from exc
    except json.JSONDecodeError as exc:
        raise ChainError(f"corrupt chain manifest in {path}: {exc}") from exc
    if isinstance(manifest, dict) and manifest.get("format") == 2:
        # A durable (append-only log) store — recover it transparently.
        from repro.storage.durable import DurableStore

        return DurableStore.open(path).system
    if not isinstance(manifest, dict) or manifest.get("format") != 1:
        raise ChainError(
            "unsupported or malformed chain store manifest"
        )
    try:
        config = SystemConfig.from_dict(manifest["config"])
        expected_blocks = int(manifest["blocks"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ChainError(f"malformed chain manifest: {exc}") from exc
    if expected_blocks <= 0:
        raise ChainError(f"manifest promises {expected_blocks} blocks")

    bodies = _read_records(path / _BODIES)
    if len(bodies) != expected_blocks:
        raise ChainError(
            f"manifest promises {expected_blocks} blocks, bodies file has "
            f"{len(bodies)}"
        )
    transactions = [Block.body_from_bytes(body) for body in bodies]
    system = build_system(transactions, config)

    stored_headers = _read_records(path / _HEADERS)
    if len(stored_headers) != expected_blocks:
        raise ChainError(
            f"manifest promises {expected_blocks} headers, header file has "
            f"{len(stored_headers)}"
        )
    for height, (stored, rebuilt) in enumerate(
        zip(stored_headers, system.headers())
    ):
        if stored != rebuilt.serialize():
            raise ChainError(
                f"stored header at height {height} does not match the "
                "header rebuilt from the bodies — store is corrupt"
            )
    tip_id = system.chain.header_at(system.tip_height).block_id().hex()
    if manifest.get("tip_id") != tip_id:
        raise ChainError("manifest tip id does not match the stored chain")
    return system


def save_headers(headers: List[BlockHeader], file_path: PathLike) -> None:
    """Persist a light node's header list to one file."""
    with open(file_path, "wb") as handle:
        for header in headers:
            handle.write(write_var_bytes(header.serialize()))


def load_headers(
    file_path: PathLike, config: SystemConfig
) -> List[BlockHeader]:
    """Load and linkage-validate a light node's header file."""
    raw = pathlib.Path(file_path).read_bytes()
    reader = ByteReader(raw)
    headers: List[BlockHeader] = []
    while reader.remaining:
        record = ByteReader(reader.var_bytes())
        header = BlockHeader.deserialize(
            record, config.header_extension_kind, config.header_bloom_bytes
        )
        record.finish()
        if headers and header.prev_hash != headers[-1].block_id():
            raise ChainError(
                f"header {len(headers)} in {file_path} does not link onto "
                "its predecessor"
            )
        headers.append(header)
    return headers


def _fsync_dir(path: pathlib.Path) -> None:
    """Flush the directory entry after a rename (best-effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def _read_records(file_path: pathlib.Path) -> List[bytes]:
    try:
        raw = file_path.read_bytes()
    except FileNotFoundError as exc:
        raise ChainError(f"missing chain store file {file_path}") from exc
    reader = ByteReader(raw)
    records = []
    try:
        while reader.remaining:
            records.append(reader.var_bytes())
    except EncodingError as exc:
        raise ChainError(f"corrupt chain store file {file_path}: {exc}") from exc
    return records
