"""A minimal virtual filesystem with SQLite-style crash injection.

The durable store routes every write-side operation — file writes,
fsyncs, atomic renames, directory syncs — through a :class:`Vfs` object
instead of calling :mod:`os` directly.  Production code uses the plain
:class:`Vfs`; the kill-point recovery harness swaps in

* :class:`CountingVfs` — counts *fault points* (one per written byte,
  one per fsync/replace/dir-sync/truncate) without failing, to size the
  crash matrix; and
* :class:`CrashVfs` — dies at an exact fault point: the write in
  progress lands **partially** (bytes up to the boundary reach the
  file), :class:`CrashPoint` is raised, and every later operation also
  raises, exactly as if the process had been SIGKILLed mid-syscall.

Byte granularity matters: a crash budget that only fell between whole
records could never produce the torn frames the recovery path must
truncate, so the harness would not actually be testing recovery.

:class:`CrashPoint` deliberately does *not* derive from
:class:`~repro.errors.ReproError` — it simulates the process dying, and
nothing in the library is allowed to catch and survive it.
"""

from __future__ import annotations

import os
import pathlib
from typing import IO, Union

PathLike = Union[str, pathlib.Path]


class CrashPoint(Exception):
    """The simulated kill signal injected by :class:`CrashVfs`.

    Carries the fault-point index at which the process "died" so harness
    reports can name the exact crash offset.
    """

    def __init__(self, fault_point: int) -> None:
        super().__init__(f"simulated crash at fault point {fault_point}")
        self.fault_point = fault_point


class Vfs:
    """Real OS operations — the production filesystem."""

    def open(self, path: PathLike, mode: str) -> IO[bytes]:
        return open(path, mode)

    def fsync(self, handle: IO[bytes]) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def truncate(self, handle: IO[bytes], size: int) -> None:
        handle.truncate(size)

    def replace(self, source: PathLike, destination: PathLike) -> None:
        os.replace(source, destination)

    def fsync_dir(self, path: PathLike) -> None:
        """Flush a directory entry (best-effort where unsupported)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)


class _MeteredFile:
    """File wrapper that charges writes to its VFS's fault counter."""

    def __init__(self, vfs: "CountingVfs", handle: IO[bytes]) -> None:
        self._vfs = vfs
        self._handle = handle

    def write(self, data: bytes) -> int:
        allowed = self._vfs._consume_bytes(len(data))
        if allowed:
            self._handle.write(data[:allowed])
        if allowed < len(data):
            # The kill landed mid-write: make the partial bytes visible
            # to the post-mortem (the OS would have them in page cache
            # or on disk; either way recovery must cope), then die.
            self._handle.flush()
            self._vfs._die()
        return len(data)

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def fileno(self) -> int:
        return self._handle.fileno()

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._handle.seek(offset, whence)

    def tell(self) -> int:
        return self._handle.tell()

    def read(self, size: int = -1) -> bytes:
        return self._handle.read(size)

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "_MeteredFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CountingVfs(Vfs):
    """Counts fault points without ever failing.

    A dry run of a schedule under this VFS yields ``fault_points`` — the
    size of the crash matrix :class:`CrashVfs` can then sweep.
    """

    def __init__(self) -> None:
        self.fault_points = 0

    # -- fault accounting --------------------------------------------------

    def _consume_bytes(self, count: int) -> int:
        """Charge ``count`` written bytes; returns how many may land."""
        self.fault_points += count
        return count

    def _consume_op(self) -> None:
        self.fault_points += 1

    def _die(self) -> None:  # pragma: no cover - CountingVfs never dies
        raise AssertionError("CountingVfs must not crash")

    # -- metered operations ------------------------------------------------

    def open(self, path: PathLike, mode: str) -> IO[bytes]:
        handle = super().open(path, mode)
        if "w" in mode or "a" in mode or "+" in mode:
            return _MeteredFile(self, handle)  # type: ignore[return-value]
        return handle

    def fsync(self, handle: IO[bytes]) -> None:
        self._consume_op()
        super().fsync(handle)

    def truncate(self, handle: IO[bytes], size: int) -> None:
        self._consume_op()
        super().truncate(handle, size)

    def replace(self, source: PathLike, destination: PathLike) -> None:
        self._consume_op()
        super().replace(source, destination)

    def fsync_dir(self, path: PathLike) -> None:
        self._consume_op()
        super().fsync_dir(path)


class CrashVfs(CountingVfs):
    """Dies at fault point ``crash_at`` (1-based) and stays dead.

    The operation in progress is applied up to the boundary — a write
    lands its first ``crash_at - consumed`` bytes, an fsync/replace is
    skipped entirely — and :class:`CrashPoint` propagates.  Afterwards
    every operation raises immediately: a dead process issues no I/O.
    """

    def __init__(self, crash_at: int) -> None:
        super().__init__()
        if crash_at < 1:
            raise ValueError(f"crash point must be >= 1, got {crash_at}")
        self.crash_at = crash_at
        self.dead = False

    def _check_alive(self) -> None:
        if self.dead:
            raise CrashPoint(self.crash_at)

    def _consume_bytes(self, count: int) -> int:
        self._check_alive()
        budget = self.crash_at - self.fault_points
        self.fault_points += min(count, budget)
        return min(count, budget) if count >= budget else count

    def _consume_op(self) -> None:
        self._check_alive()
        self.fault_points += 1
        if self.fault_points >= self.crash_at:
            self._die()

    def _die(self) -> None:
        self.dead = True
        raise CrashPoint(self.crash_at)

    def open(self, path: PathLike, mode: str) -> IO[bytes]:
        self._check_alive()
        return super().open(path, mode)

    def fsync(self, handle: IO[bytes]) -> None:
        self._check_alive()
        self._consume_op()
        Vfs.fsync(self, handle)

    def truncate(self, handle: IO[bytes], size: int) -> None:
        self._check_alive()
        self._consume_op()
        Vfs.truncate(self, handle, size)

    def replace(self, source: PathLike, destination: PathLike) -> None:
        self._check_alive()
        self._consume_op()
        Vfs.replace(self, source, destination)

    def fsync_dir(self, path: PathLike) -> None:
        self._check_alive()
        self._consume_op()
        Vfs.fsync_dir(self, path)
