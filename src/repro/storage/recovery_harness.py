"""Kill-point recovery harness for the durable store.

SQLite's crash tests work by re-running a workload and killing the
process at every I/O boundary; this is the same idea for
:class:`~repro.storage.durable.DurableStore`:

1. build a *pristine* store and a schedule of primitive mutations
   (appends and rollbacks — a reorg is a rollback followed by appends);
2. dry-run the schedule under a :class:`~repro.storage.vfs.CountingVfs`
   to size the crash matrix (one fault point per written byte, one per
   fsync/replace/dir-sync/truncate) and run it to completion once with
   a real VFS — the never-crashed *oracle*;
3. for each crash point: copy the pristine store, swap in a
   :class:`~repro.storage.vfs.CrashVfs`, apply the schedule until the
   simulated kill, then reopen with a real VFS and check

   * recovery succeeds and lands on a state the oracle passed through
     (the committed prefix, possibly plus one adopted in-flight record);
   * resuming the remaining schedule from that state reproduces the
     oracle byte-for-byte — headers and full verifiable query answers
     for every probe address.

Matching the recovered ``(blocks, tip_id)`` against the oracle's prefix
states tells the harness where to resume: the schedule's operations are
functions of the current chain state alone, so any index with an equal
state replays to the same final state.

Run directly for the CI smoke job::

    python -m repro.storage.recovery_harness --blocks 6 --txs 2 --step 97
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
from typing import List, Optional, Sequence, Tuple

from repro.query.builder import BuiltSystem, build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.storage.durable import DurableStore, verify_store
from repro.storage.vfs import CountingVfs, CrashPoint, CrashVfs, Vfs
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

# A primitive op: ("append", transactions) or ("rollback", height).
Op = Tuple[str, object]


class HarnessResult:
    """Aggregate outcome of one harness run."""

    __slots__ = (
        "fault_points",
        "crashes_tested",
        "divergences",
        "ops",
        "blocks_final",
    )

    def __init__(
        self,
        fault_points: int,
        crashes_tested: int,
        divergences: List[dict],
        ops: int,
        blocks_final: int,
    ) -> None:
        self.fault_points = fault_points
        self.crashes_tested = crashes_tested
        self.divergences = divergences
        self.ops = ops
        self.blocks_final = blocks_final

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "fault_points": self.fault_points,
            "crashes_tested": self.crashes_tested,
            "ops": self.ops,
            "blocks_final": self.blocks_final,
            "divergences": self.divergences,
        }


def build_schedule(
    num_blocks: int,
    txs_per_block: int,
    seed: int,
    config: Optional[SystemConfig] = None,
) -> Tuple[BuiltSystem, List[Op], List[str], SystemConfig]:
    """Deterministic append → reorg → append schedule.

    Returns ``(initial_system, ops, probe_addresses, config)``.  The
    initial system covers the first half of the main-fork bodies; the
    ops then extend it, switch to a fork (rollback + divergent bodies),
    and keep appending on the fork — exercising every record type.
    """
    if num_blocks < 4:
        raise ValueError("schedule needs at least 4 blocks")
    config = config or SystemConfig.lvq(bf_bytes=128, segment_len=4)
    main = generate_workload(
        WorkloadParams(
            num_blocks=num_blocks,
            txs_per_block=txs_per_block,
            seed=seed,
            probes=[ProbeProfile("P", min(4, num_blocks - 1), txs_per_block)],
        )
    )
    fork = generate_workload(
        WorkloadParams(
            num_blocks=num_blocks,
            txs_per_block=txs_per_block,
            seed=seed + 1,
            probes=[ProbeProfile("P", min(4, num_blocks - 1), txs_per_block)],
        )
    )
    bodies = main.bodies  # heights 0..num_blocks
    base = len(bodies) // 2
    system = build_system(bodies[:base], config)

    fork_height = max(1, base - 2)
    ops: List[Op] = []
    for body in bodies[base:]:
        ops.append(("append", body))
    ops.append(("rollback", fork_height))
    for body in fork.bodies[fork_height + 1 : fork_height + 4]:
        ops.append(("append", body))
    ops.append(("append", main.bodies[1]))

    probes = sorted(
        set(main.probe_addresses.values()) | set(fork.probe_addresses.values())
    )
    return system, ops, probes, config


def _apply_op(store: DurableStore, op: Op) -> None:
    kind, arg = op
    if kind == "append":
        store.append_block(arg)  # type: ignore[arg-type]
    elif kind == "rollback":
        store.rollback_to(arg)  # type: ignore[arg-type]
    else:  # pragma: no cover - schedule construction bug
        raise ValueError(f"unknown op {kind!r}")


def _state_of(store: DurableStore) -> Tuple[int, str]:
    system = store.system
    return (
        len(system.chain),
        system.chain.header_at(system.tip_height).block_id().hex(),
    )


def _fingerprint(store: DurableStore, probes: Sequence[str]) -> bytes:
    """Full behavioural fingerprint: headers + every probe's answer."""
    system = store.system
    parts = [header.serialize() for header in system.headers()]
    for address in probes:
        parts.append(
            answer_query(system, address).serialize(system.config)
        )
    return b"".join(parts)


def run_harness(
    num_blocks: int = 6,
    txs_per_block: int = 2,
    seed: int = 1,
    step: int = 1,
    workdir: Optional[pathlib.Path] = None,
    deep_fsck: bool = False,
) -> HarnessResult:
    """Sweep the crash matrix; returns the aggregate result.

    ``step`` thins the matrix (every ``step``-th fault point) for smoke
    runs; ``step=1`` is the exhaustive sweep the acceptance criterion
    demands.  ``deep_fsck`` additionally runs :func:`verify_store` with
    header cross-checking after every recovery.
    """
    owns_workdir = workdir is None
    root = pathlib.Path(
        tempfile.mkdtemp(prefix="lvq-recovery-")
        if owns_workdir
        else workdir
    )
    try:
        system, ops, probes, config = build_schedule(
            num_blocks, txs_per_block, seed
        )
        pristine = root / "pristine"
        DurableStore.create(pristine, system)

        # Oracle run (real VFS) — also records every prefix state.
        oracle_dir = root / "oracle"
        shutil.copytree(pristine, oracle_dir)
        oracle = DurableStore.open(oracle_dir)
        prefix_states: List[Tuple[int, str]] = [_state_of(oracle)]
        for op in ops:
            _apply_op(oracle, op)
            prefix_states.append(_state_of(oracle))
        oracle_print = _fingerprint(oracle, probes)
        blocks_final = len(oracle.system.chain)

        # Dry run under CountingVfs sizes the crash matrix.
        counting_dir = root / "counting"
        shutil.copytree(pristine, counting_dir)
        counter = CountingVfs()
        dry = DurableStore.open(counting_dir, counter)
        baseline = counter.fault_points
        for op in ops:
            _apply_op(dry, op)
        fault_points = counter.fault_points - baseline
        shutil.rmtree(counting_dir)

        divergences: List[dict] = []
        crashes_tested = 0
        work = root / "crash"
        for crash_at in range(1, fault_points + 1, max(1, step)):
            crashes_tested += 1
            if work.exists():
                shutil.rmtree(work)
            shutil.copytree(pristine, work)
            store = DurableStore.open(work)
            store.vfs = CrashVfs(crash_at)
            try:
                for op in ops:
                    _apply_op(store, op)
            except CrashPoint:
                pass
            else:
                divergences.append(
                    {"crash_at": crash_at, "error": "crash never fired"}
                )
                continue

            try:
                recovered = DurableStore.open(work)
            except Exception as exc:  # noqa: BLE001 - report, don't abort
                divergences.append(
                    {"crash_at": crash_at, "error": f"recovery failed: {exc}"}
                )
                continue

            state = _state_of(recovered)
            if state not in prefix_states:
                divergences.append(
                    {
                        "crash_at": crash_at,
                        "error": f"recovered to unknown state {state}",
                    }
                )
                continue
            if deep_fsck:
                report = verify_store(work, deep=True)
                if not report.ok:
                    divergences.append(
                        {"crash_at": crash_at, "error": report.detail}
                    )
                    continue

            resume_at = prefix_states.index(state)
            try:
                for op in ops[resume_at:]:
                    _apply_op(recovered, op)
            except Exception as exc:  # noqa: BLE001 - report, don't abort
                divergences.append(
                    {"crash_at": crash_at, "error": f"resume failed: {exc}"}
                )
                continue
            if _fingerprint(recovered, probes) != oracle_print:
                divergences.append(
                    {
                        "crash_at": crash_at,
                        "error": "final state diverges from oracle",
                    }
                )
        if work.exists():
            shutil.rmtree(work)
        return HarnessResult(
            fault_points, crashes_tested, divergences, len(ops), blocks_final
        )
    finally:
        if owns_workdir:
            shutil.rmtree(root, ignore_errors=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill-point recovery sweep for the durable chain store"
    )
    parser.add_argument("--blocks", type=int, default=6)
    parser.add_argument("--txs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--step",
        type=int,
        default=1,
        help="test every Nth fault point (1 = exhaustive)",
    )
    parser.add_argument(
        "--deep-fsck",
        action="store_true",
        help="run a deep verify_store after every recovery",
    )
    args = parser.parse_args(argv)
    result = run_harness(
        num_blocks=args.blocks,
        txs_per_block=args.txs,
        seed=args.seed,
        step=args.step,
        deep_fsck=args.deep_fsck,
    )
    json.dump(result.to_dict(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
