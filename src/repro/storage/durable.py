"""Crash-safe incremental chain store.

:func:`~repro.storage.chain_store.save_system` rewrites the whole store
on every save — O(chain) per block and a wide window in which a crash
leaves nothing usable.  :class:`DurableStore` replaces that with an
append-only record log (``chain.log``, framed per
:mod:`repro.storage.record_log`) and a small manifest checkpoint, so
``append_block`` and reorgs persist O(delta) and every commit is
crash-atomic.

Commit protocol (one mutation)::

    1. apply the mutation to the in-memory BuiltSystem
    2. append the framed record to chain.log; fsync the log
    3. write manifest.json.tmp (new block count, tip id, log length);
       fsync it; os.replace over manifest.json; fsync the directory

A crash anywhere in that sequence is recoverable:

* during 2 — the log has a torn frame beyond the manifest's committed
  ``log_bytes``; recovery truncates it and the store reopens at the
  previous commit;
* between 2 and 3 — the log carries a whole fsynced record the manifest
  does not know about; recovery *adopts* it (its effects were durable)
  and rewrites the manifest;
* during 3 — either the old manifest survives (tmp writes are to a side
  file) or the replace completed; both name a valid log prefix.

The invariant recovery enforces is that the manifest's ``log_bytes`` is
a durability *lower bound*: every byte below it must parse cleanly and
replay to exactly the manifest's ``blocks``/``tip_id`` — damage there is
real corruption (:class:`~repro.errors.ChainError`), never a torn tail.

All write-side I/O goes through a :class:`~repro.storage.vfs.Vfs`; the
kill-point harness swaps in a crashing VFS mid-run via the public
``store.vfs`` attribute to prove the above at every byte boundary.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional, Sequence, Tuple, Union

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.crypto.hashing import sha256d
from repro.errors import ChainError
from repro.query.builder import BuiltSystem, build_system
from repro.query.config import SystemConfig
from repro.storage.record_log import (
    LogRecord,
    block_record,
    replay_records,
    rollback_record,
    walk_records,
)
from repro.storage.vfs import Vfs

PathLike = Union[str, pathlib.Path]

DURABLE_FORMAT = 2

_MANIFEST = "manifest.json"
_MANIFEST_TMP = "manifest.json.tmp"
_LOG = "chain.log"


class StoreReport:
    """Outcome of :func:`verify_store` — one offline fsck pass."""

    __slots__ = (
        "ok",
        "directory",
        "blocks",
        "tip_id",
        "log_bytes",
        "committed_bytes",
        "records",
        "torn_bytes",
        "first_bad_offset",
        "detail",
    )

    def __init__(
        self,
        ok: bool,
        directory: str,
        blocks: int = 0,
        tip_id: str = "",
        log_bytes: int = 0,
        committed_bytes: int = 0,
        records: int = 0,
        torn_bytes: int = 0,
        first_bad_offset: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.ok = ok
        self.directory = directory
        self.blocks = blocks
        self.tip_id = tip_id
        self.log_bytes = log_bytes
        self.committed_bytes = committed_bytes
        self.records = records
        self.torn_bytes = torn_bytes
        self.first_bad_offset = first_bad_offset
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "directory": self.directory,
            "blocks": self.blocks,
            "tip_id": self.tip_id,
            "log_bytes": self.log_bytes,
            "committed_bytes": self.committed_bytes,
            "records": self.records,
            "torn_bytes": self.torn_bytes,
            "first_bad_offset": self.first_bad_offset,
            "detail": self.detail,
        }


class DurableStore:
    """A :class:`BuiltSystem` bound to an append-only on-disk log.

    Mutations go through :meth:`append_block` / :meth:`rollback_to` /
    :meth:`reorg`, which update the in-memory system *and* durably log
    the delta before returning.  ``store.system`` is the live node state
    (safe to hand to :class:`~repro.node.full_node.FullNode`).
    """

    __slots__ = ("directory", "vfs", "system", "committed_bytes")

    def __init__(
        self,
        directory: pathlib.Path,
        vfs: Vfs,
        system: BuiltSystem,
        committed_bytes: int,
    ) -> None:
        self.directory = directory
        #: Swappable I/O layer — the recovery harness replaces this with
        #: a :class:`~repro.storage.vfs.CrashVfs` mid-run.
        self.vfs = vfs
        self.system = system
        self.committed_bytes = committed_bytes

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: PathLike,
        system: BuiltSystem,
        vfs: Optional[Vfs] = None,
    ) -> "DurableStore":
        """Write a fresh durable store for an already-built system."""
        vfs = vfs or Vfs()
        path = pathlib.Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        if (path / _MANIFEST).exists() or (path / _LOG).exists():
            raise ChainError(f"refusing to overwrite existing store in {path}")
        with system.lock.read():
            frames = []
            for height, block in enumerate(system.chain):
                frames.append(
                    block_record(
                        block.body_bytes(),
                        system.chain.header_at(height).serialize(),
                    )
                )
        log_bytes = sum(len(frame) for frame in frames)
        with vfs.open(path / _LOG, "wb") as log:
            for frame in frames:
                log.write(frame)
            vfs.fsync(log)
        store = cls(path, vfs, system, log_bytes)
        store._write_manifest()
        return store

    @classmethod
    def open(
        cls, directory: PathLike, vfs: Optional[Vfs] = None
    ) -> "DurableStore":
        """Recover a durable store: truncate any torn tail, replay the
        log, rebuild indexes, and cross-check against the stored headers
        and the manifest checkpoint."""
        vfs = vfs or Vfs()
        path = pathlib.Path(directory)
        manifest = _read_manifest(path)
        config = _manifest_config(manifest)
        committed = _manifest_int(manifest, "log_bytes")
        expected_blocks = _manifest_int(manifest, "blocks")
        expected_tip = manifest.get("tip_id")
        if expected_blocks <= 0 or committed <= 0:
            raise ChainError(
                f"manifest in {path} promises an empty chain — corrupt"
            )

        log_path = path / _LOG
        try:
            raw = log_path.read_bytes()
        except FileNotFoundError as exc:
            raise ChainError(f"missing chain log in {path}") from exc
        if len(raw) < committed:
            raise ChainError(
                f"chain log in {path} is {len(raw)} bytes but the manifest "
                f"committed {committed} — log was externally truncated"
            )

        records, bad_offset, reason = walk_records(raw)
        if bad_offset is not None and bad_offset < committed:
            raise ChainError(
                f"corrupt chain log in {path} at offset {bad_offset} "
                f"({reason}) — inside the committed prefix"
            )

        # The committed length must land exactly on a record boundary.
        boundary = 0
        checkpoint_records: List[LogRecord] = []
        for record in records:
            if record.end_offset <= committed:
                checkpoint_records.append(record)
                boundary = record.end_offset
        if boundary != committed:
            raise ChainError(
                f"manifest in {path} commits {committed} log bytes, which "
                "is not a record boundary — store is corrupt"
            )

        # Cross-check the checkpoint: the committed prefix must replay to
        # exactly the manifest's block count and tip id.
        checkpoint = replay_records(checkpoint_records)
        checkpoint_tip = sha256d(checkpoint[-1][1]).hex() if checkpoint else ""
        if len(checkpoint) != expected_blocks or checkpoint_tip != expected_tip:
            raise ChainError(
                f"manifest checkpoint in {path} does not match the log: "
                f"replayed {len(checkpoint)} blocks tip {checkpoint_tip}, "
                f"manifest says {expected_blocks} / {expected_tip}"
            )

        # Adopt whole fsynced records beyond the checkpoint; their frames
        # verified, so their mutations were durably logged before the
        # crash.  Then drop the torn tail, if any.
        entries = replay_records(records)
        valid_bytes = records[-1].end_offset if records else 0
        if valid_bytes < len(raw):
            with vfs.open(log_path, "r+b") as log:
                vfs.truncate(log, valid_bytes)
                vfs.fsync(log)

        transactions = [Block.body_from_bytes(body) for body, _ in entries]
        system = build_system(transactions, config)
        for height, (_, stored_header) in enumerate(entries):
            if stored_header != system.chain.header_at(height).serialize():
                raise ChainError(
                    f"stored header at height {height} does not match the "
                    "header rebuilt from the bodies — store is corrupt"
                )

        store = cls(path, vfs, system, valid_bytes)
        # Re-checkpoint so the manifest reflects adopted records and the
        # truncation; idempotent when nothing changed.
        if valid_bytes != committed or len(raw) != valid_bytes:
            store._write_manifest()
        return store

    # -- mutations ---------------------------------------------------------

    def append_block(self, transactions: Sequence[Transaction]) -> None:
        """Append one block and durably commit it (O(block), not O(chain))."""
        self.system.append_block(transactions)
        with self.system.lock.read():
            tip = self.system.tip_height
            frame = block_record(
                self.system.chain.block_at(tip).body_bytes(),
                self.system.chain.header_at(tip).serialize(),
            )
        self._commit(frame)

    def rollback_to(self, height: int) -> int:
        """Pop every block above ``height``; returns how many were removed.

        The log only grows: the rollback is one appended record, so the
        discarded blocks' bytes stay behind it (and are skipped on
        replay) — crash-safety without rewriting the file.
        """
        removed = self.system.rollback_to(height)
        if removed:
            self._commit(rollback_record(height))
        return removed

    def reorg(
        self,
        fork_height: int,
        new_bodies: Sequence[Sequence[Transaction]],
    ) -> Tuple[int, int]:
        """Switch to a fork: rollback then append, each its own commit."""
        replaced = self.rollback_to(fork_height)
        for transactions in new_bodies:
            self.append_block(transactions)
        return replaced, len(new_bodies)

    # -- internals ---------------------------------------------------------

    def _commit(self, frame: bytes) -> None:
        with self.vfs.open(self.directory / _LOG, "ab") as log:
            log.write(frame)
            self.vfs.fsync(log)
        self.committed_bytes += len(frame)
        self._write_manifest()

    def _write_manifest(self) -> None:
        with self.system.lock.read():
            manifest = {
                "format": DURABLE_FORMAT,
                "config": self.system.config.to_dict(),
                "blocks": len(self.system.chain),
                "tip_id": self.system.chain.header_at(self.system.tip_height)
                .block_id()
                .hex(),
                "log_bytes": self.committed_bytes,
            }
        payload = json.dumps(manifest, indent=2).encode("ascii")
        tmp = self.directory / _MANIFEST_TMP
        with self.vfs.open(tmp, "wb") as handle:
            handle.write(payload)
            self.vfs.fsync(handle)
        self.vfs.replace(tmp, self.directory / _MANIFEST)
        self.vfs.fsync_dir(self.directory)


def verify_store(directory: PathLike, deep: bool = False) -> StoreReport:
    """Offline fsck of a durable store directory.

    Walks the log, validates every frame and the manifest checkpoint,
    and classifies damage: a torn tail beyond the committed prefix is
    *recoverable* (``ok`` stays true, ``torn_bytes`` reports its size);
    anything inside the committed prefix, or any semantic inconsistency,
    is corruption.  With ``deep=True`` the indexes are rebuilt and every
    stored header byte-checked, exactly as :meth:`DurableStore.open`
    would.
    """
    path = pathlib.Path(directory)
    where = str(path)
    try:
        manifest = _read_manifest(path)
        config = _manifest_config(manifest)
        committed = _manifest_int(manifest, "log_bytes")
        expected_blocks = _manifest_int(manifest, "blocks")
    except ChainError as exc:
        return StoreReport(False, where, detail=str(exc))

    try:
        raw = (path / _LOG).read_bytes()
    except FileNotFoundError:
        return StoreReport(False, where, detail=f"missing chain log in {path}")

    records, bad_offset, reason = walk_records(raw)
    report = StoreReport(
        True,
        where,
        log_bytes=len(raw),
        committed_bytes=committed,
        records=len(records),
    )
    if bad_offset is not None:
        if bad_offset < committed:
            report.ok = False
            report.first_bad_offset = bad_offset
            report.detail = f"{reason} inside the committed prefix"
            return report
        report.torn_bytes = len(raw) - (
            records[-1].end_offset if records else 0
        )
        report.detail = f"torn tail at offset {bad_offset} ({reason})"
    if len(raw) < committed:
        report.ok = False
        report.detail = (
            f"log is {len(raw)} bytes, manifest committed {committed}"
        )
        return report
    if not any(record.end_offset == committed for record in records):
        report.ok = False
        report.first_bad_offset = committed
        report.detail = "committed length is not a record boundary"
        return report

    try:
        checkpoint = replay_records(
            [r for r in records if r.end_offset <= committed]
        )
        entries = replay_records(records)
    except ChainError as exc:
        report.ok = False
        report.detail = str(exc)
        return report
    checkpoint_tip = sha256d(checkpoint[-1][1]).hex() if checkpoint else ""
    if (
        len(checkpoint) != expected_blocks
        or checkpoint_tip != manifest.get("tip_id")
    ):
        report.ok = False
        report.detail = "manifest checkpoint does not match the log replay"
        return report
    report.blocks = len(entries)
    report.tip_id = sha256d(entries[-1][1]).hex() if entries else ""

    if deep:
        try:
            transactions = [Block.body_from_bytes(body) for body, _ in entries]
            system = build_system(transactions, config)
            for height, (_, stored_header) in enumerate(entries):
                rebuilt = system.chain.header_at(height).serialize()
                if stored_header != rebuilt:
                    report.ok = False
                    report.detail = (
                        f"stored header at height {height} does not match "
                        "the header rebuilt from the bodies"
                    )
                    return report
        except ChainError as exc:
            report.ok = False
            report.detail = f"deep check failed: {exc}"
            return report
    return report


def _read_manifest(path: pathlib.Path) -> dict:
    try:
        manifest = json.loads((path / _MANIFEST).read_text())
    except FileNotFoundError as exc:
        raise ChainError(f"no chain manifest in {path}") from exc
    except json.JSONDecodeError as exc:
        raise ChainError(f"corrupt chain manifest in {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != DURABLE_FORMAT:
        raise ChainError(
            f"not a durable (format {DURABLE_FORMAT}) chain store: {path}"
        )
    return manifest


def _manifest_config(manifest: dict) -> SystemConfig:
    try:
        return SystemConfig.from_dict(manifest["config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ChainError(f"malformed chain manifest: {exc}") from exc


def _manifest_int(manifest: dict, key: str) -> int:
    try:
        return int(manifest[key])
    except (KeyError, TypeError, ValueError) as exc:
        raise ChainError(
            f"malformed chain manifest field {key!r}: {exc}"
        ) from exc
