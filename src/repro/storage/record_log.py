"""Append-only record log framing for the durable chain store.

Every mutation of the full node's chain is one framed record appended to
``chain.log``:

* ``BLOCK``    — a block appended at the next height: ``var_bytes(body)
  + var_bytes(header)``.  The header rides along so recovery can
  cross-check the bytes it rebuilds from the bodies, exactly as the
  snapshot store's ``load_system`` does.
* ``ROLLBACK`` — a fork switch popped every block above the carried
  height (little-endian ``u32``).

Frame layout (all integers little-endian)::

    type (1 byte) | payload length (u32) | payload | crc32 (u32)

The CRC covers type + length + payload, so a frame whose tail was torn
by a crash — truncated payload, half-written CRC — never parses as
valid.  :func:`walk_records` stops at the first bad frame and reports
its offset; the *caller* decides whether that offset is a torn tail to
truncate (at or beyond the manifest's committed length) or corruption to
reject (below it).  Payload-level damage inside a CRC-valid frame can
never be produced by a torn write, so :func:`replay_records` treats it
as corruption unconditionally.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

from repro.crypto.encoding import ByteReader, write_var_bytes
from repro.errors import ChainError, EncodingError

RECORD_BLOCK = 1
RECORD_ROLLBACK = 2

_FRAME_HEAD = struct.Struct("<BI")  # record type, payload length
_FRAME_CRC = struct.Struct("<I")
FRAME_OVERHEAD = _FRAME_HEAD.size + _FRAME_CRC.size

#: Hard ceiling on one record's payload (a block body plus header); a
#: length field beyond this is treated as frame damage, not an
#: instruction to allocate gigabytes.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024


class LogRecord:
    """One parsed frame plus its byte extent inside the log."""

    __slots__ = ("rtype", "payload", "offset", "end_offset")

    def __init__(
        self, rtype: int, payload: bytes, offset: int, end_offset: int
    ) -> None:
        self.rtype = rtype
        self.payload = payload
        self.offset = offset
        self.end_offset = end_offset

    def __repr__(self) -> str:
        return (
            f"LogRecord(type={self.rtype}, bytes=[{self.offset},"
            f"{self.end_offset}))"
        )


def encode_record(rtype: int, payload: bytes) -> bytes:
    """Frame one record: type + length + payload + CRC32."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ChainError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    head = _FRAME_HEAD.pack(rtype, len(payload))
    crc = zlib.crc32(head + payload)
    return head + payload + _FRAME_CRC.pack(crc)


def block_record(body_bytes: bytes, header_bytes: bytes) -> bytes:
    """Frame a ``BLOCK`` record for one appended block."""
    return encode_record(
        RECORD_BLOCK, write_var_bytes(body_bytes) + write_var_bytes(header_bytes)
    )


def rollback_record(height: int) -> bytes:
    """Frame a ``ROLLBACK`` record popping every block above ``height``."""
    if not 0 <= height <= 0xFFFF_FFFF:
        raise ChainError(f"rollback height {height} does not fit in u32")
    return encode_record(RECORD_ROLLBACK, struct.pack("<I", height))


def walk_records(
    raw: bytes,
) -> Tuple[List[LogRecord], Optional[int], Optional[str]]:
    """Parse frames until the bytes run out or a frame is damaged.

    Returns ``(records, bad_offset, reason)``; ``bad_offset`` is ``None``
    on a fully clean walk, otherwise the offset of the first frame that
    failed its length or CRC check (every record before it is intact).
    """
    records: List[LogRecord] = []
    offset = 0
    total = len(raw)
    while offset < total:
        if offset + _FRAME_HEAD.size > total:
            return records, offset, "truncated frame header"
        rtype, length = _FRAME_HEAD.unpack_from(raw, offset)
        if length > MAX_PAYLOAD_BYTES:
            return records, offset, f"implausible payload length {length}"
        end = offset + _FRAME_HEAD.size + length + _FRAME_CRC.size
        if end > total:
            return records, offset, "truncated frame body"
        payload = raw[offset + _FRAME_HEAD.size : end - _FRAME_CRC.size]
        (stored_crc,) = _FRAME_CRC.unpack_from(raw, end - _FRAME_CRC.size)
        computed = zlib.crc32(raw[offset : end - _FRAME_CRC.size])
        if stored_crc != computed:
            return records, offset, "CRC mismatch"
        records.append(LogRecord(rtype, payload, offset, end))
        offset = end
    return records, None, None


def replay_records(
    records: List[LogRecord],
) -> List[Tuple[bytes, bytes]]:
    """Fold the record sequence into the surviving chain.

    Returns ``(body_bytes, header_bytes)`` per height, genesis first.
    Raises :class:`ChainError` on semantic damage — an unknown record
    type, a rollback past the current tip, an unparseable block payload.
    These are real corruption (the frame's CRC already passed), never a
    torn tail, so no caller should downgrade them to truncation.
    """
    entries: List[Tuple[bytes, bytes]] = []
    for record in records:
        if record.rtype == RECORD_BLOCK:
            try:
                reader = ByteReader(record.payload)
                body = reader.var_bytes()
                header = reader.var_bytes()
                reader.finish()
            except EncodingError as exc:
                raise ChainError(
                    f"corrupt block record at offset {record.offset}: {exc}"
                ) from exc
            entries.append((body, header))
        elif record.rtype == RECORD_ROLLBACK:
            if len(record.payload) != 4:
                raise ChainError(
                    f"corrupt rollback record at offset {record.offset}"
                )
            (height,) = struct.unpack("<I", record.payload)
            if height >= len(entries):
                raise ChainError(
                    f"rollback record at offset {record.offset} targets "
                    f"height {height} but only {len(entries)} blocks exist"
                )
            del entries[height + 1 :]
        else:
            raise ChainError(
                f"unknown record type {record.rtype} at offset "
                f"{record.offset}"
            )
    return entries
