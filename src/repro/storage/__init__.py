"""On-disk persistence for chains and light-node header files.

Two store formats coexist:

* format 1 (:mod:`repro.storage.chain_store`) — snapshot files rewritten
  whole on every save; kept for compatibility and simple exports;
* format 2 (:mod:`repro.storage.durable`) — an append-only, CRC-framed
  record log with crash-atomic manifest checkpoints; ``append_block``
  and reorgs persist O(delta) and recovery survives a kill at any byte.

:func:`load_system` transparently opens either format.
"""

from repro.storage.chain_store import (
    load_headers,
    load_system,
    save_headers,
    save_system,
)
from repro.storage.durable import DurableStore, StoreReport, verify_store
from repro.storage.vfs import CountingVfs, CrashPoint, CrashVfs, Vfs

__all__ = [
    "save_system",
    "load_system",
    "save_headers",
    "load_headers",
    "DurableStore",
    "StoreReport",
    "verify_store",
    "Vfs",
    "CountingVfs",
    "CrashVfs",
    "CrashPoint",
]
