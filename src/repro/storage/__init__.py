"""On-disk persistence for chains and light-node header files."""

from repro.storage.chain_store import (
    load_headers,
    load_system,
    save_headers,
    save_system,
)

__all__ = ["save_system", "load_system", "save_headers", "load_headers"]
