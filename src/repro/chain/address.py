"""Bitcoin-style addresses for the synthetic chain.

Real P2PKH addresses are ``Base58Check(version=0x00, hash160(pubkey))``.
The reproduction needs addresses that *look and sort* like mainnet ones
(Table III lists real Base58 addresses) without carrying key material, so
:func:`synthetic_address` derives the 20-byte payload from a seed via
``hash160``.  Addresses are plain ``str`` throughout the library; the two
committed structures consume them through :func:`address_item` (BF and SMT
insertions hash the same canonical byte form on both sides of the wire).
"""

from __future__ import annotations

from repro.crypto.encoding import base58check_decode, base58check_encode
from repro.crypto.hashing import hash160
from repro.errors import EncodingError

#: Mainnet P2PKH version byte — makes synthetic addresses start with '1'.
ADDRESS_VERSION = 0x00


def synthetic_address(seed: "int | bytes") -> str:
    """Deterministic address from a seed (int or bytes).

    Distinct seeds give independent ``hash160`` payloads, so the address
    population has the same uniform distribution over the Base58 space as
    mainnet — which is what the SMT's lexicographic interval structure and
    the BF position derivation both assume.
    """
    if isinstance(seed, int):
        if seed < 0:
            raise ValueError(f"address seed must be non-negative, got {seed}")
        seed = seed.to_bytes(8, "little")
    return base58check_encode(ADDRESS_VERSION, hash160(seed))


def is_valid_address(address: str) -> bool:
    """Structural check: Base58Check, right version, 20-byte payload."""
    try:
        version, payload = base58check_decode(address)
    except EncodingError:
        return False
    return version == ADDRESS_VERSION and len(payload) == 20


def address_item(address: str) -> bytes:
    """Canonical byte form inserted into Bloom filters.

    The light node recomputes checked bit positions from the same bytes,
    so this function is part of the protocol, not an implementation detail.
    """
    return address.encode("utf-8")
