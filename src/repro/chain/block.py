"""Blocks and the header variants of the four evaluated systems.

A header always starts with Bitcoin's 80-byte core (version, prev-hash,
Merkle root, timestamp, bits, nonce) and then carries one of four
*extensions* — the storage design each prototype in §VII-B commits to:

====================  =====================================  ==============
extension             contents                               system
====================  =====================================  ==============
:class:`NoExtension`  nothing (plain Bitcoin)                original SPV
:class:`BloomExtension`        the full per-block BF         strawman §IV-A
:class:`BloomHashExtension`    32-byte hash of the BF        strawman variant (§VII-B baseline), LVQ-no-BMT
:class:`LvqExtension`          BMT root + SMT root (64 B)    LVQ, LVQ-no-SMT
====================  =====================================  ==============

The light node's storage burden per block is exactly
``len(header.serialize())`` — the quantity behind the paper's Challenge 1.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence

from repro.bloom.filter import BloomFilter
from repro.chain.transaction import Transaction
from repro.crypto.encoding import ByteReader, write_varint
from repro.crypto.hashing import HASH_SIZE, sha256d
from repro.errors import EncodingError
from repro.merkle.tree import MerkleTree

#: Size of the Bitcoin core header fields, byte-exact.
BASE_HEADER_SIZE = 80

_EXT_NONE = 0
_EXT_BLOOM = 1
_EXT_BLOOM_HASH = 2
_EXT_LVQ = 3
_EXT_BLOOM_HASH_SMT = 4
_EXT_BMT_ONLY = 5


class HeaderExtension:
    """Base class for the system-specific header tail."""

    kind: int = _EXT_NONE

    def serialize(self) -> bytes:
        raise NotImplementedError

    def size_bytes(self) -> int:
        return len(self.serialize())


class NoExtension(HeaderExtension):
    """Plain Bitcoin header — no verifiable-query support."""

    kind = _EXT_NONE

    def serialize(self) -> bytes:
        return b""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NoExtension)


class BloomExtension(HeaderExtension):
    """Strawman: the whole per-block Bloom filter lives in the header."""

    kind = _EXT_BLOOM

    def __init__(self, bloom: BloomFilter) -> None:
        self.bloom = bloom

    def serialize(self) -> bytes:
        return self.bloom.to_bytes()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BloomExtension) and self.bloom == other.bloom


class BloomHashExtension(HeaderExtension):
    """Only ``H(BF)`` is stored; the filter itself ships with query results."""

    kind = _EXT_BLOOM_HASH

    def __init__(self, bloom_hash: bytes) -> None:
        if len(bloom_hash) != HASH_SIZE:
            raise ValueError(f"bloom hash must be {HASH_SIZE} bytes")
        self.bloom_hash = bloom_hash

    def serialize(self) -> bytes:
        return self.bloom_hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomHashExtension)
            and self.bloom_hash == other.bloom_hash
        )


class LvqExtension(HeaderExtension):
    """LVQ: 32-byte BMT root plus 32-byte SMT root (Fig 7)."""

    kind = _EXT_LVQ

    def __init__(self, bmt_root: bytes, smt_root: bytes) -> None:
        if len(bmt_root) != HASH_SIZE or len(smt_root) != HASH_SIZE:
            raise ValueError(f"roots must be {HASH_SIZE} bytes")
        self.bmt_root = bmt_root
        self.smt_root = smt_root

    def serialize(self) -> bytes:
        return self.bmt_root + self.smt_root

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LvqExtension)
            and self.bmt_root == other.bmt_root
            and self.smt_root == other.smt_root
        )


class BloomHashSmtExtension(HeaderExtension):
    """LVQ-without-BMT ablation: ``H(BF)`` plus the SMT root (64 bytes)."""

    kind = _EXT_BLOOM_HASH_SMT

    def __init__(self, bloom_hash: bytes, smt_root: bytes) -> None:
        if len(bloom_hash) != HASH_SIZE or len(smt_root) != HASH_SIZE:
            raise ValueError(f"commitments must be {HASH_SIZE} bytes")
        self.bloom_hash = bloom_hash
        self.smt_root = smt_root

    def serialize(self) -> bytes:
        return self.bloom_hash + self.smt_root

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomHashSmtExtension)
            and self.bloom_hash == other.bloom_hash
            and self.smt_root == other.smt_root
        )


class BmtExtension(HeaderExtension):
    """LVQ-without-SMT ablation: only the BMT root (32 bytes)."""

    kind = _EXT_BMT_ONLY

    def __init__(self, bmt_root: bytes) -> None:
        if len(bmt_root) != HASH_SIZE:
            raise ValueError(f"bmt root must be {HASH_SIZE} bytes")
        self.bmt_root = bmt_root

    def serialize(self) -> bytes:
        return self.bmt_root

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BmtExtension) and self.bmt_root == other.bmt_root


def deserialize_extension(
    reader: ByteReader, extension_kind: int, bloom_bytes: int = 0
) -> HeaderExtension:
    """Decode just the extension tail — shared by full-header decoding and
    the delta-header wire format, whose headers omit the prev-hash but
    still carry the extension verbatim."""
    if extension_kind == _EXT_NONE:
        return NoExtension()
    if extension_kind == _EXT_BLOOM:
        if bloom_bytes <= 0:
            raise EncodingError("bloom extension needs a filter size")
        return BloomExtension(BloomFilter.from_bytes(reader.bytes(bloom_bytes), 1))
    if extension_kind == _EXT_BLOOM_HASH:
        return BloomHashExtension(reader.bytes(HASH_SIZE))
    if extension_kind == _EXT_LVQ:
        return LvqExtension(reader.bytes(HASH_SIZE), reader.bytes(HASH_SIZE))
    if extension_kind == _EXT_BLOOM_HASH_SMT:
        return BloomHashSmtExtension(
            reader.bytes(HASH_SIZE), reader.bytes(HASH_SIZE)
        )
    if extension_kind == _EXT_BMT_ONLY:
        return BmtExtension(reader.bytes(HASH_SIZE))
    raise EncodingError(f"unknown header extension kind {extension_kind}")


class BlockHeader:
    """Bitcoin's 80-byte header core plus a system-specific extension."""

    __slots__ = (
        "version",
        "prev_hash",
        "merkle_root",
        "timestamp",
        "bits",
        "nonce",
        "extension",
        "_block_id",
    )

    def __init__(
        self,
        prev_hash: bytes,
        merkle_root: bytes,
        timestamp: int,
        extension: Optional[HeaderExtension] = None,
        version: int = 2,
        bits: int = 0x1D00FFFF,
        nonce: int = 0,
    ) -> None:
        if len(prev_hash) != HASH_SIZE:
            raise ValueError(f"prev_hash must be {HASH_SIZE} bytes")
        if len(merkle_root) != HASH_SIZE:
            raise ValueError(f"merkle_root must be {HASH_SIZE} bytes")
        self.version = version
        self.prev_hash = prev_hash
        self.merkle_root = merkle_root
        self.timestamp = timestamp
        self.bits = bits
        self.nonce = nonce
        self.extension = extension if extension is not None else NoExtension()
        self._block_id: "bytes | None" = None

    def block_id(self) -> bytes:
        """Double-SHA of the full header (extension included): the chain
        link.  Including the extension means a light node that validated
        header linkage has implicitly validated every commitment root."""
        if self._block_id is None:
            self._block_id = sha256d(self.serialize())
        return self._block_id

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        core = struct.pack(
            "<I32s32sIII",
            self.version,
            self.prev_hash,
            self.merkle_root,
            self.timestamp,
            self.bits,
            self.nonce,
        )
        assert len(core) == BASE_HEADER_SIZE
        return core + self.extension.serialize()

    @classmethod
    def deserialize(
        cls, reader: ByteReader, extension_kind: int, bloom_bytes: int = 0
    ) -> "BlockHeader":
        """Decode a header whose extension layout the caller knows (it is
        a chain parameter, like the BF geometry)."""
        core = reader.bytes(BASE_HEADER_SIZE)
        version, prev_hash, merkle_root, timestamp, bits, nonce = struct.unpack(
            "<I32s32sIII", core
        )
        extension = deserialize_extension(reader, extension_kind, bloom_bytes)
        return cls(
            prev_hash, merkle_root, timestamp, extension, version, bits, nonce
        )

    def size_bytes(self) -> int:
        return BASE_HEADER_SIZE + self.extension.size_bytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlockHeader):
            return NotImplemented
        return self.serialize() == other.serialize()

    def __repr__(self) -> str:
        return (
            f"BlockHeader(id={self.block_id().hex()[:12]}, "
            f"ext={type(self.extension).__name__})"
        )


class Block:
    """A header plus its transaction list."""

    __slots__ = ("header", "transactions", "height", "_merkle_tree")

    def __init__(
        self,
        header: BlockHeader,
        transactions: Sequence[Transaction],
        height: int,
        merkle_tree: Optional[MerkleTree] = None,
    ) -> None:
        if height < 0:
            raise ValueError(f"negative block height {height}")
        self.header = header
        self.transactions = list(transactions)
        self.height = height
        #: Lazily built and cached; block assembly passes in the tree it
        #: just built so chain validation never re-hashes every txid.
        self._merkle_tree = merkle_tree

    # -- derived structures -------------------------------------------------

    def merkle_tree(self) -> MerkleTree:
        """The block's transaction Merkle tree, built once and cached.

        The cache assumes ``transactions`` is not mutated after the
        first call — blocks on a chain are immutable by construction.
        """
        if self._merkle_tree is None:
            self._merkle_tree = build_tx_merkle_tree(self.transactions)
        return self._merkle_tree

    def address_counts(self) -> "dict[str, int]":
        """Per-address count of distinct transactions touching it — the
        exact leaf content of this block's SMT."""
        counts: "dict[str, int]" = {}
        for transaction in self.transactions:
            for address in transaction.addresses():
                counts[address] = counts.get(address, 0) + 1
        return counts

    def unique_addresses(self) -> List[str]:
        return sorted(self.address_counts())

    def transactions_involving(self, address: str) -> List[Transaction]:
        return [tx for tx in self.transactions if tx.involves(address)]

    # -- serialization -----------------------------------------------------

    def body_bytes(self) -> bytes:
        """The serialized body — what an "integral block" (IB) fragment
        costs on the wire."""
        parts = [write_varint(len(self.transactions))]
        parts.extend(tx.serialize() for tx in self.transactions)
        return b"".join(parts)

    @staticmethod
    def body_from_bytes(payload: bytes) -> List[Transaction]:
        reader = ByteReader(payload)
        count = reader.varint()
        if count == 0 or count > 1_000_000:
            raise EncodingError(f"implausible transaction count {count}")
        transactions = [Transaction.deserialize(reader) for _ in range(count)]
        reader.finish()
        return transactions

    def size_bytes(self) -> int:
        return self.header.size_bytes() + len(self.body_bytes())

    def __repr__(self) -> str:
        return f"Block(height={self.height}, txs={len(self.transactions)})"


def build_tx_merkle_tree(transactions: Sequence[Transaction]) -> MerkleTree:
    """The block's transaction Merkle tree (leaves are txids)."""
    if not transactions:
        raise ValueError("a block must contain at least a coinbase transaction")
    return MerkleTree([tx.txid() for tx in transactions])
