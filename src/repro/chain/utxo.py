"""UTXO tracking and Equation 1 balance computation.

Two views of "balance" exist in the library:

* :func:`balance_from_history` — the light node's view: Equation 1 applied
  to a (verified) transaction history, ``Σ outputs − Σ inputs``;
* :class:`UtxoSet` — the full node's consensus view, which also validates
  that every input spends a real unspent output with matching address and
  value (catching a dishonest workload or a corrupted chain).

On a valid chain the two agree for every address, and the integration
tests assert exactly that.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.chain.transaction import Transaction
from repro.errors import ChainError


class UtxoSet:
    """The set of unspent transaction outputs, keyed by ``(txid, vout)``."""

    def __init__(self) -> None:
        self._outputs: Dict[Tuple[bytes, int], Tuple[str, int]] = {}

    def __len__(self) -> int:
        return len(self._outputs)

    def __contains__(self, outpoint: Tuple[bytes, int]) -> bool:
        return outpoint in self._outputs

    def value_of(self, outpoint: Tuple[bytes, int]) -> int:
        return self._outputs[outpoint][1]

    def apply_transaction(self, transaction: Transaction) -> None:
        """Spend the inputs, create the outputs; raise on inconsistency."""
        if not transaction.is_coinbase:
            for tx_input in transaction.inputs:
                outpoint = (tx_input.prev_txid, tx_input.prev_index)
                spent = self._outputs.get(outpoint)
                if spent is None:
                    raise ChainError(
                        f"input spends unknown outpoint "
                        f"{tx_input.prev_txid.hex()[:12]}:{tx_input.prev_index}"
                    )
                address, value = spent
                if address != tx_input.address or value != tx_input.value:
                    raise ChainError(
                        "self-describing input disagrees with the spent "
                        f"output: claims ({tx_input.address}, "
                        f"{tx_input.value}), chain has ({address}, {value})"
                    )
                del self._outputs[outpoint]
        txid = transaction.txid()
        for index, tx_output in enumerate(transaction.outputs):
            self._outputs[(txid, index)] = (tx_output.address, tx_output.value)

    def apply_block(self, transactions: Iterable[Transaction]) -> None:
        for transaction in transactions:
            self.apply_transaction(transaction)

    def balance(self, address: str) -> int:
        """Sum of unspent outputs owned by ``address``."""
        return sum(
            value
            for owner, value in self._outputs.values()
            if owner == address
        )

    def outpoints_of(self, address: str) -> Dict[Tuple[bytes, int], int]:
        """Spendable outpoints of ``address`` with their values."""
        return {
            outpoint: value
            for outpoint, (owner, value) in self._outputs.items()
            if owner == address
        }


def balance_from_history(
    address: str, transactions: Iterable[Transaction]
) -> int:
    """Equation 1: ``Balance(addr) = Σ v_j (outputs) − Σ w_i (inputs)``.

    ``transactions`` is the address's verified history; transactions not
    involving the address contribute nothing, so passing a superset is
    harmless (but a *verified-complete* history is required for the result
    to be trustworthy — that is the entire point of the paper).
    """
    received = 0
    sent = 0
    for transaction in transactions:
        received += transaction.received_by(address)
        sent += transaction.sent_by(address)
    return received - sent
