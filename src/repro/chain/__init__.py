"""Bitcoin-like substrate: addresses, transactions, blocks, segments, UTXO."""

from repro.chain.address import (
    ADDRESS_VERSION,
    address_item,
    is_valid_address,
    synthetic_address,
)
from repro.chain.transaction import TxInput, TxOutput, Transaction
from repro.chain.block import (
    BASE_HEADER_SIZE,
    Block,
    BlockHeader,
    HeaderExtension,
    NoExtension,
    BloomExtension,
    BloomHashExtension,
    LvqExtension,
)
from repro.chain.segments import (
    merge_span,
    merge_set,
    segment_spans,
    covering_spans,
    is_anchor_for,
)
from repro.chain.blockchain import Blockchain
from repro.chain.utxo import UtxoSet, balance_from_history

__all__ = [
    "ADDRESS_VERSION",
    "address_item",
    "is_valid_address",
    "synthetic_address",
    "TxInput",
    "TxOutput",
    "Transaction",
    "BASE_HEADER_SIZE",
    "Block",
    "BlockHeader",
    "HeaderExtension",
    "NoExtension",
    "BloomExtension",
    "BloomHashExtension",
    "LvqExtension",
    "merge_span",
    "merge_set",
    "segment_spans",
    "covering_spans",
    "is_anchor_for",
    "Blockchain",
    "UtxoSet",
    "balance_from_history",
]
