"""Transactions for the synthetic chain (UTXO style, self-describing inputs).

Bitcoin inputs reference a previous output by ``(txid, vout)`` and reveal
the spender only through the scriptSig.  The paper treats "the address
appears in the input" as directly observable, so our inputs carry the
spending address and value explicitly — a self-describing transaction lets
a light node compute Equation 1 balances from verified history alone,
without fetching every referenced parent transaction.  The UTXO module
still validates that inputs match the outputs they spend, so the extra
fields cannot lie on an honestly-built chain.

Serialization is length-exact: all reported proof sizes flow from
``len(tx.serialize())``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.encoding import (
    ByteReader,
    write_var_bytes,
    write_varint,
)
from repro.crypto.hashing import HASH_SIZE, sha256d
from repro.errors import EncodingError

#: Marker previous-txid used by coinbase inputs.
COINBASE_PREV_TXID = b"\x00" * HASH_SIZE
COINBASE_PREV_INDEX = 0xFFFF_FFFF


class TxOutput:
    """Pays ``value`` satoshis to ``address``."""

    __slots__ = ("address", "value")

    def __init__(self, address: str, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative output value {value}")
        self.address = address
        self.value = value

    def serialize(self) -> bytes:
        return write_varint(self.value) + write_var_bytes(
            self.address.encode("utf-8")
        )

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "TxOutput":
        value = reader.varint()
        address = _decode_address(reader.var_bytes())
        return cls(address, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TxOutput):
            return NotImplemented
        return self.address == other.address and self.value == other.value

    def __repr__(self) -> str:
        return f"TxOutput({self.address}, {self.value})"


class TxInput:
    """Spends output ``prev_index`` of ``prev_txid``.

    ``address``/``value`` duplicate the spent output's fields (see module
    docstring).  Coinbase inputs use the all-zero txid, index ``0xffffffff``
    and an empty address.
    """

    __slots__ = ("prev_txid", "prev_index", "address", "value")

    def __init__(
        self, prev_txid: bytes, prev_index: int, address: str, value: int
    ) -> None:
        if len(prev_txid) != HASH_SIZE:
            raise ValueError(f"prev_txid must be {HASH_SIZE} bytes")
        if prev_index < 0:
            raise ValueError(f"negative prev_index {prev_index}")
        if value < 0:
            raise ValueError(f"negative input value {value}")
        self.prev_txid = prev_txid
        self.prev_index = prev_index
        self.address = address
        self.value = value

    @classmethod
    def coinbase(cls, height: int) -> "TxInput":
        """The synthetic coinbase input; ``value`` records the height so
        two coinbase transactions are never byte-identical."""
        return cls(COINBASE_PREV_TXID, COINBASE_PREV_INDEX, "", height)

    @property
    def is_coinbase(self) -> bool:
        return (
            self.prev_txid == COINBASE_PREV_TXID
            and self.prev_index == COINBASE_PREV_INDEX
        )

    def serialize(self) -> bytes:
        return (
            self.prev_txid
            + write_varint(self.prev_index)
            + write_var_bytes(self.address.encode("utf-8"))
            + write_varint(self.value)
        )

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "TxInput":
        prev_txid = reader.bytes(HASH_SIZE)
        prev_index = reader.varint()
        address = _decode_address(reader.var_bytes())
        value = reader.varint()
        return cls(prev_txid, prev_index, address, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TxInput):
            return NotImplemented
        return (
            self.prev_txid == other.prev_txid
            and self.prev_index == other.prev_index
            and self.address == other.address
            and self.value == other.value
        )

    def __repr__(self) -> str:
        if self.is_coinbase:
            return f"TxInput(coinbase, height={self.value})"
        return f"TxInput({self.prev_txid.hex()[:8]}:{self.prev_index})"


class Transaction:
    """A transaction; its id is the double-SHA of its serialization."""

    __slots__ = ("version", "inputs", "outputs", "_txid")

    def __init__(
        self,
        inputs: Sequence[TxInput],
        outputs: Sequence[TxOutput],
        version: int = 1,
    ) -> None:
        if not inputs:
            raise ValueError("transaction needs at least one input")
        if not outputs:
            raise ValueError("transaction needs at least one output")
        self.version = version
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self._txid: "bytes | None" = None

    @property
    def is_coinbase(self) -> bool:
        return len(self.inputs) == 1 and self.inputs[0].is_coinbase

    def txid(self) -> bytes:
        if self._txid is None:
            self._txid = sha256d(self.serialize())
        return self._txid

    def addresses(self) -> List[str]:
        """Every address appearing in an input or output, in order,
        duplicates removed, coinbase placeholder excluded."""
        seen: "dict[str, None]" = {}
        for tx_input in self.inputs:
            if tx_input.address:
                seen.setdefault(tx_input.address, None)
        for tx_output in self.outputs:
            seen.setdefault(tx_output.address, None)
        return list(seen)

    def involves(self, address: str) -> bool:
        return any(
            tx_input.address == address for tx_input in self.inputs
        ) or any(tx_output.address == address for tx_output in self.outputs)

    def received_by(self, address: str) -> int:
        """Sum of output values paying ``address`` (Eq 1's Σv_j term)."""
        return sum(out.value for out in self.outputs if out.address == address)

    def sent_by(self, address: str) -> int:
        """Sum of input values spent by ``address`` (Eq 1's Σw_i term)."""
        return sum(inp.value for inp in self.inputs if inp.address == address)

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        parts = [write_varint(self.version), write_varint(len(self.inputs))]
        parts.extend(tx_input.serialize() for tx_input in self.inputs)
        parts.append(write_varint(len(self.outputs)))
        parts.extend(tx_output.serialize() for tx_output in self.outputs)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "Transaction":
        version = reader.varint()
        input_count = reader.varint()
        if input_count == 0 or input_count > 100_000:
            raise EncodingError(f"implausible input count {input_count}")
        inputs = [TxInput.deserialize(reader) for _ in range(input_count)]
        output_count = reader.varint()
        if output_count == 0 or output_count > 100_000:
            raise EncodingError(f"implausible output count {output_count}")
        outputs = [TxOutput.deserialize(reader) for _ in range(output_count)]
        return cls(inputs, outputs, version)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Transaction":
        reader = ByteReader(payload)
        transaction = cls.deserialize(reader)
        reader.finish()
        return transaction

    def size_bytes(self) -> int:
        return len(self.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.txid() == other.txid()

    def __hash__(self) -> int:
        return hash(self.txid())

    def __repr__(self) -> str:
        return (
            f"Transaction({self.txid().hex()[:12]}, "
            f"{len(self.inputs)} in, {len(self.outputs)} out)"
        )


def _decode_address(raw: bytes) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EncodingError(f"address bytes are not UTF-8: {exc}") from exc
