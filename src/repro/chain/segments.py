"""Merge sets and segment division (paper Algorithm 1, Table I, §V-B, Table II).

Block heights are 1-indexed as in the paper; the height-0 genesis block
never joins a merge set.  With segment length ``M`` (a power of two):

* the block at height ``h`` merges the ``s = 2^v2(l)`` blocks
  ``[h - s + 1, h]`` where ``l = ((h - 1) mod M) + 1`` and ``v2`` is the
  2-adic valuation — the largest power of two dividing ``l``;
* the chain splits into complete segments ``[kM+1, (k+1)M]`` plus a last
  partial segment whose length decomposes into descending powers of two,
  giving the sub-segments of Table II;
* the *anchor* (last block) of every (sub-)segment merges exactly that
  (sub-)segment, so its BMT covers it — the invariant the whole LVQ proof
  decomposition rests on.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ChainError


def _validate_segment_len(segment_len: int) -> None:
    if segment_len <= 0 or segment_len & (segment_len - 1):
        raise ChainError(
            f"segment length must be a positive power of two, got {segment_len}"
        )


def merge_span(height: int, segment_len: int) -> Tuple[int, int]:
    """Inclusive ``(start, end)`` of the blocks merged by block ``height``.

    This is Algorithm 1 in closed form: the merge size is the largest
    power of two dividing the in-segment position ``l`` (``l = M`` for the
    block closing a segment), and the merged blocks always end at
    ``height`` itself.
    """
    _validate_segment_len(segment_len)
    if height <= 0:
        raise ChainError(f"heights are 1-indexed; got {height}")
    position = height % segment_len
    if position == 0:
        position = segment_len
    size = position & -position  # largest power of two dividing `position`
    return height - size + 1, height


def merge_set(height: int, segment_len: int) -> List[int]:
    """The merge span as an explicit block list (paper Table I)."""
    start, end = merge_span(height, segment_len)
    return list(range(start, end + 1))


def segment_spans(tip_height: int, segment_len: int) -> List[Tuple[int, int]]:
    """Divide heights ``[1, tip_height]`` into complete segments followed
    by the binary sub-segments of the last partial segment (Table II)."""
    _validate_segment_len(segment_len)
    if tip_height < 0:
        raise ChainError(f"negative tip height {tip_height}")
    spans: List[Tuple[int, int]] = []
    complete = tip_height // segment_len
    for index in range(complete):
        spans.append((index * segment_len + 1, (index + 1) * segment_len))
    start = complete * segment_len + 1
    remainder = tip_height % segment_len
    bit = segment_len
    while remainder:
        bit >>= 1
        if remainder >= bit:
            spans.append((start, start + bit - 1))
            start += bit
            remainder -= bit
    return spans


def covering_spans(
    tip_height: int, segment_len: int
) -> List[Tuple[int, int, int]]:
    """``(anchor_height, start, end)`` per (sub-)segment.

    The anchor is the (sub-)segment's last block; its header's BMT root
    commits to exactly ``[start, end]``.  Both the prover and the light
    node derive this list independently from the tip height, so a full
    node cannot silently skip a block range.
    """
    covering = []
    for start, end in segment_spans(tip_height, segment_len):
        anchor_start, anchor_end = merge_span(end, segment_len)
        if (anchor_start, anchor_end) != (start, end):
            raise ChainError(
                f"internal invariant broken: block {end} merges "
                f"[{anchor_start},{anchor_end}], expected [{start},{end}]"
            )
        covering.append((end, start, end))
    return covering


def is_anchor_for(
    height: int, start: int, end: int, segment_len: int
) -> bool:
    """Does block ``height``'s BMT cover exactly ``[start, end]``?"""
    try:
        return merge_span(height, segment_len) == (start, end) and height == end
    except ChainError:
        return False
