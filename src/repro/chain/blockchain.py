"""The blockchain container: ordered blocks with validated linkage.

``Blockchain`` stores full blocks (the full node's view); the light node
keeps only ``chain.headers()``.  Height 0 is a genesis block carrying a
single coinbase transaction; the paper's 1-indexed block numbering maps
onto heights 1..tip.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.chain.block import Block, BlockHeader
from repro.errors import ChainError


class Blockchain:
    """An ordered list of blocks with prev-hash linkage checks.

    Growth is via :meth:`append`; the only other mutation is
    :meth:`truncate`, which pops the suffix above a height — the chain
    half of a reorg.  Blocks at or below the truncation height are never
    altered, so every height that survives keeps its exact bytes.
    """

    def __init__(self, blocks: Sequence[Block] = ()) -> None:
        self._blocks: List[Block] = []
        for block in blocks:
            self.append(block)

    def append(self, block: Block) -> None:
        expected_height = len(self._blocks)
        if block.height != expected_height:
            raise ChainError(
                f"expected block at height {expected_height}, got {block.height}"
            )
        if self._blocks:
            tip_id = self._blocks[-1].header.block_id()
            if block.header.prev_hash != tip_id:
                raise ChainError(
                    f"block {block.height} does not link to the tip: "
                    f"prev_hash {block.header.prev_hash.hex()[:12]} != "
                    f"{tip_id.hex()[:12]}"
                )
        mt_root = block.merkle_tree().root
        if block.header.merkle_root != mt_root:
            raise ChainError(
                f"block {block.height} header Merkle root does not match "
                "its transactions"
            )
        self._blocks.append(block)

    def truncate(self, height: int) -> List[Block]:
        """Drop every block above ``height``; returns the removed suffix
        (ascending).  The genesis block can never be removed."""
        if not 0 <= height < len(self._blocks):
            raise ChainError(
                f"cannot truncate to height {height} on a chain of "
                f"{len(self._blocks)} blocks"
            )
        removed = self._blocks[height + 1 :]
        del self._blocks[height + 1 :]
        return removed

    # -- access --------------------------------------------------------------

    @property
    def tip_height(self) -> int:
        if not self._blocks:
            raise ChainError("empty chain has no tip")
        return self._blocks[-1].height

    def block_at(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        return self._blocks[height]

    def header_at(self, height: int) -> BlockHeader:
        return self.block_at(height).header

    def headers(self) -> List[BlockHeader]:
        """What a light node stores: every header, bodies stripped."""
        return [block.header for block in self._blocks]

    def headers_from(self, from_height: int) -> List[BlockHeader]:
        """Headers of blocks at ``from_height`` and above — O(requested),
        so header sync never materializes the whole chain's header list.
        ``from_height`` may be ``tip + 1`` (an empty, up-to-date sync)."""
        if not 0 <= from_height <= len(self._blocks):
            raise ChainError(f"bad header start height {from_height}")
        return [block.header for block in self._blocks[from_height:]]

    def blocks(self, start: int = 0, end: "int | None" = None) -> List[Block]:
        """Blocks with heights in ``[start, end]`` inclusive."""
        if end is None:
            end = len(self._blocks) - 1
        if start < 0 or end >= len(self._blocks) or start > end:
            raise ChainError(f"bad block range [{start}, {end}]")
        return self._blocks[start : end + 1]

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __repr__(self) -> str:
        return f"Blockchain(blocks={len(self._blocks)})"


def header_storage_bytes(headers: Sequence[BlockHeader]) -> int:
    """Total light-node storage for a header list (Challenge 1 metric)."""
    return sum(header.size_bytes() for header in headers)
