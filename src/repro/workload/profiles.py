"""Probe-address profiles replicating the paper's Table III.

The evaluation queries six mainnet addresses whose transaction counts span
four orders of magnitude.  We cannot replay mainnet offline, so the
workload generator *injects* six synthetic addresses with exactly the same
(#tx, #block) footprint into the synthetic chain.  Everything the figures
measure — endpoint counts, proof sizes, SMT/MT branch volume — depends on
an address only through this footprint, which is why the substitution
preserves every curve shape (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WorkloadError


class ProbeProfile:
    """Target footprint for one injected probe address."""

    __slots__ = ("name", "tx_count", "block_count")

    def __init__(self, name: str, tx_count: int, block_count: int) -> None:
        if tx_count < 0 or block_count < 0:
            raise WorkloadError("probe counts must be non-negative")
        if block_count > tx_count:
            raise WorkloadError(
                f"{name}: cannot touch {block_count} blocks with only "
                f"{tx_count} transactions"
            )
        if tx_count > 0 and block_count == 0:
            raise WorkloadError(f"{name}: transactions need at least one block")
        self.name = name
        self.tx_count = tx_count
        self.block_count = block_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbeProfile):
            return NotImplemented
        return (
            self.name == other.name
            and self.tx_count == other.tx_count
            and self.block_count == other.block_count
        )

    def __repr__(self) -> str:
        return (
            f"ProbeProfile({self.name}, tx={self.tx_count}, "
            f"blocks={self.block_count})"
        )


#: Table III verbatim: (#Tx, #Block) for Addr1..Addr6.
PAPER_PROBE_PROFILES: "List[ProbeProfile]" = [
    ProbeProfile("Addr1", 0, 0),
    ProbeProfile("Addr2", 1, 1),
    ProbeProfile("Addr3", 10, 5),
    ProbeProfile("Addr4", 60, 44),
    ProbeProfile("Addr5", 324, 289),
    ProbeProfile("Addr6", 929, 410),
]


def scaled_probe_profiles(num_blocks: int) -> List[ProbeProfile]:
    """Table III profiles scaled to fit a chain shorter than 4096 blocks.

    The paper's block counts assume a 4096-block range.  When the bench
    chain is shorter, block counts scale proportionally (minimum 1 for
    non-empty probes) and tx counts keep their ratio to block counts, so
    "many transactions in few blocks" vs "one transaction total" — the
    property each figure keys on — is preserved.
    """
    if num_blocks <= 0:
        raise WorkloadError(f"chain must have blocks, got {num_blocks}")
    if num_blocks >= 4096:
        return list(PAPER_PROBE_PROFILES)
    scale = num_blocks / 4096.0
    scaled = []
    for profile in PAPER_PROBE_PROFILES:
        if profile.tx_count == 0:
            scaled.append(profile)
            continue
        blocks = max(1, min(num_blocks, round(profile.block_count * scale)))
        ratio = profile.tx_count / profile.block_count
        txs = max(blocks, round(blocks * ratio))
        scaled.append(ProbeProfile(profile.name, txs, blocks))
    return scaled


def profile_table(profiles: List[ProbeProfile]) -> List[Tuple[str, int, int]]:
    """Rows of a Table-III-style summary: (name, #tx, #block)."""
    return [(p.name, p.tx_count, p.block_count) for p in profiles]
