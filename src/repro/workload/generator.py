"""Deterministic synthetic chain generator (the mainnet substitute).

Produces the *bodies* of a chain — per-height transaction lists — that the
query systems then wrap in their own headers.  Key properties:

* **Determinism.**  Everything derives from ``WorkloadParams.seed``; the
  same params always give byte-identical transactions, so benchmark runs
  are comparable and test fixtures are stable.
* **UTXO validity.**  Every non-coinbase input spends a real earlier
  output with matching address and value; :class:`repro.chain.utxo.UtxoSet`
  replays cleanly over the result.
* **Exact probe footprints.**  Each :class:`ProbeProfile` address appears
  in exactly ``tx_count`` transactions spread over exactly ``block_count``
  blocks (Table III), and in *no other* transaction — probe outputs are
  quarantined from the general spending pool so background traffic can
  never touch them.
* **Address reuse.**  Background addresses come from a finite universe
  with a heavy-tailed (Pareto) pick, mimicking mainnet's highly skewed
  address reuse; uniqueness per block is what sizes the Bloom filters.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.address import synthetic_address
from repro.chain.transaction import Transaction, TxInput, TxOutput
from repro.errors import WorkloadError
from repro.workload.profiles import ProbeProfile, scaled_probe_profiles

#: Value of each block subsidy, in the chain's smallest unit.
_COINBASE_VALUE = 50_000
#: Outputs minted by the genesis block to bootstrap the spendable pool.
_GENESIS_FANOUT = 64
#: Fraction of probe transactions that spend from the probe (vs pay it).
_PROBE_SPEND_BIAS = 0.35


class WorkloadParams:
    """Knobs of the synthetic chain."""

    __slots__ = (
        "num_blocks",
        "txs_per_block",
        "seed",
        "address_universe",
        "probes",
    )

    def __init__(
        self,
        num_blocks: int,
        txs_per_block: int = 40,
        seed: int = 2020,
        address_universe: int = 0,
        probes: Optional[Sequence[ProbeProfile]] = None,
    ) -> None:
        if num_blocks <= 0:
            raise WorkloadError(f"need at least one block, got {num_blocks}")
        if txs_per_block < 1:
            raise WorkloadError(
                f"need at least one background tx per block, got {txs_per_block}"
            )
        self.num_blocks = num_blocks
        self.txs_per_block = txs_per_block
        self.seed = seed
        if address_universe <= 0:
            # Mainnet-like uniqueness: most outputs pay fresh addresses,
            # so the universe scales with the whole chain's output count.
            # (Cross-block overlap then comes mostly from the hot set.)
            address_universe = max(64, num_blocks * txs_per_block)
        self.address_universe = address_universe
        if probes is None:
            probes = scaled_probe_profiles(num_blocks)
        self.probes = list(probes)
        for profile in self.probes:
            if profile.block_count > num_blocks:
                raise WorkloadError(
                    f"{profile.name} needs {profile.block_count} blocks but "
                    f"the chain has only {num_blocks}"
                )


class GeneratedWorkload:
    """The generator's output: bodies plus probe bookkeeping."""

    __slots__ = ("params", "bodies", "probe_addresses", "probe_profiles")

    def __init__(
        self,
        params: WorkloadParams,
        bodies: List[List[Transaction]],
        probe_addresses: Dict[str, str],
        probe_profiles: List[ProbeProfile],
    ) -> None:
        self.params = params
        #: ``bodies[h]`` is the transaction list of height ``h`` (0=genesis).
        self.bodies = bodies
        #: Profile name → injected address string.
        self.probe_addresses = probe_addresses
        self.probe_profiles = probe_profiles

    def history_of(self, address: str) -> List[Tuple[int, Transaction]]:
        """Ground-truth history: every ``(height, tx)`` touching ``address``.

        This is what a verified query must reproduce exactly; integration
        tests compare against it.
        """
        history = []
        for height, transactions in enumerate(self.bodies):
            for transaction in transactions:
                if transaction.involves(address):
                    history.append((height, transaction))
        return history

    def footprint_of(self, address: str) -> Tuple[int, int]:
        """``(#tx, #blocks)`` of an address — Table III's two columns."""
        history = self.history_of(address)
        return len(history), len({height for height, _tx in history})


def generate_workload(params: WorkloadParams) -> GeneratedWorkload:
    """Build the synthetic chain bodies described by ``params``."""
    rng = random.Random(params.seed)
    universe = _AddressUniverse(params.address_universe)
    pool = _SpendablePool(rng)

    probe_addresses = {
        profile.name: synthetic_address(f"probe/{profile.name}".encode())
        for profile in params.probes
    }
    plan = _plan_probe_placement(params, rng)
    probe_utxos: Dict[str, List[Tuple[bytes, int, int]]] = {
        profile.name: [] for profile in params.probes
    }

    bodies: List[List[Transaction]] = [_genesis_body(universe, pool)]
    for height in range(1, params.num_blocks + 1):
        transactions: List[Transaction] = []

        coinbase = Transaction(
            [TxInput.coinbase(height)],
            [TxOutput(universe.pick(rng), _COINBASE_VALUE)],
        )
        transactions.append(coinbase)
        pool.add_outputs(coinbase)

        for _ in range(params.txs_per_block):
            transaction = _background_tx(rng, universe, pool)
            transactions.append(transaction)
            pool.add_outputs(transaction)

        for probe_name, tx_count in plan.get(height, ()):  # deterministic order
            address = probe_addresses[probe_name]
            for _ in range(tx_count):
                transaction = _probe_tx(
                    rng, universe, pool, address, probe_utxos[probe_name]
                )
                transactions.append(transaction)

        bodies.append(transactions)

    return GeneratedWorkload(params, bodies, probe_addresses, params.probes)


# ---------------------------------------------------------------------------
# internals


class _AddressUniverse:
    """Lazy universe of background addresses with mainnet-like reuse.

    30% of picks hit a small Zipf-distributed "hot set" (exchanges,
    pools, gambling services — the heavy re-users on mainnet); the rest
    are uniform over the whole universe.  The mix keeps per-block unique
    address counts high (what sizes the Bloom filters) while still
    exercising address reuse across blocks.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._cache: Dict[int, str] = {}

    def pick(self, rng: random.Random) -> str:
        if rng.random() < 0.3:
            index = (int(rng.paretovariate(1.2)) - 1) % self._size
        else:
            index = rng.randrange(self._size)
        address = self._cache.get(index)
        if address is None:
            address = synthetic_address(f"universe/{index}".encode())
            self._cache[index] = address
        return address


class _SpendablePool:
    """Unspent background outputs available for new transactions.

    Probe outputs never enter this pool, so probes only ever appear in
    their planned transactions.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._entries: List[Tuple[bytes, int, str, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add_outputs(self, transaction: Transaction) -> None:
        txid = transaction.txid()
        for index, tx_output in enumerate(transaction.outputs):
            self._entries.append(
                (txid, index, tx_output.address, tx_output.value)
            )

    def pop_random(self) -> Tuple[bytes, int, str, int]:
        if not self._entries:
            raise WorkloadError("spendable pool exhausted — raise txs_per_block")
        index = self._rng.randrange(len(self._entries))
        self._entries[index], self._entries[-1] = (
            self._entries[-1],
            self._entries[index],
        )
        return self._entries.pop()


def _genesis_body(
    universe: _AddressUniverse, pool: _SpendablePool
) -> List[Transaction]:
    """Height-0 block: one coinbase fanning out to seed the pool.

    Genesis pays dedicated one-shot addresses outside the universe, so
    every queryable address's history lies entirely in heights >= 1 — the
    paper's 1-indexed query range.
    """
    del universe  # genesis deliberately avoids the reusable universe
    outputs = [
        TxOutput(synthetic_address(f"genesis/{index}".encode()), _COINBASE_VALUE)
        for index in range(_GENESIS_FANOUT)
    ]
    genesis_tx = Transaction([TxInput.coinbase(0)], outputs)
    pool.add_outputs(genesis_tx)
    return [genesis_tx]


def _split_value(rng: random.Random, value: int, max_parts: int) -> List[int]:
    """Split ``value`` into 1..max_parts positive parts summing exactly."""
    parts = min(max_parts, value, 1 + rng.randrange(max_parts))
    if parts <= 1:
        return [value]
    cuts = sorted(rng.sample(range(1, value), parts - 1))
    bounds = [0] + cuts + [value]
    return [bounds[i + 1] - bounds[i] for i in range(parts)]


def _background_tx(
    rng: random.Random, universe: _AddressUniverse, pool: _SpendablePool
) -> Transaction:
    num_inputs = 2 if (len(pool) > 2 and rng.random() < 0.3) else 1
    inputs = []
    total = 0
    for _ in range(num_inputs):
        txid, vout, address, value = pool.pop_random()
        inputs.append(TxInput(txid, vout, address, value))
        total += value
    outputs = [
        TxOutput(universe.pick(rng), part)
        for part in _split_value(rng, total, 3)
    ]
    return Transaction(inputs, outputs)


def _probe_tx(
    rng: random.Random,
    universe: _AddressUniverse,
    pool: _SpendablePool,
    probe_address: str,
    probe_utxos: List[Tuple[bytes, int, int]],
) -> Transaction:
    """One transaction involving the probe: a spend when it has funds and
    the dice say so, otherwise a payment to it."""
    if probe_utxos and rng.random() < _PROBE_SPEND_BIAS:
        txid, vout, value = probe_utxos.pop(rng.randrange(len(probe_utxos)))
        inputs = [TxInput(txid, vout, probe_address, value)]
        outputs = [
            TxOutput(universe.pick(rng), part)
            for part in _split_value(rng, value, 2)
        ]
        return Transaction(inputs, outputs)

    txid, vout, address, value = pool.pop_random()
    inputs = [TxInput(txid, vout, address, value)]
    if value >= 2 and rng.random() < 0.5:
        to_probe = 1 + rng.randrange(value - 1)
        outputs = [TxOutput(probe_address, to_probe)]
        change = value - to_probe
        if change:
            outputs.append(TxOutput(universe.pick(rng), change))
    else:
        to_probe = value
        outputs = [TxOutput(probe_address, to_probe)]
    transaction = Transaction(inputs, outputs)
    probe_utxos.append((transaction.txid(), 0, to_probe))
    return transaction


def _plan_probe_placement(
    params: WorkloadParams, rng: random.Random
) -> Dict[int, List[Tuple[str, int]]]:
    """Decide, per height, how many transactions each probe gets.

    Every probe gets exactly ``block_count`` distinct heights with at
    least one transaction each, and ``tx_count`` transactions in total.
    """
    plan: Dict[int, List[Tuple[str, int]]] = {}
    for profile in params.probes:
        if profile.tx_count == 0:
            continue
        heights = rng.sample(
            range(1, params.num_blocks + 1), profile.block_count
        )
        counts = {height: 1 for height in heights}
        for _ in range(profile.tx_count - profile.block_count):
            counts[rng.choice(heights)] += 1
        for height in sorted(counts):
            plan.setdefault(height, []).append((profile.name, counts[height]))
    return plan
