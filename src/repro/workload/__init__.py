"""Deterministic synthetic Bitcoin workload (substitute for mainnet data)."""

from repro.workload.profiles import (
    PAPER_PROBE_PROFILES,
    ProbeProfile,
    scaled_probe_profiles,
)
from repro.workload.generator import (
    GeneratedWorkload,
    WorkloadParams,
    generate_workload,
)

__all__ = [
    "PAPER_PROBE_PROFILES",
    "ProbeProfile",
    "scaled_probe_profiles",
    "GeneratedWorkload",
    "WorkloadParams",
    "generate_workload",
]
