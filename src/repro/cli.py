"""Command-line interface: ``python -m repro <command>``.

Five subcommands, each a self-contained demonstration on a synthetic
chain (sizes/seeds configurable):

* ``query``    — verifiable history + balance of one probe address;
* ``compare``  — Fig-12-style result-size comparison across all systems;
* ``storage``  — Challenge-1 light-node storage comparison;
* ``attack``   — run the §VI adversary suite and show every rejection;
* ``segments`` — print merge sets / segment division (Tables I & II).

Plus operational tools: ``verify-store <dir>`` fscks a durable chain
store (exit 0 clean / 1 corrupt, reporting the first bad record offset);
``serve`` runs a full node as a TCP daemon (PROTOCOL.md §9) with
graceful drain on SIGTERM and optional background mining
(``--mine-interval``) so watchers see live appends; ``query --connect
HOST:PORT`` points the query client at such a daemon instead of an
in-process node; ``watch --connect HOST:PORT addr...`` opens a §10
streaming subscription and prints one parseable line per verified
update/retraction until Ctrl-C.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_bytes, render_table
from repro.analysis.sizing import storage_table
from repro.chain.segments import merge_set, segment_spans
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.transport import InProcessTransport
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload


def _add_chain_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--blocks", type=int, default=128, help="chain length")
    parser.add_argument(
        "--txs-per-block", type=int, default=16, help="background txs/block"
    )
    parser.add_argument("--seed", type=int, default=2020, help="workload seed")
    parser.add_argument(
        "--bf-bytes", type=int, default=512, help="Bloom filter size (bytes)"
    )
    parser.add_argument(
        "--segment-len",
        type=int,
        default=0,
        help="LVQ segment length M (default: largest power of two <= blocks)",
    )


def _segment_len(args) -> int:
    if args.segment_len:
        return args.segment_len
    length = 1
    while length * 2 <= args.blocks:
        length *= 2
    return length


def _workload(args):
    return generate_workload(
        WorkloadParams(
            num_blocks=args.blocks,
            txs_per_block=args.txs_per_block,
            seed=args.seed,
        )
    )


def _all_configs(args):
    segment_len = _segment_len(args)
    return {
        "strawman": SystemConfig.strawman(bf_bytes=args.bf_bytes),
        "lvq_no_bmt": SystemConfig.lvq_no_bmt(bf_bytes=args.bf_bytes),
        "lvq_no_smt": SystemConfig.lvq_no_smt(
            bf_bytes=args.bf_bytes * 3, segment_len=segment_len
        ),
        "lvq": SystemConfig.lvq(
            bf_bytes=args.bf_bytes * 3, segment_len=segment_len
        ),
    }


# ---------------------------------------------------------------------------
# subcommands


def cmd_query(args) -> int:
    workload = _workload(args)
    config = SystemConfig.lvq(
        bf_bytes=args.bf_bytes * 3, segment_len=_segment_len(args)
    )
    system = build_system(workload.bodies, config)
    local_node = FullNode(system)
    light_node = LightNode.from_full_node(local_node)

    if args.connect:
        # Same synthetic chain parameters as the daemon → same trusted
        # headers; the *answer* comes over the socket and is verified.
        from repro.node.netclient import RemoteFullNode

        host, _, port = args.connect.rpartition(":")
        full_node = RemoteFullNode((host or "127.0.0.1", int(port)))
    else:
        full_node = local_node

    if args.address in workload.probe_addresses:
        address = workload.probe_addresses[args.address]
    else:
        address = args.address
    transport = InProcessTransport()
    kwargs = {}
    if args.range:
        first, last = args.range
        kwargs = {"first_height": first, "last_height": last}
    try:
        history = light_node.query_history(
            full_node, address, transport, **kwargs
        )
    finally:
        if args.connect:
            full_node.close()

    print(f"address       : {address}")
    print(f"transactions  : {len(history.transactions)}")
    print(f"active blocks : {len(history.heights())}")
    print(f"balance (Eq 1): {history.balance():,}")
    print(f"BMT endpoints : {history.num_endpoints}")
    print(f"proof bytes   : {transport.stats.bytes_to_client:,}")
    sizes = local_node.query(address, **kwargs).breakdown(config)
    print(f"raw result    : {sizes.total_bytes:,}")
    print(f"wire (agg)    : {sizes.aggregated_bytes:,}")
    print(f"wire (agg+z)  : {sizes.compressed_bytes:,}")
    if args.verbose:
        for height, tx in history.transactions:
            received = tx.received_by(address)
            sent = tx.sent_by(address)
            print(
                f"  h={height:6d} {tx.txid().hex()[:16]} "
                f"recv={received:+d} sent={-sent:+d}"
            )
    return 0


def cmd_compare(args) -> int:
    workload = _workload(args)
    configs = _all_configs(args)
    sizes = {}
    for label, config in configs.items():
        system = build_system(workload.bodies, config)
        full_node = FullNode(system)
        sizes[label] = {
            name: full_node.query(address).size_bytes(config)
            for name, address in workload.probe_addresses.items()
        }
    rows = [
        [name] + [format_bytes(sizes[label][name]) for label in configs]
        for name in workload.probe_addresses
    ]
    print(render_table(["Address", *configs.keys()], rows))
    return 0


def cmd_storage(args) -> int:
    workload = _workload(args)
    configs = _all_configs(args)
    configs["strawman_header_bf"] = SystemConfig.strawman_header_bf(
        bf_bytes=args.bf_bytes
    )
    labelled = [
        (label, build_system(workload.bodies, config).headers())
        for label, config in configs.items()
    ]
    rows = storage_table(labelled)
    print(
        render_table(
            ["System", "Blocks", "Total", "Overhead/block", "vs Bitcoin"],
            [
                [
                    row["system"],
                    row["blocks"],
                    format_bytes(row["total_bytes"]),
                    f"{row['per_block_overhead']}B",
                    f"{row['vs_bitcoin']:.2f}x",
                ]
                for row in rows
            ],
        )
    )
    return 0


def cmd_attack(args) -> int:
    from repro.errors import VerificationError
    from repro.query.adversary import ALL_ATTACKS, MaliciousFullNode

    workload = _workload(args)
    config = SystemConfig.lvq(
        bf_bytes=args.bf_bytes * 3, segment_len=_segment_len(args)
    )
    system = build_system(workload.bodies, config)
    light_node = LightNode(system.headers(), config)
    address = workload.probe_addresses[args.address] if (
        args.address in workload.probe_addresses
    ) else args.address

    undetected = 0
    for name, attack in sorted(ALL_ATTACKS.items()):
        liar = MaliciousFullNode(system, attack)
        try:
            light_node.query_history(liar, address)
        except VerificationError as reason:
            print(f"{name:28s} rejected: {str(reason)[:80]}")
        else:
            if liar.last_attack_applied:
                undetected += 1
                print(f"{name:28s} *** ACCEPTED A MODIFIED ANSWER ***")
            else:
                print(f"{name:28s} no-op for this address (answer honest)")
    return 1 if undetected else 0


def cmd_wallet(args) -> int:
    """A watch-only wallet session: batch-refresh several probes, then
    optionally persist the wallet to disk."""
    from repro.analysis.report import render_table as _render
    from repro.node.light_node import LightNode
    from repro.wallet import Wallet

    workload = _workload(args)
    config = SystemConfig.lvq(
        bf_bytes=args.bf_bytes * 3, segment_len=_segment_len(args)
    )
    system = build_system(workload.bodies, config)
    full_node = FullNode(system)

    watched = []
    for name in args.watch:
        watched.append(workload.probe_addresses.get(name, name))
    wallet = Wallet(LightNode.from_full_node(full_node), watched)
    wallet.refresh(full_node)

    print(
        _render(
            ["Address", "Verified balance", "#Tx"],
            [
                [
                    address,
                    f"{wallet.balance(address):,}",
                    len(wallet.history(address)),
                ]
                for address in wallet.addresses
            ],
        )
    )
    print(f"Total: {wallet.total_balance():,}")
    if args.save:
        wallet.save(args.save)
        print(f"Wallet persisted to {args.save}")
    return 0


def cmd_verify_store(args) -> int:
    """Offline fsck of a durable (format-2) chain store directory."""
    from repro.storage.durable import verify_store

    report = verify_store(args.directory, deep=args.deep)
    status = "clean" if report.ok else "CORRUPT"
    print(f"{report.directory}: {status}")
    print(f"  blocks          : {report.blocks}")
    print(f"  tip             : {report.tip_id or '-'}")
    print(f"  log bytes       : {report.log_bytes:,}")
    print(f"  committed bytes : {report.committed_bytes:,}")
    print(f"  records         : {report.records}")
    if report.torn_bytes:
        print(f"  torn tail       : {report.torn_bytes:,} bytes (recoverable)")
    if report.first_bad_offset is not None:
        print(f"  first bad record: offset {report.first_bad_offset}")
    if report.detail:
        print(f"  detail          : {report.detail}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run a full node as a TCP daemon until SIGTERM/SIGINT, then drain.

    With ``--mine-blocks N`` a background miner appends one
    pre-generated block every ``--mine-interval`` seconds, so connected
    ``repro watch`` clients receive live pushed updates.  The base chain
    stays the canonical ``--blocks`` workload (a client building the
    same parameters shares genesis and trusted headers); the mined
    blocks come from a seed-derived continuation workload, so each run
    is still deterministic while clients verify the appends purely from
    the pushed proofs.
    """
    import signal
    import threading

    from repro.node.metrics import MetricsServer
    from repro.node.net import NetServer
    from repro.node.server import QueryServer
    from repro.node.subscribe import SubscriptionRegistry

    mine_blocks = max(0, args.mine_blocks)
    workload = _workload(args)
    config = SystemConfig.lvq(
        bf_bytes=args.bf_bytes * 3, segment_len=_segment_len(args)
    )
    system = build_system(workload.bodies, config)
    node = FullNode(system)
    query_server = QueryServer(
        node,
        num_workers=args.workers,
        max_pending=args.max_pending,
        rate_limit=args.rate_limit if args.rate_limit > 0 else None,
        rate_burst=args.rate_burst if args.rate_burst > 0 else None,
    )
    registry = SubscriptionRegistry(node, max_outbox=args.push_outbox)
    server = NetServer(
        query_server,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
        read_timeout=args.read_timeout,
        write_timeout=args.write_timeout,
        subscriptions=registry,
        push_outbox=args.push_outbox,
    )
    server.start()
    metrics: "Optional[MetricsServer]" = None
    if args.metrics_port is not None:
        metrics = MetricsServer(
            host=args.host,
            port=args.metrics_port,
            server=query_server,
            net=server,
            subscriptions=registry,
        ).start()
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())

    miner: "Optional[threading.Thread]" = None
    if mine_blocks:
        continuation = generate_workload(
            WorkloadParams(
                num_blocks=mine_blocks,
                txs_per_block=args.txs_per_block,
                seed=args.seed + 104729,  # distinct stream, still seeded
            )
        )
        pending = continuation.bodies[1:]  # bodies[0] is its genesis

        def _mine() -> None:
            for transactions in pending:
                if stop.wait(args.mine_interval):
                    return
                node.extend_chain([transactions])
                print(f"mined height {system.tip_height}", flush=True)

        miner = threading.Thread(target=_mine, name="repro-miner", daemon=True)
        miner.start()

    # Parseable by scripts/tests: the kernel picks the port when 0.
    print(f"serving on {server.host}:{server.port}", flush=True)
    print(
        f"  limits: workers={args.workers} queue-depth={args.max_pending} "
        f"max-connections={args.max_connections} "
        f"rate-limit={args.rate_limit if args.rate_limit > 0 else 'off'}",
        flush=True,
    )
    if metrics is not None:
        metrics_host, metrics_port = metrics.address
        print(f"metrics on {metrics_host}:{metrics_port}", flush=True)
    print(
        f"  chain: {args.blocks} blocks, tip height {system.tip_height}"
        + (f", mining {mine_blocks} more every {args.mine_interval}s"
           if mine_blocks else ""),
        flush=True,
    )
    try:
        stop.wait()
    finally:
        stop.set()
        if miner is not None:
            miner.join(timeout=5.0)
        print("draining...", flush=True)
        if metrics is not None:
            metrics.close()
        registry.close()
        server.close(drain=True, timeout=args.drain_timeout)
        query_server.close(drain=True, timeout=args.drain_timeout)
        stats = server.stats.as_dict()
        print(
            f"served {stats['frames_in']} frames over "
            f"{stats['connections_accepted']} connections "
            f"({stats['bytes_in']:,}B in, {stats['bytes_out']:,}B out, "
            f"{stats['pushes']} pushes)",
            flush=True,
        )
    return 0


def cmd_watch(args) -> int:
    """Stream verified watch updates from a daemon, one line per event.

    Builds the same synthetic chain parameters as the daemon for the
    trusted genesis headers (the daemon may have mined further — the
    session backfills the difference through verified range queries),
    subscribes over TCP, and prints each event's ``describe()`` line.
    Ctrl-C unsubscribes and exits cleanly.
    """
    from repro.node.subscribe import SubscriptionSession, WatchClosed

    workload = _workload(args)
    config = SystemConfig.lvq(
        bf_bytes=args.bf_bytes * 3, segment_len=_segment_len(args)
    )
    system = build_system(workload.bodies, config)
    light_node = LightNode(system.headers(), config)

    host, _, port = args.connect.rpartition(":")
    watched = [
        workload.probe_addresses.get(name, name) for name in args.addresses
    ]
    session = SubscriptionSession(
        light_node,
        (host or "127.0.0.1", int(port)),
        watched,
        keepalive=args.keepalive,
    )
    print(f"watching {len(watched)} addresses via {args.connect}", flush=True)
    session.start()
    import time as _time

    deadline = _time.monotonic() + args.duration if args.duration else None
    updates = 0
    status = 0
    try:
        while True:
            event = session.next_event(timeout=0.25)
            if event is None:
                if deadline is not None and _time.monotonic() >= deadline:
                    break
                continue
            print(event.describe(), flush=True)
            if isinstance(event, WatchClosed):
                break
            if event.kind == "update":
                updates += 1
                if args.max_updates and updates >= args.max_updates:
                    break
            elif event.kind == "disconnect" and event.final:
                status = 1
    except KeyboardInterrupt:
        pass
    finally:
        session.stop()
    stats = session.stats
    print(
        f"watch done: {stats.updates_verified} updates verified, "
        f"{stats.retractions} retractions, {stats.backfills} backfills, "
        f"0 unverified surfaced",
        flush=True,
    )
    return status


def cmd_segments(args) -> int:
    print("Table I — merge sets (M = 4096):")
    print(
        render_table(
            ["Height", "Blocks to be merged"],
            [
                [height, ", ".join(map(str, merge_set(height, 4096)))]
                for height in range(1, 9)
            ],
        )
    )
    print(f"\nSegment division for tip={args.tip}, M={args.segment}:")
    spans = segment_spans(args.tip, args.segment)
    print(", ".join(f"[{start},{end}]" for start, end in spans))
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="verifiable history of one address")
    _add_chain_arguments(query)
    query.add_argument(
        "--address", default="Addr4",
        help="probe name (Addr1..Addr6) or literal address",
    )
    query.add_argument(
        "--range", type=int, nargs=2, metavar=("FIRST", "LAST"),
        help="restrict the query to a height range",
    )
    query.add_argument("--verbose", action="store_true")
    query.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="query a running `repro serve` daemon instead of in-process",
    )
    query.set_defaults(func=cmd_query)

    serve = sub.add_parser(
        "serve", help="run a full node as a TCP daemon (PROTOCOL.md §9)"
    )
    _add_chain_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 = kernel-assigned"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--queue-depth",
        "--max-pending",
        dest="max_pending",
        type=int,
        default=64,
        help="bound on admitted-but-unstarted requests",
    )
    serve.add_argument("--max-connections", type=int, default=64)
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-client requests/second budget (0 = unlimited)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=0.0,
        help="per-client token-bucket burst (0 = 2x rate)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus-style /metrics on this port (0 = kernel pick)",
    )
    serve.add_argument("--idle-timeout", type=float, default=30.0)
    serve.add_argument("--read-timeout", type=float, default=10.0)
    serve.add_argument("--write-timeout", type=float, default=10.0)
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="grace period for in-flight requests on shutdown",
    )
    serve.add_argument(
        "--mine-blocks",
        type=int,
        default=0,
        help="pre-generate this many extra blocks and append them live",
    )
    serve.add_argument(
        "--mine-interval",
        type=float,
        default=1.0,
        help="seconds between background block appends",
    )
    serve.add_argument(
        "--push-outbox",
        type=int,
        default=256,
        help="per-subscriber outbox bound before slow-consumer eviction",
    )
    serve.set_defaults(func=cmd_serve)

    watch = sub.add_parser(
        "watch",
        help="stream verified watch-address updates from a daemon (§10)",
    )
    _add_chain_arguments(watch)
    watch.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="a running `repro serve` daemon",
    )
    watch.add_argument(
        "addresses",
        nargs="+",
        help="probe names (Addr1..Addr6) or literal addresses to watch",
    )
    watch.add_argument(
        "--keepalive",
        type=float,
        default=5.0,
        help="quiet seconds before a keepalive ping",
    )
    watch.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="stop after this many seconds (0 = until Ctrl-C)",
    )
    watch.add_argument(
        "--max-updates",
        type=int,
        default=0,
        help="stop after this many verified updates/backfills (0 = no cap)",
    )
    watch.set_defaults(func=cmd_watch)

    compare = sub.add_parser("compare", help="Fig-12-style size comparison")
    _add_chain_arguments(compare)
    compare.set_defaults(func=cmd_compare)

    storage = sub.add_parser("storage", help="Challenge-1 storage comparison")
    _add_chain_arguments(storage)
    storage.set_defaults(func=cmd_storage)

    attack = sub.add_parser("attack", help="run the §VI adversary suite")
    _add_chain_arguments(attack)
    attack.add_argument("--address", default="Addr5")
    attack.set_defaults(func=cmd_attack)

    wallet = sub.add_parser("wallet", help="watch-only wallet session")
    _add_chain_arguments(wallet)
    wallet.add_argument(
        "--watch",
        nargs="+",
        default=["Addr2", "Addr4", "Addr6"],
        help="probe names or literal addresses to watch",
    )
    wallet.add_argument("--save", help="directory to persist the wallet to")
    wallet.set_defaults(func=cmd_wallet)

    verify = sub.add_parser(
        "verify-store",
        help="fsck a durable chain store (exit 0 clean, 1 corrupt)",
    )
    verify.add_argument("directory", help="chain store directory to check")
    verify.add_argument(
        "--deep",
        action="store_true",
        help="also rebuild indexes and cross-check every stored header",
    )
    verify.set_defaults(func=cmd_verify_store)

    segments = sub.add_parser("segments", help="Tables I & II calculators")
    segments.add_argument("--tip", type=int, default=464)
    segments.add_argument("--segment", type=int, default=256)
    segments.set_defaults(func=cmd_segments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
