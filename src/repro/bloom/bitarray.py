"""Fixed-size bit vector backed by a single Python integer.

The BMT (paper §III-B2) ORs whole Bloom filters together at every interior
node — thousands of times while indexing a chain — so the representation
must make bitwise-OR cheap.  A Python ``int`` gives an O(words) OR in C,
far faster than any per-bit structure, while still serializing to the exact
``size_bits / 8`` bytes the paper's size accounting assumes.
"""

from __future__ import annotations

from repro.errors import EncodingError


class BitArray:
    """Immutable-width, mutable-content bit vector.

    Bit ``i`` is the ``i % 8``-th least significant bit of byte ``i // 8``
    in the serialized form, matching Bitcoin's BIP-37 filter layout.
    """

    __slots__ = ("_bits", "_value")

    def __init__(self, size_bits: int, value: int = 0) -> None:
        if size_bits <= 0:
            raise ValueError(f"BitArray needs a positive size, got {size_bits}")
        if size_bits % 8:
            raise ValueError(f"BitArray size must be byte-aligned, got {size_bits}")
        if value < 0 or value.bit_length() > size_bits:
            raise ValueError("initial value does not fit in the bit array")
        self._bits = size_bits
        self._value = value

    # -- construction ------------------------------------------------------

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BitArray":
        if not payload:
            raise EncodingError("cannot build a BitArray from empty bytes")
        return cls(len(payload) * 8, int.from_bytes(payload, "little"))

    # -- inspection --------------------------------------------------------

    @property
    def size_bits(self) -> int:
        return self._bits

    @property
    def size_bytes(self) -> int:
        return self._bits // 8

    def get(self, index: int) -> bool:
        self._check_index(index)
        return bool((self._value >> index) & 1)

    if hasattr(int, "bit_count"):  # Python >= 3.10

        def popcount(self) -> int:
            """Number of set bits."""
            return self._value.bit_count()

    else:  # pragma: no cover - exercised only on Python < 3.10

        def popcount(self) -> int:
            """Number of set bits (pre-3.10 fallback)."""
            return bin(self._value).count("1")

    def fill_ratio(self) -> float:
        """Fraction of bits set — drives the BMT endpoint distribution."""
        return self.popcount() / self._bits

    def __len__(self) -> int:
        return self._bits

    # -- mutation ----------------------------------------------------------

    def set(self, index: int) -> None:
        self._check_index(index)
        self._value |= 1 << index

    def clear(self, index: int) -> None:
        self._check_index(index)
        self._value &= ~(1 << index)

    def ior(self, other: "BitArray") -> None:
        """In-place OR; both arrays must have identical width."""
        self._check_width(other)
        self._value |= other._value

    # -- operators ---------------------------------------------------------

    def __or__(self, other: "BitArray") -> "BitArray":
        self._check_width(other)
        return BitArray(self._bits, self._value | other._value)

    def __and__(self, other: "BitArray") -> "BitArray":
        self._check_width(other)
        return BitArray(self._bits, self._value & other._value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._bits == other._bits and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._bits, self._value))

    def is_subset_of(self, other: "BitArray") -> bool:
        """True when every set bit here is also set in ``other``.

        Verifiers use this to check that a child BF could plausibly have
        contributed to a parent BF (``child | parent == parent``).
        """
        self._check_width(other)
        return self._value | other._value == other._value

    def covers_positions(self, positions: "list[int]") -> bool:
        """True when *all* ``positions`` are set (a failed BF check).

        Folds the positions into one mask so the test is a single big-int
        AND rather than one shift per position — this sits on the hot
        path of every BMT descent and per-block filter check.
        """
        mask = 0
        for position in positions:
            if not 0 <= position < self._bits:
                raise IndexError(
                    f"bit {position} out of range [0, {self._bits})"
                )
            mask |= 1 << position
        return self._value & mask == mask

    def covers_mask(self, mask: int) -> bool:
        """``covers_positions`` for a pre-folded mask (no bounds checks;
        callers build the mask once per query via :meth:`positions_mask`)."""
        return self._value & mask == mask

    @staticmethod
    def positions_mask(positions: "list[int]") -> int:
        """Fold bit positions into the int mask ``covers_mask`` expects."""
        mask = 0
        for position in positions:
            mask |= 1 << position
        return mask

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(self._bits // 8, "little")

    def copy(self) -> "BitArray":
        return BitArray(self._bits, self._value)

    def __repr__(self) -> str:
        return f"BitArray(bits={self._bits}, set={self.popcount()})"

    # -- internals ---------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._bits:
            raise IndexError(f"bit {index} out of range [0, {self._bits})")

    def _check_width(self, other: "BitArray") -> None:
        if self._bits != other._bits:
            raise ValueError(
                f"BitArray width mismatch: {self._bits} vs {other._bits}"
            )
