"""Analytic Bloom-filter models (paper refs [16]-[18]).

These closed forms predict the quantities the evaluation section measures:
the fill ratio of a BF after ``n`` insertions, the false-positive-match
(FPM) probability of a check, and the expected number of FPMs over a chain.
The :mod:`repro.analysis.fpm` module layers the BMT endpoint-count model on
top of these.
"""

from __future__ import annotations

import math


def fill_ratio_estimate(num_items: int, size_bits: int, num_hashes: int) -> float:
    """Expected fraction of set bits: ``1 - (1 - 1/m)^(k*n)``.

    This is the exact expectation; the familiar ``1 - e^(-kn/m)`` is its
    large-``m`` limit.
    """
    _validate(size_bits, num_hashes)
    if num_items < 0:
        raise ValueError(f"negative item count: {num_items}")
    if num_items == 0:
        return 0.0
    return 1.0 - (1.0 - 1.0 / size_bits) ** (num_hashes * num_items)


def false_positive_rate(num_items: int, size_bits: int, num_hashes: int) -> float:
    """Classic FPM probability ``(1 - (1 - 1/m)^(kn))^k``.

    Bose et al. [16] showed this slightly underestimates the truth for
    small filters; for the filter sizes in the paper's sweep (≥10KB) the
    error is negligible, and we use the classic form the paper cites.
    """
    return fill_ratio_estimate(num_items, size_bits, num_hashes) ** num_hashes


def false_positive_rate_for_fill(fill_ratio: float, num_hashes: int) -> float:
    """FPM probability for an *observed* fill ratio (Christensen'10 view)."""
    if not 0.0 <= fill_ratio <= 1.0:
        raise ValueError(f"fill ratio out of [0,1]: {fill_ratio}")
    if num_hashes <= 0:
        raise ValueError(f"need at least one hash function, got {num_hashes}")
    return fill_ratio**num_hashes

def optimal_num_hashes(size_bits: int, num_items: int) -> int:
    """The FPM-minimizing hash count ``k* = (m/n) ln 2``, at least 1.

    The paper sets k "by default" from its btcd base; our chain parameters
    default to a small fixed k instead (see DESIGN.md), but this helper is
    exposed for parameter studies.
    """
    if size_bits <= 0:
        raise ValueError(f"filter size must be positive, got {size_bits}")
    if num_items <= 0:
        raise ValueError(f"item count must be positive, got {num_items}")
    return max(1, round(math.log(2) * size_bits / num_items))


def expected_fpm_count(
    num_blocks: int, num_items_per_block: int, size_bits: int, num_hashes: int
) -> float:
    """Expected FPMs when one address is checked against ``num_blocks`` BFs.

    This is the paper's Challenge-2 arithmetic: 600k blocks at FPM 1e-3
    gives >600 expected integral-block transmissions in the strawman.
    """
    if num_blocks < 0:
        raise ValueError(f"negative block count: {num_blocks}")
    return num_blocks * false_positive_rate(
        num_items_per_block, size_bits, num_hashes
    )


def _validate(size_bits: int, num_hashes: int) -> None:
    if size_bits <= 0:
        raise ValueError(f"filter size must be positive, got {size_bits}")
    if num_hashes <= 0:
        raise ValueError(f"need at least one hash function, got {num_hashes}")
