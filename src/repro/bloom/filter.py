"""Bloom filter with deterministic double hashing (paper §III-B1).

Position derivation uses the Kirsch–Mitzenmacher construction: two 64-bit
values ``h1, h2`` come from a single SHA-256 of the item, and position ``i``
is ``(h1 + i * h2) mod m``.  One hash call per membership operation keeps
chain indexing fast while preserving the independent-hash false-positive
behaviour the paper's analysis (refs [16]-[18]) assumes.

Both the light node and the full node must derive identical positions, so
the scheme is part of the protocol and has no per-filter salt.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bloom.bitarray import BitArray
from repro.crypto.hashing import sha256
from repro.errors import EncodingError

#: Protocol-wide domain tag mixed into every position derivation.
_POSITION_TAG = b"lvq/bloom/v1"


def bloom_positions(item: bytes, num_hashes: int, size_bits: int) -> List[int]:
    """The ``num_hashes`` bit positions of ``item`` in an ``size_bits`` filter.

    These are the paper's "checked bit positions" (CBP, §IV-A): the light
    node recomputes them locally to audit any BF the full node ships.
    """
    if num_hashes <= 0:
        raise ValueError(f"need at least one hash function, got {num_hashes}")
    if size_bits <= 0:
        raise ValueError(f"filter size must be positive, got {size_bits}")
    digest = sha256(_POSITION_TAG + item)
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:16], "little") | 1  # odd => full orbit
    return [(h1 + i * h2) % size_bits for i in range(num_hashes)]


class PositionCache:
    """Memoized checked-bit positions for one item across geometries.

    Query serving re-checks the same address against many filters that
    all share one geometry (every per-block BF and every BMT node of a
    chain), so re-deriving the SHA-256-based positions per check is pure
    waste.  One cache instance per (query, item) computes each distinct
    ``(num_hashes, size_bits)`` pair once and replays the list from then
    on.  Keying on the *filter's own* geometry (not an assumed one)
    keeps the semantics of :meth:`BloomFilter.might_contain` intact even
    for adversarial filters with unexpected sizes.
    """

    __slots__ = ("item", "_cache", "_masks")

    def __init__(self, item: bytes) -> None:
        self.item = item
        self._cache: "dict[tuple[int, int], List[int]]" = {}
        self._masks: "dict[tuple[int, int], int]" = {}

    def positions(self, num_hashes: int, size_bits: int) -> List[int]:
        key = (num_hashes, size_bits)
        cached = self._cache.get(key)
        if cached is None:
            cached = bloom_positions(self.item, num_hashes, size_bits)
            self._cache[key] = cached
        return cached

    def mask(self, num_hashes: int, size_bits: int) -> int:
        """The positions folded into the int mask ``covers_mask`` takes."""
        key = (num_hashes, size_bits)
        cached = self._masks.get(key)
        if cached is None:
            cached = BitArray.positions_mask(
                self.positions(num_hashes, size_bits)
            )
            self._masks[key] = cached
        return cached

    def check_fails(self, bf: "BloomFilter") -> bool:
        """Equivalent to ``bf.might_contain(item)`` without re-hashing."""
        return bf.bits.covers_mask(self.mask(bf.num_hashes, bf.size_bits))


class BloomFilter:
    """A fixed-geometry Bloom filter over byte-string items.

    Geometry (``size_bits``, ``num_hashes``) is part of a chain's consensus
    parameters: every per-block filter and every BMT node must agree on it,
    otherwise unions (Eq 3) and position checks would be meaningless.
    """

    __slots__ = ("bits", "num_hashes", "num_items")

    def __init__(self, size_bits: int, num_hashes: int) -> None:
        self.bits = BitArray(size_bits)
        if num_hashes <= 0:
            raise ValueError(f"need at least one hash function, got {num_hashes}")
        self.num_hashes = num_hashes
        #: Count of ``add`` calls (duplicates included); diagnostic only,
        #: not serialized and not part of any commitment.
        self.num_items = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_items(
        cls, items: Iterable[bytes], size_bits: int, num_hashes: int
    ) -> "BloomFilter":
        bloom = cls(size_bits, num_hashes)
        for item in items:
            bloom.add(item)
        return bloom

    @classmethod
    def from_bits(cls, bits: BitArray, num_hashes: int) -> "BloomFilter":
        bloom = cls(bits.size_bits, num_hashes)
        bloom.bits = bits.copy()
        return bloom

    @classmethod
    def from_bytes(cls, payload: bytes, num_hashes: int) -> "BloomFilter":
        if not payload:
            raise EncodingError("empty Bloom filter payload")
        bloom = cls(len(payload) * 8, num_hashes)
        bloom.bits = BitArray.from_bytes(payload)
        return bloom

    # -- core operations ---------------------------------------------------

    @property
    def size_bits(self) -> int:
        return self.bits.size_bits

    @property
    def size_bytes(self) -> int:
        return self.bits.size_bytes

    def positions(self, item: bytes) -> List[int]:
        return bloom_positions(item, self.num_hashes, self.size_bits)

    def add(self, item: bytes) -> None:
        for position in self.positions(item):
            self.bits.set(position)
        self.num_items += 1

    def might_contain(self, item: bytes) -> bool:
        """False ⇒ definitely absent; True ⇒ present or a false positive."""
        return self.bits.covers_positions(self.positions(item))

    def __contains__(self, item: bytes) -> bool:
        return self.might_contain(item)

    def check_fails(self, item: bytes) -> bool:
        """The paper's "failed check": every checked bit position is 1."""
        return self.might_contain(item)

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise-OR merge (Eq 3); geometries must match."""
        self._check_compatible(other)
        merged = BloomFilter(self.size_bits, self.num_hashes)
        merged.bits = self.bits | other.bits
        merged.num_items = self.num_items + other.num_items
        return merged

    def __or__(self, other: "BloomFilter") -> "BloomFilter":
        return self.union(other)

    def fill_ratio(self) -> float:
        return self.bits.fill_ratio()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return self.num_hashes == other.num_hashes and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.num_hashes, self.bits))

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.size_bits}, k={self.num_hashes}, "
            f"fill={self.fill_ratio():.3f})"
        )

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Raw bit-vector bytes; geometry travels in the chain parameters."""
        return self.bits.to_bytes()

    # -- internals ---------------------------------------------------------

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self.size_bits != other.size_bits or self.num_hashes != other.num_hashes:
            raise ValueError(
                "incompatible Bloom filters: "
                f"({self.size_bits}, k={self.num_hashes}) vs "
                f"({other.size_bits}, k={other.num_hashes})"
            )
