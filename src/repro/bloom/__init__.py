"""Bloom filters and the bit vectors backing them (paper §III-B1)."""

from repro.bloom.bitarray import BitArray
from repro.bloom.filter import BloomFilter, PositionCache, bloom_positions
from repro.bloom.params import (
    fill_ratio_estimate,
    false_positive_rate,
    optimal_num_hashes,
    expected_fpm_count,
)

__all__ = [
    "BitArray",
    "BloomFilter",
    "bloom_positions",
    "PositionCache",
    "fill_ratio_estimate",
    "false_positive_rate",
    "optimal_num_hashes",
    "expected_fpm_count",
]
