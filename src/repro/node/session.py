"""A resilient multi-peer query session for the light node.

``LightNode.query_history_any`` is one-shot: it walks the peer list once
and gives up.  Production light clients (vChain's, Dietcoin's, and the
ROADMAP's millions-of-users north star) face peers that flap, links that
drop, and adversaries mixed in with the honest majority — and must keep
the paper's §V guarantee intact: a fault can *deny* an answer (typed
error) but never *deceive* (wrong history).

:class:`QuerySession` adds the operating envelope on top of the existing
verification machinery, entirely client-local (no wire change):

* per-request timeouts on a :class:`~repro.node.transport.SimulatedClock`;
* bounded retries with exponential backoff + seeded jitter;
* peer health scoring and quarantine — a *verification* failure (the
  peer produced decodable bytes whose proof is wrong: malice, since an
  honest peer's answer always verifies) is a **permanent ban**, while a
  *transport/decode* failure (crash, drop, corruption: consistent with
  an honest peer behind a bad link) is a **decaying penalty**;
* failover that re-uses partial progress (header sync keeps whatever
  prefix already validated; the next peer continues from the new tip);
* optional graceful degradation: :meth:`QuerySession.query_partial`
  bisects the requested range over the surviving peers and returns a
  :class:`PartialHistory` covering the verified sub-ranges with an
  explicit ``uncovered_ranges`` report;
* reorg awareness: :meth:`QuerySession.sync_with_reorg` follows the
  longest fork across the peer set — a peer whose divergent chain is
  *not* longer raises the benign :class:`StaleChainError` (lagging, not
  lying → no ban) — and, with ``track_queries=True``, automatically
  re-queries every previously answered request whose range the reorg
  replaced, since those verified histories were proven against headers
  that are no longer the canonical chain.

The *streaming* counterpart lives in :mod:`repro.node.subscribe`:
:class:`~repro.node.subscribe.SubscriptionSession` applies the same
deny-but-never-deceive discipline (and this module's
:class:`RetryPolicy` backoff) to server-pushed watch updates, where the
re-query-on-reorg semantics above become pushed retraction frames.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    BackpressureError,
    EncodingError,
    NoHonestPeerError,
    PeerQuarantinedError,
    QueryError,
    ReproError,
    RetryExhaustedError,
    SessionTimeoutError,
    StaleChainError,
    TransportError,
    VerificationError,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.transport import (
    InProcessTransport,
    SimulatedClock,
    TransportStats,
)
from repro.query.verifier import VerifiedHistory

TransportFactory = Callable[[], object]


class RetryPolicy:
    """Exponential backoff with jitter, in simulated seconds.

    ``max_rounds`` bounds how many times the session sweeps the peer
    list; the sleep before round *r* is
    ``min(base * multiplier**(r-1), max_delay) * (1 + jitter*U[-1,1])``.
    """

    __slots__ = ("max_rounds", "base_delay", "multiplier", "max_delay", "jitter")

    def __init__(
        self,
        max_rounds: int = 3,
        base_delay: float = 0.5,
        multiplier: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.25,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"need at least one round, got {max_rounds}")
        if base_delay < 0 or max_delay < 0 or multiplier < 1 or not (
            0.0 <= jitter <= 1.0
        ):
            raise ValueError("invalid retry policy parameters")
        self.max_rounds = max_rounds
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    def backoff_seconds(self, round_index: int, rng: random.Random) -> float:
        """Sleep before retry round ``round_index`` (1-based)."""
        raw = min(
            self.base_delay * self.multiplier ** (round_index - 1),
            self.max_delay,
        )
        return max(0.0, raw * (1.0 + self.jitter * rng.uniform(-1.0, 1.0)))

    @classmethod
    def no_retries(cls) -> "RetryPolicy":
        return cls(max_rounds=1)


class PeerStats:
    """Per-peer session accounting, exported by :meth:`SessionStats.as_dict`."""

    __slots__ = (
        "attempts",
        "successes",
        "transport_failures",
        "verification_failures",
        "timeouts",
        "overloads",
        "transport",
    )

    def __init__(self) -> None:
        self.attempts = 0
        self.successes = 0
        self.transport_failures = 0
        self.verification_failures = 0
        self.timeouts = 0
        self.overloads = 0
        self.transport = TransportStats()

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "transport_failures": self.transport_failures,
            "verification_failures": self.verification_failures,
            "timeouts": self.timeouts,
            "overloads": self.overloads,
            **self.transport.as_dict(),
        }


class Peer:
    """A full node plus the session's view of its health.

    ``transport_factory`` builds a fresh transport per attempt (a
    :class:`FaultyTransport` factory puts the link under chaos; its
    shared :class:`FaultSchedule` keeps the script position across
    reconnects).  Health is a score in ``(0, 1]``: transport failures
    halve it and quarantine the peer for an exponentially growing,
    clock-based interval; successes restore it.  A verification failure
    sets :attr:`banned` — permanently.
    """

    __slots__ = (
        "label",
        "node",
        "transport_factory",
        "score",
        "banned",
        "ban_reason",
        "quarantined_until",
        "overloaded_until",
        "consecutive_failures",
        "stats",
    )

    def __init__(
        self,
        label: str,
        node: FullNode,
        transport_factory: Optional[TransportFactory] = None,
    ) -> None:
        self.label = label
        self.node = node
        self.transport_factory = transport_factory or InProcessTransport
        self.score = 1.0
        self.banned = False
        self.ban_reason: Optional[str] = None
        self.quarantined_until = 0.0
        #: Flat hold-off from a §11 backpressure frame — deliberately a
        #: separate field from ``quarantined_until`` so overload never
        #: feeds the quarantine ladder (or the ban logic).
        self.overloaded_until = 0.0
        self.consecutive_failures = 0
        self.stats = PeerStats()

    def make_transport(self):
        return self.transport_factory()

    def available(self, now: float) -> bool:
        return (
            not self.banned
            and now >= self.quarantined_until
            and now >= self.overloaded_until
        )

    def release_at(self) -> float:
        """Earliest clock time this (unbanned) peer becomes usable."""
        return max(self.quarantined_until, self.overloaded_until)

    def quarantine_error(self, now: float) -> PeerQuarantinedError:
        return PeerQuarantinedError(
            self.label,
            permanent=self.banned,
            until_seconds=None if self.banned else self.quarantined_until,
            reason=self.ban_reason,
        )

    def record_success(self) -> None:
        self.stats.attempts += 1
        self.stats.successes += 1
        self.consecutive_failures = 0
        self.score = min(1.0, self.score * 1.5 + 0.1)

    def record_transport_failure(
        self, error: Exception, now: float, quarantine_base: float
    ) -> None:
        self.stats.attempts += 1
        self.stats.transport_failures += 1
        from repro.errors import QueryTimeoutError

        if isinstance(error, QueryTimeoutError):
            self.stats.timeouts += 1
        self.consecutive_failures += 1
        self.score = max(0.01, self.score * 0.5)
        # Clamp the exponent: a peer that fails thousands of times in a
        # row (easy against a dead TCP endpoint) must not overflow the
        # float power — past 2**64 the quarantine is effectively forever
        # anyway.
        self.quarantined_until = now + quarantine_base * (
            2.0 ** min(self.consecutive_failures - 1, 64)
        )

    def record_overload(
        self, error: BackpressureError, now: float, default_wait: float = 0.05
    ) -> None:
        """An overloaded-but-honest peer said "come back later".

        Overload is traffic, not malice (ISSUE: never quarantine or ban
        for it): the peer is held out flat for the server's retry-after
        hint — no score halving, no consecutive-failure ladder, no
        quarantine, no ban.  ``default_wait`` covers hint-less frames.
        """
        self.stats.attempts += 1
        self.stats.overloads += 1
        wait = error.retry_after if error.retry_after else default_wait
        self.overloaded_until = max(
            self.overloaded_until, now + min(wait, 30.0)
        )

    def record_verification_failure(self, error: Exception) -> None:
        self.stats.attempts += 1
        self.stats.verification_failures += 1
        self.banned = True
        self.ban_reason = f"{type(error).__name__}: {error}"
        self.score = 0.0

    def __repr__(self) -> str:
        state = (
            "banned"
            if self.banned
            else f"score={self.score:.2f} q_until={self.quarantined_until:.2f}"
        )
        return f"Peer({self.label}, {state})"


class SessionStats:
    """Whole-session counters for availability benchmarks."""

    __slots__ = (
        "queries",
        "successes",
        "partials",
        "failures",
        "attempts",
        "retries",
        "backoff_seconds",
        "peers",
    )

    def __init__(self, peers: Sequence[Peer]) -> None:
        self.queries = 0
        self.successes = 0
        self.partials = 0
        self.failures = 0
        self.attempts = 0
        self.retries = 0
        self.backoff_seconds = 0.0
        self.peers = {peer.label: peer.stats for peer in peers}

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "successes": self.successes,
            "partials": self.partials,
            "failures": self.failures,
            "attempts": self.attempts,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "peers": {
                label: stats.as_dict() for label, stats in self.peers.items()
            },
        }


class PartialHistory:
    """Graceful-degradation result: verified coverage of a sub-range.

    Every transaction here passed the full §V verification for its
    sub-range — the degradation is *coverage*, never *trust*.
    ``uncovered_ranges`` lists the height intervals (inclusive) no peer
    could serve verifiably; an empty list means the union of sub-range
    proofs covers the whole request.
    """

    __slots__ = (
        "address",
        "first_height",
        "last_height",
        "transactions",
        "covered_ranges",
        "uncovered_ranges",
    )

    def __init__(
        self,
        address: str,
        first_height: int,
        last_height: int,
        transactions,
        covered_ranges: List[Tuple[int, int]],
        uncovered_ranges: List[Tuple[int, int]],
    ) -> None:
        self.address = address
        self.first_height = first_height
        self.last_height = last_height
        #: ``(height, transaction)`` ascending, from verified sub-proofs.
        self.transactions = transactions
        self.covered_ranges = covered_ranges
        self.uncovered_ranges = uncovered_ranges

    @property
    def is_complete(self) -> bool:
        return not self.uncovered_ranges

    def coverage_fraction(self) -> float:
        total = self.last_height - self.first_height + 1
        covered = sum(hi - lo + 1 for lo, hi in self.covered_ranges)
        return covered / total if total else 1.0

    def partial_balance(self) -> int:
        """Equation-1 balance over the *covered* sub-ranges only."""
        from repro.chain.utxo import balance_from_history

        return balance_from_history(
            self.address, (tx for _height, tx in self.transactions)
        )

    def apply_reorg(self, fork_height: int) -> "PartialHistory":
        """Invalidate everything above ``fork_height`` after a reorg.

        A verified sub-range proof is a statement about the headers it
        was checked against; once the chain above ``fork_height`` has
        been replaced, the suffix of that statement is void.  Coverage
        is clipped to the surviving prefix, transactions proven only by
        replaced blocks are dropped, and ``uncovered_ranges`` is
        recomputed as the exact complement — so the replaced suffix
        shows up as *uncovered*, ready for re-query, rather than as
        silently stale data.  Mutates and returns ``self``.
        """
        clipped = [
            (lo, min(hi, fork_height))
            for lo, hi in self.covered_ranges
            if lo <= fork_height
        ]
        self.covered_ranges = _merge_ranges(clipped)
        self.transactions = [
            (height, tx)
            for height, tx in self.transactions
            if height <= fork_height
        ]
        uncovered: List[Tuple[int, int]] = []
        cursor = self.first_height
        for lo, hi in self.covered_ranges:
            if lo > cursor:
                uncovered.append((cursor, lo - 1))
            cursor = hi + 1
        if cursor <= self.last_height:
            uncovered.append((cursor, self.last_height))
        self.uncovered_ranges = uncovered
        return self

    def __repr__(self) -> str:
        return (
            f"PartialHistory({self.address[:12]}…, "
            f"covered={self.covered_ranges}, "
            f"uncovered={self.uncovered_ranges})"
        )


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(ranges):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


class QuerySession:
    """Drives verified queries across N peers until one answer survives.

    The loop: sweep available peers in health order; classify each
    failure (transport → decaying quarantine, verification → permanent
    ban); sleep an exponentially backed-off, jittered interval on the
    simulated clock between sweeps; stop at :class:`RetryExhaustedError`,
    :class:`NoHonestPeerError` (every peer banned — provably none served
    a verifiable answer), or :class:`SessionTimeoutError`.  Success is a
    plain :class:`VerifiedHistory`, identical to the single-peer path —
    resilience changes *when* you get the answer, never *what* verifies.
    """

    def __init__(
        self,
        light_node: LightNode,
        peers: Sequence[Union[Peer, FullNode, Tuple[str, FullNode]]],
        *,
        clock: Optional[SimulatedClock] = None,
        retry: Optional[RetryPolicy] = None,
        request_timeout: Optional[float] = 5.0,
        session_timeout: Optional[float] = None,
        quarantine_base: float = 1.0,
        seed: int = 0,
        track_queries: bool = False,
    ) -> None:
        if not peers:
            raise QueryError("a query session needs at least one peer")
        self.light_node = light_node
        self.clock = clock if clock is not None else SimulatedClock()
        self.retry = retry if retry is not None else RetryPolicy()
        self.request_timeout = request_timeout
        self.session_timeout = session_timeout
        self.quarantine_base = quarantine_base
        self._rng = random.Random(seed)
        self.peers: List[Peer] = [
            self._coerce_peer(peer, index) for index, peer in enumerate(peers)
        ]
        self.stats = SessionStats(self.peers)
        #: Label of the peer that served the last verified answer.
        self.last_winner: Optional[str] = None
        self._last_served: Optional[str] = None
        #: When true, successful ``query()`` calls are remembered so
        #: :meth:`sync_with_reorg` can re-run the ones a reorg stales.
        self.track_queries = track_queries
        # Insertion-ordered set of (address, first_height, last_height).
        self._tracked: "Dict[Tuple[str, int, Optional[int]], None]" = {}
        #: Report of the most recent reorg adopted by
        #: :meth:`sync_with_reorg` (``None`` until one happens).
        self.last_reorg: Optional[Dict[str, object]] = None

    @staticmethod
    def _coerce_peer(peer, index: int) -> Peer:
        if isinstance(peer, Peer):
            return peer
        if isinstance(peer, tuple):
            label, node = peer
            return Peer(label, node)
        return Peer(f"peer{index}", peer)

    # -- internals -------------------------------------------------------------

    def _check_session_deadline(self, started_at: float) -> None:
        if self.session_timeout is None:
            return
        elapsed = self.clock.now() - started_at
        if elapsed > self.session_timeout:
            raise SessionTimeoutError(
                "session deadline exceeded across retries",
                timeout_seconds=self.session_timeout,
                elapsed_seconds=elapsed,
            )

    def _ranked_available(self) -> List[Peer]:
        now = self.clock.now()
        usable = [peer for peer in self.peers if peer.available(now)]
        usable.sort(key=lambda peer: -peer.score)
        return usable

    def _attempt(
        self, peer: Peer, run: Callable[[Peer, object], object]
    ) -> object:
        """One attempt against one peer; classifies and records failures."""
        transport = peer.make_transport()
        if self.request_timeout is not None and hasattr(
            transport, "arm_timeout"
        ):
            transport.arm_timeout(self.request_timeout)
        self.stats.attempts += 1
        try:
            outcome = run(peer, transport)
        except VerificationError as error:
            peer.record_verification_failure(error)
            raise
        except BackpressureError as error:
            # The peer is overloaded, not broken and not lying: hold it
            # out for the retry-after hint, no quarantine-ladder step.
            peer.record_overload(error, self.clock.now())
            raise
        except (TransportError, EncodingError, QueryError) as error:
            # Consistent with an honest peer behind a bad link or a
            # crashed service: penalize and retry later, never ban.
            peer.record_transport_failure(
                error, self.clock.now(), self.quarantine_base
            )
            raise
        else:
            peer.record_success()
            self._last_served = peer.label
            return outcome
        finally:
            peer.stats.transport.merge(transport.stats)

    def _sweep_peers(
        self,
        run: Callable[[Peer, object], object],
        reasons: Dict[str, List[Exception]],
        started_at: float,
    ) -> Tuple[bool, object]:
        """One pass over the available peers; ``(served, outcome)``."""
        available = self._ranked_available()
        for peer in available:
            self._check_session_deadline(started_at)
            try:
                return True, self._attempt(peer, run)
            except ReproError as error:
                reasons.setdefault(peer.label, []).append(error)
        return False, None

    def _run_with_retries(
        self, run: Callable[[Peer, object], object], describe: str
    ) -> object:
        started_at = self.clock.now()
        reasons: Dict[str, List[Exception]] = {}
        attempts_before = self.stats.attempts
        for round_index in range(self.retry.max_rounds):
            if round_index > 0:
                pause = self.retry.backoff_seconds(round_index, self._rng)
                self.stats.backoff_seconds += pause
                self.stats.retries += 1
                self.clock.sleep(pause)
            self._check_session_deadline(started_at)
            served, outcome = self._sweep_peers(run, reasons, started_at)
            if served:
                return outcome
            if all(peer.banned for peer in self.peers):
                # Every peer proved itself malicious: the §V-complete
                # "denied but not deceived" terminal state.
                raise NoHonestPeerError(
                    {
                        label: errors[-1]
                        for label, errors in reasons.items()
                        if errors
                    }
                )
            now = self.clock.now()
            if not any(peer.available(now) for peer in self.peers):
                # Everyone usable is quarantined; wait out the earliest
                # release instead of burning a backoff round blind.
                releases = [
                    peer.release_at()
                    for peer in self.peers
                    if not peer.banned
                ]
                if releases:
                    wait = max(0.0, min(releases) - now) + 1e-9
                    self.stats.backoff_seconds += wait
                    self.clock.sleep(wait)
        for peer in self.peers:
            if not peer.available(self.clock.now()):
                reasons.setdefault(peer.label, []).append(
                    peer.quarantine_error(self.clock.now())
                )
        raise RetryExhaustedError(
            describe, self.stats.attempts - attempts_before, reasons
        )

    # -- public API -----------------------------------------------------------

    def query(
        self,
        address: str,
        first_height: int = 1,
        last_height: Optional[int] = None,
    ) -> VerifiedHistory:
        """Verified history of ``address``, surviving faults and liars.

        Sound under the paper's model: the session only ever returns a
        history that passed the full §V verification against the local
        headers, so no composition of faults and attacks can alter *what*
        is returned — only whether a typed error is raised instead.
        """
        self.stats.queries += 1

        def run(peer: Peer, transport) -> VerifiedHistory:
            return self.light_node.query_history(
                peer.node,
                address,
                transport=transport,
                first_height=first_height,
                last_height=last_height,
            )

        try:
            history = self._run_with_retries(run, address)
        except ReproError:
            self.stats.failures += 1
            raise
        self.stats.successes += 1
        self.last_winner = self._last_success_label()
        if self.track_queries:
            self._tracked[(address, first_height, last_height)] = None
        return history

    def query_partial(
        self,
        address: str,
        first_height: int = 1,
        last_height: Optional[int] = None,
        min_span: int = 1,
    ) -> PartialHistory:
        """Graceful degradation: verified coverage of whatever sub-ranges
        the surviving peers can serve.

        Bisects the requested range: a sub-range that no peer serves
        verifiably is split and retried until ``min_span`` heights, below
        which it is reported in ``uncovered_ranges``.  Sub-range answers
        are themselves fully verified (the range-query extension), so the
        merged transactions are trustworthy even when coverage is not
        complete.
        """
        self.stats.queries += 1
        if last_height is None:
            last_height = self.light_node.tip_height
        covered: List[Tuple[int, int]] = []
        uncovered: List[Tuple[int, int]] = []
        transactions: List[Tuple[int, object]] = []

        def attempt_range(lo: int, hi: int) -> None:
            def run(peer: Peer, transport):
                return self.light_node.query_history(
                    peer.node,
                    address,
                    transport=transport,
                    first_height=lo,
                    last_height=hi,
                )

            try:
                history = self._run_with_retries(run, f"{address}[{lo},{hi}]")
            except SessionTimeoutError:
                raise
            except ReproError:
                if all(peer.banned for peer in self.peers):
                    # No peer left to split against; report and stop.
                    uncovered.append((lo, hi))
                    return
                if hi - lo + 1 <= max(1, min_span):
                    uncovered.append((lo, hi))
                    return
                mid = (lo + hi) // 2
                attempt_range(lo, mid)
                attempt_range(mid + 1, hi)
            else:
                covered.append((lo, hi))
                transactions.extend(history.transactions)

        attempt_range(first_height, last_height)
        transactions.sort(key=lambda pair: pair[0])
        result = PartialHistory(
            address,
            first_height,
            last_height,
            transactions,
            _merge_ranges(covered),
            _merge_ranges(uncovered),
        )
        if result.is_complete:
            self.stats.successes += 1
            self.last_winner = self._last_success_label()
        else:
            self.stats.partials += 1
        return result

    def sync_headers(self, target_height: Optional[int] = None) -> int:
        """Header sync with failover that re-uses partial progress.

        Each peer attempt appends whatever validated prefix it manages;
        a later peer continues from the advanced tip rather than from
        scratch.  Returns headers accepted in total.  Raises
        :class:`RetryExhaustedError` if the tip never reaches
        ``target_height`` (default: the highest peer tip).
        """
        if target_height is None:
            target_height = max(peer.node.tip_height for peer in self.peers)
        accepted_total = 0
        started_at = self.clock.now()
        reasons: Dict[str, List[Exception]] = {}
        attempts_before = self.stats.attempts
        for round_index in range(self.retry.max_rounds):
            if self.light_node.tip_height >= target_height:
                return accepted_total
            if round_index > 0:
                pause = self.retry.backoff_seconds(round_index, self._rng)
                self.stats.backoff_seconds += pause
                self.stats.retries += 1
                self.clock.sleep(pause)
            for peer in self._ranked_available():
                if self.light_node.tip_height >= target_height:
                    return accepted_total
                self._check_session_deadline(started_at)

                def run(peer: Peer, transport) -> int:
                    return self.light_node.sync_headers(peer.node, transport)

                try:
                    accepted_total += self._attempt(peer, run)
                except ReproError as error:
                    reasons.setdefault(peer.label, []).append(error)
        if self.light_node.tip_height >= target_height:
            return accepted_total
        raise RetryExhaustedError(
            f"header sync to {target_height}",
            self.stats.attempts - attempts_before,
            reasons,
        )

    def sync_with_reorg(self) -> Tuple[int, int]:
        """Reorg-aware header sync across the peer set.

        Sweeps the available peers (health order) and adopts the first
        chain that extends or verifiably out-lengthens ours; returns
        ``(replaced, appended)`` from the winning peer.  Failure
        classification differs from plain queries in one deliberate way:
        :class:`StaleChainError` — the peer's divergent fork is not
        longer — is *benign* (an honest peer can simply be lagging), so
        the peer is neither banned nor quarantined; any other
        verification failure (broken linkage, foreign genesis) is malice
        and bans the peer as usual.

        When the adopted fork replaced headers and the session was built
        with ``track_queries=True``, every remembered query whose range
        overlaps the replaced suffix is re-run immediately — its old
        answer was verified against headers that no longer exist.  The
        fresh histories land in ``self.last_reorg["requeried"]``.
        """
        started_at = self.clock.now()
        reasons: Dict[str, List[Exception]] = {}
        attempts_before = self.stats.attempts
        for round_index in range(self.retry.max_rounds):
            if round_index > 0:
                pause = self.retry.backoff_seconds(round_index, self._rng)
                self.stats.backoff_seconds += pause
                self.stats.retries += 1
                self.clock.sleep(pause)
            for peer in self._ranked_available():
                self._check_session_deadline(started_at)
                transport = peer.make_transport()
                if self.request_timeout is not None and hasattr(
                    transport, "arm_timeout"
                ):
                    transport.arm_timeout(self.request_timeout)
                self.stats.attempts += 1
                old_tip = self.light_node.tip_height
                try:
                    replaced, appended = self.light_node.sync_with_reorg(
                        peer.node, transport
                    )
                except StaleChainError as error:
                    # Lagging, not lying: no score penalty, try the next.
                    peer.stats.attempts += 1
                    reasons.setdefault(peer.label, []).append(error)
                except VerificationError as error:
                    peer.record_verification_failure(error)
                    reasons.setdefault(peer.label, []).append(error)
                except BackpressureError as error:
                    # Busy, not malicious: flat hold-off, never a ladder.
                    peer.record_overload(error, self.clock.now())
                    reasons.setdefault(peer.label, []).append(error)
                except (TransportError, EncodingError, QueryError) as error:
                    peer.record_transport_failure(
                        error, self.clock.now(), self.quarantine_base
                    )
                    reasons.setdefault(peer.label, []).append(error)
                else:
                    peer.record_success()
                    self._last_served = peer.label
                    if replaced:
                        self._after_reorg(
                            old_tip - replaced, replaced, appended, old_tip
                        )
                    return replaced, appended
                finally:
                    peer.stats.transport.merge(transport.stats)
        raise RetryExhaustedError(
            "reorg-aware header sync",
            self.stats.attempts - attempts_before,
            reasons,
        )

    def _after_reorg(
        self, fork_height: int, replaced: int, appended: int, old_tip: int
    ) -> None:
        """Record the switch and re-query everything it invalidated."""
        requeried: Dict[str, VerifiedHistory] = {}
        # Publish the report before re-querying: if a re-query fails and
        # raises, the caller still sees that the reorg itself happened.
        self.last_reorg = {
            "fork_height": fork_height,
            "replaced": replaced,
            "appended": appended,
            "requeried": requeried,
        }
        if self.track_queries:
            for address, first, last in list(self._tracked):
                effective_last = last if last is not None else old_tip
                if effective_last > fork_height:
                    requeried[address] = self.query(address, first, last)

    def _last_success_label(self) -> Optional[str]:
        return self._last_served

    def __repr__(self) -> str:
        return (
            f"QuerySession({len(self.peers)} peers, "
            f"rounds={self.retry.max_rounds}, t={self.clock.now():.2f}s)"
        )


__all__ = [
    "Peer",
    "PeerStats",
    "PartialHistory",
    "QuerySession",
    "RetryPolicy",
    "SessionStats",
]
