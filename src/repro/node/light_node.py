"""The light node: headers only, trusts nothing it did not verify (§II).

A :class:`LightNode` holds the header list and the chain's
:class:`SystemConfig`.  Its ``query_history`` issues the RPC through the
byte-counting transport, deserializes the response, runs the full §V
verification, and only then exposes transactions and Equation-1 balances.
A malicious full node makes ``query_history`` raise — it can never make
it return a wrong history (that is the security claim the tests attack).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.chain.block import BlockHeader
from repro.chain.blockchain import header_storage_bytes
from repro.errors import (
    ChainError,
    NoHonestPeerError,
    ReproError,
    StaleChainError,
    VerificationError,
)
from repro.node.full_node import FullNode
from repro.node.messages import QueryRequest, QueryResponse
from repro.node.transport import InProcessTransport, TransportStats
from repro.query.config import SystemConfig
from repro.query.verifier import VerifiedHistory, verify_result


class MultiPeerReport:
    """Outcome accounting for one :meth:`LightNode.query_history_any` call.

    ``winner`` is the label of the peer whose answer verified (``None``
    when all failed), ``stats`` maps every queried peer's label to the
    :class:`TransportStats` its attempt accumulated, and ``reasons``
    records why each losing peer was rejected.
    """

    __slots__ = ("winner", "stats", "reasons")

    def __init__(self) -> None:
        self.winner: "Optional[str]" = None
        self.stats: "dict[str, TransportStats]" = {}
        self.reasons: "dict[str, Exception]" = {}

    def total_stats(self) -> TransportStats:
        """Bytes across *all* peers — what the client's link really paid."""
        total = TransportStats()
        for stats in self.stats.values():
            total.merge(stats)
        return total

    def __repr__(self) -> str:
        return (
            f"MultiPeerReport(winner={self.winner!r}, "
            f"tried={sorted(self.stats)}, "
            f"total={self.total_stats().total_bytes}B)"
        )


class LightNode:
    """Header-only client of the verifiable-query protocol."""

    def __init__(
        self, headers: Sequence[BlockHeader], config: SystemConfig
    ) -> None:
        self.headers: List[BlockHeader] = list(headers)
        self.config = config
        #: Set by :meth:`query_history_any`: winner + per-peer stats.
        self.last_query_report: "Optional[MultiPeerReport]" = None

    @classmethod
    def from_full_node(cls, full_node: FullNode) -> "LightNode":
        """Bootstrap by syncing every header from a full node."""
        return cls(full_node.system.headers(), full_node.system.config)

    @property
    def tip_height(self) -> int:
        return len(self.headers) - 1

    def storage_bytes(self) -> int:
        """The Challenge-1 metric: bytes this node must persist."""
        return header_storage_bytes(self.headers)

    def truncate_headers(self, height: int) -> int:
        """Drop every header above ``height``; returns how many fell.

        The client half of a pushed reorg retraction (PROTOCOL.md §10.4):
        the retained prefix [0..height] stays trusted, and the
        replacement branch must re-verify its linkage onto it — either
        frame by frame as push updates arrive or in bulk through
        :meth:`sync_with_reorg`.
        """
        if height < 0:
            raise ChainError(f"cannot truncate below genesis ({height})")
        if height >= self.tip_height:
            return 0
        removed = self.tip_height - height
        del self.headers[height + 1 :]
        return removed

    # -- header sync ---------------------------------------------------------

    def sync_headers(
        self,
        full_node: FullNode,
        transport: "Optional[InProcessTransport]" = None,
        delta: bool = False,
    ) -> int:
        """Fetch headers beyond the local tip, validate linkage, append.

        With ``delta=True`` the server answers with the delta-encoded
        frame (§8.2): prev-hashes are omitted on the wire and re-derived
        here by hashing, so the linkage check below still runs against
        hashes this client computed itself.

        Returns the number of headers accepted.  Raises
        :class:`VerificationError` if the served headers do not link onto
        the local chain — a full node cannot splice in a divergent
        history during sync.
        """
        from repro.node.messages import (
            DeltaHeadersRequest,
            DeltaHeadersResponse,
            HeadersRequest,
            HeadersResponse,
        )

        request_cls = DeltaHeadersRequest if delta else HeadersRequest
        response_cls = DeltaHeadersResponse if delta else HeadersResponse
        if transport is None:
            transport = InProcessTransport()
        from_height = self.tip_height + 1
        request_bytes = transport.send_to_server(
            request_cls(from_height).serialize()
        )
        response_bytes = transport.send_to_client(
            full_node.handle_headers(request_bytes)
        )
        response = response_cls.deserialize(
            response_bytes,
            self.config.header_extension_kind,
            self.config.header_bloom_bytes,
        )
        if response.from_height != from_height:
            raise VerificationError(
                f"asked for headers from {from_height}, got "
                f"{response.from_height}"
            )
        previous_id = self.headers[-1].block_id()
        for offset, header in enumerate(response.headers):
            if header.prev_hash != previous_id:
                raise VerificationError(
                    f"header at height {from_height + offset} does not "
                    "link onto the local chain"
                )
            previous_id = header.block_id()
        self.headers.extend(response.headers)
        return len(response.headers)

    # -- querying ----------------------------------------------------------

    def query_history(
        self,
        full_node: FullNode,
        address: str,
        transport: Optional[InProcessTransport] = None,
        first_height: int = 1,
        last_height: Optional[int] = None,
    ) -> VerifiedHistory:
        """Request, receive, and *verify* the history of ``address``.

        ``first_height``/``last_height`` restrict the query to a height
        range (the range-query extension); by default the whole chain is
        covered.  Raises :class:`VerificationError` (or a subclass) if
        the full node's answer is incorrect or incomplete in any way.
        """
        if transport is None:
            transport = InProcessTransport()
        request_bytes = transport.send_to_server(
            QueryRequest(address, first_height, last_height or 0).serialize()
        )
        response_bytes = transport.send_to_client(
            full_node.handle_query(request_bytes)
        )
        response = QueryResponse.deserialize(response_bytes, self.config)
        expected_range = (
            first_height,
            last_height if last_height is not None else self.tip_height,
        )
        return self.verify(response.result, address, expected_range)

    def verify(
        self,
        result,
        address: str,
        expected_range: "Optional[Tuple[int, int]]" = None,
    ) -> VerifiedHistory:
        """Verify an already-received result against local headers."""
        return verify_result(
            result, self.headers, self.config, address, expected_range
        )

    def sync_with_reorg(
        self,
        full_node: FullNode,
        transport: "Optional[InProcessTransport]" = None,
    ) -> "Tuple[int, int]":
        """Sync headers, switching to the peer's fork when it is longer.

        Returns ``(replaced, appended)``.  The adoption rule is
        longest-chain with height as the work proxy (this simulation has
        no proof-of-work; see DESIGN.md).  The peer's chain must share
        our genesis and be internally linked, otherwise nothing changes
        and :class:`VerificationError` is raised.  A peer offering a
        fork *shorter or equal* to ours is refused with
        :class:`StaleChainError` (a benign subclass — lagging, not
        lying; no replacement without more work).
        """
        from repro.errors import QueryError
        from repro.node.messages import HeadersRequest, HeadersResponse

        try:
            return 0, self.sync_headers(full_node, transport)
        except (VerificationError, QueryError):
            # Divergent chain, or the peer does not even have our heights
            # (it may be on a shorter fork): fall through to comparison.
            pass

        if transport is None:
            transport = InProcessTransport()
        request_bytes = transport.send_to_server(
            HeadersRequest(0).serialize()
        )
        response_bytes = transport.send_to_client(
            full_node.handle_headers(request_bytes)
        )
        response = HeadersResponse.deserialize(
            response_bytes,
            self.config.header_extension_kind,
            self.config.header_bloom_bytes,
        )
        remote = response.headers
        if len(remote) <= len(self.headers):
            raise StaleChainError(
                "peer's divergent chain is not longer than ours; refusing "
                "the reorg"
            )
        if not remote or remote[0].block_id() != self.headers[0].block_id():
            raise VerificationError("peer chain has a different genesis")
        previous_id = remote[0].block_id()
        for height, header in enumerate(remote[1:], start=1):
            if header.prev_hash != previous_id:
                raise VerificationError(
                    f"peer chain breaks linkage at height {height}"
                )
            previous_id = header.block_id()

        fork_height = 0
        limit = min(len(remote), len(self.headers))
        while (
            fork_height + 1 < limit
            and remote[fork_height + 1].block_id()
            == self.headers[fork_height + 1].block_id()
        ):
            fork_height += 1
        replaced = len(self.headers) - (fork_height + 1)
        appended = len(remote) - (fork_height + 1)
        self.headers = list(remote)
        return replaced, appended

    def query_history_any(
        self,
        full_nodes: "Sequence[FullNode]",
        address: str,
        first_height: int = 1,
        last_height: Optional[int] = None,
        transports: "Optional[Sequence[InProcessTransport]]" = None,
        labels: "Optional[Sequence[str]]" = None,
    ) -> VerifiedHistory:
        """Query several peers; accept the first verifiable answer.

        The security model makes this sound with a single honest peer
        among arbitrarily many malicious ones: an answer either verifies
        (and is then the unique complete history — two verifiable answers
        cannot disagree) or is rejected.  Raises
        :class:`NoHonestPeerError` carrying every peer's rejection reason
        when *all* answers fail.

        ``transports`` optionally supplies one transport per peer (e.g.
        fault-injecting wrappers), and ``labels`` names the peers in
        reports and error reasons (default ``peer0..N``).  After every
        call — success or failure — :attr:`last_query_report` holds a
        :class:`MultiPeerReport` with the winning peer's label and the
        per-peer byte accounting, so multi-peer experiments no longer
        lose the losers' traffic.
        """
        if not full_nodes:
            raise VerificationError("no peers to query")
        if transports is not None and len(transports) != len(full_nodes):
            raise VerificationError(
                f"{len(transports)} transports for {len(full_nodes)} peers"
            )
        if labels is not None:
            if len(labels) != len(full_nodes):
                raise VerificationError(
                    f"{len(labels)} labels for {len(full_nodes)} peers"
                )
            if len(set(labels)) != len(labels):
                raise VerificationError("peer labels must be distinct")
        report = MultiPeerReport()
        self.last_query_report = report
        for index, full_node in enumerate(full_nodes):
            label = labels[index] if labels is not None else f"peer{index}"
            transport = (
                transports[index]
                if transports is not None
                else InProcessTransport()
            )
            try:
                history = self.query_history(
                    full_node,
                    address,
                    transport=transport,
                    first_height=first_height,
                    last_height=last_height,
                )
            except ReproError as error:
                report.reasons[label] = error
                report.stats[label] = transport.stats
            else:
                report.winner = label
                report.stats[label] = transport.stats
                return history
        raise NoHonestPeerError(report.reasons)

    def query_batch(
        self,
        full_node: FullNode,
        addresses: "Sequence[str]",
        transport: Optional[InProcessTransport] = None,
        first_height: int = 1,
        last_height: Optional[int] = None,
        aggregated: bool = False,
    ) -> "dict[str, VerifiedHistory]":
        """Request and verify histories for several addresses at once.

        On strawman-family systems the per-block filters ship once for
        the whole batch — the amortization measured by
        ``bench_ablation_batch.py``.  With ``aggregated=True`` the server
        responds in the blob-table encoding (§8.1); the decoded batch
        goes through the identical ``verify_batch_result`` path.
        """
        from repro.node.messages import (
            AggregatedBatchRequest,
            AggregatedBatchResponse,
            BatchQueryRequest,
            BatchQueryResponse,
        )
        from repro.query.batch import verify_batch_result

        request_cls = AggregatedBatchRequest if aggregated else BatchQueryRequest
        response_cls = (
            AggregatedBatchResponse if aggregated else BatchQueryResponse
        )
        if transport is None:
            transport = InProcessTransport()
        request_bytes = transport.send_to_server(
            request_cls(
                list(addresses), first_height, last_height or 0
            ).serialize()
        )
        response_bytes = transport.send_to_client(
            full_node.handle_batch_query(request_bytes)
        )
        response = response_cls.deserialize(response_bytes, self.config)
        expected_range = (
            first_height,
            last_height if last_height is not None else self.tip_height,
        )
        return verify_batch_result(
            response.batch,
            self.headers,
            self.config,
            list(addresses),
            expected_range,
        )

    def query_balance(
        self,
        full_node: FullNode,
        address: str,
        transport: Optional[InProcessTransport] = None,
    ) -> int:
        """Verified Equation-1 balance (the paper's coffee-shop scenario)."""
        return self.query_history(full_node, address, transport).balance()

    def __repr__(self) -> str:
        return (
            f"LightNode(tip={self.tip_height}, "
            f"system={self.config.kind.value})"
        )


__all__ = ["LightNode", "MultiPeerReport", "VerificationError"]
