"""Admission control for the query server: rate limits, fair
scheduling, and watermark load shedding (DESIGN.md §11).

The worker pool of :class:`~repro.node.server.QueryServer` used to have
one defense against a traffic burst — a typed rejection once its single
FIFO queue filled — which means a Zipf burst or one greedy client
collapses latency for *everyone* before the bound even trips.  This
module is the traffic-management layer in front of the pool, three
mechanisms composed in admission order:

1. **watermark load shedding** (:class:`WatermarkShedder`) — queue
   depth is watched against three watermarks and degrades in stages:
   ``shed_batch`` refuses batch-class work, ``shed_low`` refuses
   everything but interactive queries, ``shed_all`` refuses anything
   that would queue (pings are answered inline at the transport and
   never reach admission).  Each transition emits one structured log
   line; hysteresis (exit below ``clear_fraction`` of the entry
   watermark) keeps the state machine from flapping at a boundary.
2. **per-client token buckets** (:class:`RateLimiter`) — each client
   identity (connection peer, or the id a §11 hello frame declared)
   draws from its own bucket; an empty bucket refuses with
   :class:`~repro.errors.RateLimitedError` carrying the exact
   ``retry_after`` at which the bucket refills.  One hot client runs
   out of tokens; everyone else never notices.
3. **weighted-fair scheduling** (:class:`FairScheduler`) — admitted
   requests land in per-priority deques drained by deficit-weighted
   round-robin, so a backlog of batch work cannot starve interactive
   queries even below the watermarks.

Everything refused here is refused with a typed
:class:`~repro.errors.BackpressureError` subclass carrying a
``retry_after`` hint — a *benign* signal the client-side health model
treats as "busy, come back", never as malice (PROTOCOL.md §11.4).
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    QueryError,
    RateLimitedError,
    RequestShedError,
    ServerOverloadedError,
)
from repro.node import messages as _messages

logger = logging.getLogger("repro.node.admission")

# -- priority classes --------------------------------------------------------

#: Latency-sensitive single-address lookups (a wallet's balance check).
PRIO_INTERACTIVE = 0
#: Header sync — cheap, keeps light clients converging.
PRIO_SYNC = 1
#: Multi-address batch queries — throughput work, shed first.
PRIO_BATCH = 2
#: Subscription backfill / historical catch-up range reads: the client
#: already holds a verified prefix and can always retry the pull path.
PRIO_BACKFILL = 3

PRIORITY_NAMES = ("interactive", "sync", "batch", "backfill")

#: Default weighted-fair drain ratio (indexed by priority class).
DEFAULT_WEIGHTS = (8, 4, 2, 1)

#: Classes refused at each shed stage (see WatermarkShedder).
_SHED_BATCH_CLASSES = frozenset({PRIO_BATCH, PRIO_BACKFILL})
_SHED_LOW_CLASSES = frozenset({PRIO_BATCH, PRIO_BACKFILL, PRIO_SYNC})
_SHED_ALL_CLASSES = frozenset(
    {PRIO_INTERACTIVE, PRIO_SYNC, PRIO_BATCH, PRIO_BACKFILL}
)


def classify(payload: bytes) -> int:
    """Priority class of one request frame (scheduling hint only).

    Tags map directly except single queries: an open-ended query
    (``last_height == 0`` — "up to your tip", the interactive wallet
    shape) is interactive, while an explicitly bounded historical range
    is backfill-class — that is the frame a subscription gap-heal or a
    catch-up re-sync sends, and it is always retryable against the
    verified pull path.  Misclassification can only move a request
    between latency classes; it never changes what verifies.
    """
    tag = payload[0]
    if tag == _messages._MSG_QUERY_REQUEST:
        try:
            request = _messages.QueryRequest.deserialize(payload)
        except Exception:  # noqa: BLE001 - malformed: let the worker reject
            return PRIO_INTERACTIVE
        return PRIO_INTERACTIVE if request.last_height == 0 else PRIO_BACKFILL
    if tag in (
        _messages._MSG_HEADERS_REQUEST,
        _messages._MSG_DELTA_HEADERS_REQUEST,
    ):
        return PRIO_SYNC
    if tag in (_messages._MSG_BATCH_REQUEST, _messages._MSG_AGG_BATCH_REQUEST):
        return PRIO_BATCH
    return PRIO_INTERACTIVE


# -- token buckets -----------------------------------------------------------


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"bucket needs positive rate/burst, got "
                             f"({rate}, {burst})")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def take(self, now: float, cost: float = 1.0) -> Tuple[bool, float]:
        """Try to spend ``cost`` tokens; ``(ok, retry_after_seconds)``."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        return False, (cost - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with a bounded identity table.

    ``rate``/``burst`` apply to every client; the table is an LRU
    bounded at ``max_clients`` so a hostile peer cycling identities
    cannot grow server memory — evicting an idle identity merely hands
    it a fresh (full) bucket next time, which is the conservative
    failure direction for a limiter.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        max_clients: int = 4096,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if max_clients < 1:
            raise ValueError(f"need at least one client slot, {max_clients}")
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, 2.0 * rate)
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.rejected = 0
        self.evicted_clients = 0

    def check(self, client: str) -> None:
        """Admit or raise :class:`RateLimitedError` for one request."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
                if len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
                    self.evicted_clients += 1
            else:
                self._buckets.move_to_end(client)
            ok, retry_after = bucket.take(now)
            if ok:
                return
            self.rejected += 1
        raise RateLimitedError(client, retry_after=retry_after)

    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)


# -- watermark state machine -------------------------------------------------

STATE_NORMAL = "normal"
STATE_SHED_BATCH = "shed_batch"
STATE_SHED_LOW = "shed_low"
STATE_SHED_ALL = "shed_all"

_STATES = (STATE_NORMAL, STATE_SHED_BATCH, STATE_SHED_LOW, STATE_SHED_ALL)


class WatermarkShedder:
    """Queue-depth watermarks mapped to staged shed states.

    ``watermarks`` are the *entry* depths for ``shed_batch`` /
    ``shed_low`` / ``shed_all`` (strictly increasing).  A state is left
    only once depth falls below ``clear_fraction`` of its entry
    watermark — the hysteresis that keeps a queue oscillating around a
    boundary from emitting a transition per request.  Not thread-safe on
    its own; the admission controller calls it under its queue lock.
    """

    def __init__(
        self,
        watermarks: Tuple[int, int, int],
        *,
        clear_fraction: float = 0.75,
    ) -> None:
        low, high, critical = watermarks
        if not (0 < low < high < critical):
            raise ValueError(
                f"watermarks must be strictly increasing and positive, "
                f"got {watermarks}"
            )
        if not (0.0 < clear_fraction <= 1.0):
            raise ValueError(f"bad clear fraction {clear_fraction}")
        self.watermarks = (low, high, critical)
        self.clear_fraction = clear_fraction
        self.state = STATE_NORMAL
        self.transitions = 0
        #: state name -> requests refused while in it.
        self.shed_by_state: Dict[str, int] = {
            STATE_SHED_BATCH: 0,
            STATE_SHED_LOW: 0,
            STATE_SHED_ALL: 0,
        }

    def _target_state(self, depth: int) -> str:
        low, high, critical = self.watermarks
        # Escalate at the entry watermark; de-escalate only below the
        # clear point of the state being left.
        index = _STATES.index(self.state)
        entry = [low, high, critical]
        up = 0
        for position, mark in enumerate(entry, start=1):
            if depth >= mark:
                up = position
        if up > index:
            return _STATES[up]
        # Possible de-escalation: walk down while depth clears the
        # current state's entry watermark.
        while index > 0 and depth < entry[index - 1] * self.clear_fraction:
            index -= 1
        return _STATES[index]

    def observe(self, depth: int) -> str:
        """Update the state for the current queue depth; returns it."""
        target = self._target_state(depth)
        if target != self.state:
            previous, self.state = self.state, target
            self.transitions += 1
            logger.warning(
                "admission state transition previous=%s state=%s depth=%d "
                "watermarks=%s",
                previous,
                target,
                depth,
                self.watermarks,
            )
        return self.state

    def refuses(self, priority: int) -> bool:
        """Does the *current* state refuse this priority class?"""
        if self.state == STATE_SHED_BATCH:
            return priority in _SHED_BATCH_CLASSES
        if self.state == STATE_SHED_LOW:
            return priority in _SHED_LOW_CLASSES
        if self.state == STATE_SHED_ALL:
            return priority in _SHED_ALL_CLASSES
        return False


# -- weighted-fair queue -----------------------------------------------------


class FairScheduler:
    """Per-class deques drained by deficit-weighted round-robin.

    Each class holds a credit counter; a pop scans classes from the
    current cursor, spending one credit per dequeue, and refills every
    counter from ``weights`` when all non-empty classes are out of
    credit.  Over any busy interval class *i* receives ``weights[i]``
    of every ``sum(weights)`` dequeues — batch backlog can delay an
    interactive query by at most one round, never starve it.  Not
    thread-safe on its own (the controller locks).
    """

    def __init__(self, weights: Sequence[int] = DEFAULT_WEIGHTS) -> None:
        if len(weights) != len(PRIORITY_NAMES) or any(
            weight < 1 for weight in weights
        ):
            raise ValueError(f"need {len(PRIORITY_NAMES)} positive weights, "
                             f"got {weights}")
        self.weights = tuple(int(weight) for weight in weights)
        self._queues: List[deque] = [deque() for _ in PRIORITY_NAMES]
        self._credits: List[int] = list(self.weights)
        self._cursor = 0

    def push(self, priority: int, item: object) -> None:
        self._queues[priority].append(item)

    def depth(self) -> int:
        return sum(len(q) for q in self._queues)

    def depths(self) -> Tuple[int, ...]:
        return tuple(len(q) for q in self._queues)

    def pop(self) -> Optional[Tuple[int, object]]:
        """Next ``(priority, item)`` under weighted fairness, or None."""
        if not any(self._queues):
            return None
        classes = len(self._queues)
        for _refill in range(2):
            for step in range(classes):
                index = (self._cursor + step) % classes
                if self._queues[index] and self._credits[index] > 0:
                    self._credits[index] -= 1
                    self._cursor = index if self._credits[index] else index + 1
                    return index, self._queues[index].popleft()
            # Every non-empty class is out of credit: start a new round.
            self._credits = list(self.weights)
        return None  # pragma: no cover - refill guarantees a pop

    def drain(self) -> List[Tuple[int, object]]:
        """Take everything queued (close-without-drain path)."""
        items: List[Tuple[int, object]] = []
        for priority, queue in enumerate(self._queues):
            while queue:
                items.append((priority, queue.popleft()))
        return items


# -- the controller ----------------------------------------------------------


class AdmissionStats:
    """Counters exported by :meth:`AdmissionController.stats`."""

    __slots__ = (
        "admitted",
        "admitted_by_class",
        "completed_by_class",
        "shed",
        "shed_by_class",
        "ratelimited",
        "queue_full",
    )

    def __init__(self) -> None:
        self.admitted = 0
        self.admitted_by_class = [0] * len(PRIORITY_NAMES)
        self.completed_by_class = [0] * len(PRIORITY_NAMES)
        self.shed = 0
        self.shed_by_class = [0] * len(PRIORITY_NAMES)
        self.ratelimited = 0
        self.queue_full = 0


class AdmissionController:
    """Admission gate + fair queue in front of a worker pool.

    ``max_pending`` bounds the *total* queued (all classes); the shed
    watermarks default to 50% / 75% / 90% of it.  ``rate_limit`` is
    requests/second per client identity (``None`` disables the
    limiter).  ``submit`` either enqueues or raises a typed
    :class:`~repro.errors.BackpressureError`; workers block in
    :meth:`next_request` until work or :meth:`close`.

    ``retry_after`` hints: a rate-limit refusal reports the exact
    bucket refill time; shed/queue-full refusals report a depth-scaled
    estimate (half the backlog at the observed service rate, clamped to
    ``[0.05s, 5s]``) — honest "come back later", not a promise.
    """

    def __init__(
        self,
        max_pending: int = 64,
        *,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        weights: Sequence[int] = DEFAULT_WEIGHTS,
        watermarks: Optional[Tuple[int, int, int]] = None,
        clear_fraction: float = 0.75,
        max_clients: int = 4096,
        clock=time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"queue bound must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        if watermarks is None:
            low = max(1, int(max_pending * 0.50))
            high = max(low + 1, int(max_pending * 0.75))
            critical = max(high + 1, int(max_pending * 0.90))
            watermarks = (low, high, critical)
        self.shedder = WatermarkShedder(
            watermarks, clear_fraction=clear_fraction
        )
        self.limiter = (
            RateLimiter(
                rate_limit, rate_burst, max_clients=max_clients, clock=clock
            )
            if rate_limit
            else None
        )
        self.scheduler = FairScheduler(weights)
        self.stats = AdmissionStats()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False
        #: Decayed service-rate estimate (req/s) for retry-after hints.
        self._service_rate = 50.0

    # -- submission side ---------------------------------------------------

    def _retry_hint(self, depth: int) -> float:
        estimate = (depth * 0.5 + 1.0) / max(self._service_rate, 1.0)
        return min(max(estimate, 0.05), 5.0)

    def submit(self, payload: bytes, client: Optional[str] = None) -> object:
        """Admit one frame; returns an opaque queue token for the caller
        to attach its request object to — actually the priority class.

        Raises, in checking order: :class:`RateLimitedError` (the
        client spent its budget — cheapest check that protects everyone
        else), :class:`RequestShedError` (the watermark state refuses
        this class), :class:`ServerOverloadedError` (hard queue bound).
        """
        priority = classify(payload)
        if self.limiter is not None and client is not None:
            try:
                self.limiter.check(client)
            except RateLimitedError:
                with self._lock:
                    self.stats.ratelimited += 1
                raise
        with self._lock:
            if self._closed:
                raise QueryError("admission controller is closed")
            depth = self.scheduler.depth()
            self.shedder.observe(depth)
            if self.shedder.refuses(priority):
                self.stats.shed += 1
                self.stats.shed_by_class[priority] += 1
                self.shedder.shed_by_state[self.shedder.state] += 1
                state = self.shedder.state
                hint = self._retry_hint(depth)
                logger.info(
                    "request shed state=%s class=%s client=%s depth=%d "
                    "retry_after=%.3f",
                    state,
                    PRIORITY_NAMES[priority],
                    client,
                    depth,
                    hint,
                )
                raise RequestShedError(
                    PRIORITY_NAMES[priority], state, retry_after=hint
                )
            if depth >= self.max_pending:
                self.stats.queue_full += 1
                raise ServerOverloadedError(
                    depth, self.max_pending,
                    retry_after=self._retry_hint(depth),
                )
            return priority

    def enqueue(self, priority: int, item: object) -> int:
        """Queue an admitted request; returns the new total depth."""
        with self._lock:
            if self._closed:
                raise QueryError("admission controller is closed")
            self.scheduler.push(priority, item)
            self.stats.admitted += 1
            self.stats.admitted_by_class[priority] += 1
            depth = self.scheduler.depth()
            # Escalate on the post-push depth, so state reflects the
            # queue as it stands rather than lagging one submit behind.
            self.shedder.observe(depth)
            self._ready.notify()
        return depth

    # -- worker side -------------------------------------------------------

    def next_request(self) -> Optional[Tuple[int, object]]:
        """Block until a request (weighted-fair order) or close; None
        means the controller closed and the worker should exit."""
        with self._ready:
            while True:
                popped = self.scheduler.pop()
                if popped is not None:
                    # Track de-escalation as the queue drains, so the
                    # shed state clears without waiting for a submit.
                    self.shedder.observe(self.scheduler.depth())
                    return popped
                if self._closed:
                    return None
                self._ready.wait(timeout=0.1)

    def request_done(self, priority: int, service_seconds: float) -> None:
        """Worker completion hook: feeds the service-rate estimate."""
        with self._lock:
            self.stats.completed_by_class[priority] += 1
            if service_seconds > 0:
                observed = 1.0 / service_seconds
                self._service_rate += 0.05 * (observed - self._service_rate)

    # -- lifecycle / observability ----------------------------------------

    def close(self) -> List[Tuple[int, object]]:
        """Stop admitting; wake workers; return whatever was queued."""
        with self._ready:
            self._closed = True
            pending = self.scheduler.drain()
            self._ready.notify_all()
        return pending

    def depth(self) -> int:
        with self._lock:
            return self.scheduler.depth()

    def state(self) -> str:
        with self._lock:
            return self.shedder.state

    def stats_dict(self) -> "dict[str, object]":
        with self._lock:
            per_class = {
                name: {
                    "admitted": self.stats.admitted_by_class[index],
                    "completed": self.stats.completed_by_class[index],
                    "shed": self.stats.shed_by_class[index],
                    "queued": len(self.scheduler._queues[index]),
                }
                for index, name in enumerate(PRIORITY_NAMES)
            }
            report: "dict[str, object]" = {
                "state": self.shedder.state,
                "transitions": self.shedder.transitions,
                "watermarks": list(self.shedder.watermarks),
                "max_pending": self.max_pending,
                "queue_depth": self.scheduler.depth(),
                "admitted": self.stats.admitted,
                "shed": self.stats.shed,
                "shed_by_state": dict(self.shedder.shed_by_state),
                "ratelimited": self.stats.ratelimited,
                "queue_full": self.stats.queue_full,
                "classes": per_class,
            }
            if self.limiter is not None:
                report["rate_limit"] = {
                    "rate": self.limiter.rate,
                    "burst": self.limiter.burst,
                    "clients": self.limiter.clients(),
                    "rejected": self.limiter.rejected,
                    "evicted_clients": self.limiter.evicted_clients,
                }
        return report


__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "DEFAULT_WEIGHTS",
    "FairScheduler",
    "PRIO_BACKFILL",
    "PRIO_BATCH",
    "PRIO_INTERACTIVE",
    "PRIO_SYNC",
    "PRIORITY_NAMES",
    "RateLimiter",
    "STATE_NORMAL",
    "STATE_SHED_ALL",
    "STATE_SHED_BATCH",
    "STATE_SHED_LOW",
    "TokenBucket",
    "WatermarkShedder",
    "classify",
]
