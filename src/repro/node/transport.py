"""In-process transport with exact byte accounting.

The paper's experiments measure network overhead as the size of the query
result.  :class:`InProcessTransport` models the RPC link as a pair of
counted pipes: every message that crosses it adds ``len(payload)`` to the
direction's counter, so experiments read real serialized sizes rather
than estimates.  A configurable byte budget lets failure-injection tests
simulate a link that dies mid-query.

This module also hosts the optional per-frame compression layer
(PROTOCOL.md §8.3): :func:`compress_frame` / :func:`decompress_frame`
implement the self-describing compressed-frame format, and
:class:`CompressedTransport` wraps any transport so both directions are
compressed on the wire while handlers keep seeing plain frames.  Byte
counters always record what actually crossed the link — the compressed
sizes.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.errors import EncodingError, TransportError

try:  # pragma: no cover - exercised only where the library exists
    import zstandard as _zstd
except ImportError:  # the baked image ships no zstd binding
    _zstd = None

#: True when the optional zstd codec can actually be used.
HAVE_ZSTD = _zstd is not None

#: Compressed-frame wire tags.  Plain message tags occupy the low range
#: (see :mod:`repro.node.messages`); a receiver dispatches on the first
#: byte, so these must never collide with a message tag.
FRAME_ZLIB = 0x10
FRAME_ZSTD = 0x11

#: Frames smaller than this ship raw by default — the codec header plus
#: deflate overhead would only grow them.
MIN_COMPRESS_SIZE = 64

#: Default upper bound on a single frame, raw or decompressed.  Sized
#: for a phone-class light node: big enough for any legitimate response
#: at the evaluation scales, small enough that a lying length header
#: cannot balloon memory.  Configurable per transport/connection and
#: enforced symmetrically on send and receive.
DEFAULT_MAX_FRAME_BYTES = 32 << 20

_CODECS = ("zlib", "zstd")


class TransportStats:
    """Bytes and messages per direction."""

    __slots__ = (
        "bytes_to_server",
        "bytes_to_client",
        "messages_to_server",
        "messages_to_client",
        "dropped_deadlines",
    )

    def __init__(self) -> None:
        self.bytes_to_server = 0
        self.bytes_to_client = 0
        self.messages_to_server = 0
        self.messages_to_client = 0
        #: Deadlines a wrapper could not arm because the wrapped
        #: transport has no ``arm_timeout`` — a dropped deadline must be
        #: visible, never a silent no-op.
        self.dropped_deadlines = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_server + self.bytes_to_client

    def merge(self, other: "TransportStats") -> "TransportStats":
        """Accumulate ``other`` into self (per-peer session accounting)."""
        self.bytes_to_server += other.bytes_to_server
        self.bytes_to_client += other.bytes_to_client
        self.messages_to_server += other.messages_to_server
        self.messages_to_client += other.messages_to_client
        self.dropped_deadlines += other.dropped_deadlines
        return self

    def as_dict(self) -> "dict[str, int]":
        return {
            "bytes_to_server": self.bytes_to_server,
            "bytes_to_client": self.bytes_to_client,
            "messages_to_server": self.messages_to_server,
            "messages_to_client": self.messages_to_client,
            "dropped_deadlines": self.dropped_deadlines,
        }

    def __repr__(self) -> str:
        return (
            f"TransportStats(→server {self.bytes_to_server}B/"
            f"{self.messages_to_server}msg, →client {self.bytes_to_client}B/"
            f"{self.messages_to_client}msg)"
        )


class LinkModel:
    """A simple network model turning byte counts into latency estimates.

    The paper reports only result *sizes*; this model converts them into
    wall-clock transfer estimates for a parameterized link:
    ``latency = rtt * round_trips + bytes / bandwidth``.
    """

    __slots__ = ("bandwidth_bps", "rtt_seconds")

    def __init__(self, bandwidth_bps: float, rtt_seconds: float) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if rtt_seconds < 0:
            raise ValueError(f"rtt cannot be negative, got {rtt_seconds}")
        self.bandwidth_bps = bandwidth_bps
        self.rtt_seconds = rtt_seconds

    @classmethod
    def home_broadband(cls) -> "LinkModel":
        """50 Mbit/s down, 30 ms RTT — a phone-class light node."""
        return cls(bandwidth_bps=50e6 / 8, rtt_seconds=0.030)

    @classmethod
    def mobile_3g(cls) -> "LinkModel":
        """2 Mbit/s, 120 ms RTT — the pessimistic SPV scenario."""
        return cls(bandwidth_bps=2e6 / 8, rtt_seconds=0.120)

    def transfer_seconds(self, num_bytes: int, round_trips: int = 1) -> float:
        if num_bytes < 0 or round_trips < 0:
            raise ValueError("bytes and round trips must be non-negative")
        return self.rtt_seconds * round_trips + num_bytes / self.bandwidth_bps

    def estimated_latency(self, stats: "TransportStats") -> float:
        """Estimated wall-clock time for everything ``stats`` recorded,
        assuming one round trip per request/response pair."""
        round_trips = max(stats.messages_to_server, stats.messages_to_client)
        return self.transfer_seconds(stats.total_bytes, round_trips)


class SimulatedClock:
    """Deterministic time source for timeout and backoff simulation.

    Sessions and fault-injecting transports share one clock; latency is
    *charged* to it (``advance``) rather than waited out, so chaos tests
    covering hours of backoff run in milliseconds of wall time.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    # ``sleep`` is an alias so session code reads like real client code.
    sleep = advance

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.3f}s)"


class InProcessTransport:
    """A counted, optionally budgeted, request/response pipe."""

    def __init__(self, byte_budget: Optional[int] = None) -> None:
        self.stats = TransportStats()
        self._byte_budget = byte_budget
        self._closed = False

    def close(self) -> None:
        self._closed = True

    @property
    def is_closed(self) -> bool:
        return self._closed

    def _charge(self, size: int) -> int:
        """Admit up to ``size`` bytes against the budget.

        Returns the number of bytes that actually made it across before
        the link died (all of them on a healthy link).  A budget-killed
        link closes itself; the *caller* records the partial delivery so
        experiments never under-count bytes that really crossed the wire.
        """
        if self._closed:
            raise TransportError("transport is closed")
        if self._byte_budget is not None:
            room = self._byte_budget - self.stats.total_bytes
            if size > room:
                self._closed = True
                return max(room, 0)
        return size

    def send_to_server(self, payload: bytes) -> bytes:
        """Client-side send; returns the payload as the server receives it."""
        delivered = self._charge(len(payload))
        self.stats.bytes_to_server += delivered
        if delivered < len(payload):
            raise TransportError(
                f"byte budget {self._byte_budget} exhausted mid-transfer "
                f"({delivered} of {len(payload)} bytes delivered)"
            )
        self.stats.messages_to_server += 1
        return payload

    def send_to_client(self, payload: bytes) -> bytes:
        """Server-side send; returns the payload as the client receives it."""
        delivered = self._charge(len(payload))
        self.stats.bytes_to_client += delivered
        if delivered < len(payload):
            raise TransportError(
                f"byte budget {self._byte_budget} exhausted mid-transfer "
                f"({delivered} of {len(payload)} bytes delivered)"
            )
        self.stats.messages_to_client += 1
        return payload


# ---------------------------------------------------------------------------
# per-frame compression (PROTOCOL.md §8.3)


def _write_frame_varint(value: int) -> bytes:
    # Local import: encoding depends only on errors, but keeping the
    # transport importable without the crypto package is not worth a
    # second varint implementation.
    from repro.crypto.encoding import write_varint

    return write_varint(value)


def compress_frame(
    payload: bytes,
    codec: str = "zlib",
    min_size: int = MIN_COMPRESS_SIZE,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Wrap ``payload`` in a compressed frame when that actually helps.

    The result is self-describing: either the original frame (first byte
    is a plain message tag) or ``[codec tag][varint raw_len][codec
    stream]``.  Frames below ``min_size``, and frames the codec fails to
    shrink, pass through untouched — negotiation is per frame, by tag.
    A frame larger than ``max_frame_bytes`` is refused on the *send*
    side with the same typed error the receiver would raise, so a peer
    with a smaller limit is never fed a frame it must reject.
    """
    if codec not in _CODECS:
        raise EncodingError(f"unknown compression codec {codec!r}")
    if len(payload) > max_frame_bytes:
        raise EncodingError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    if len(payload) < min_size:
        return payload
    if codec == "zstd":
        if _zstd is None:
            raise EncodingError("zstd codec requested but library unavailable")
        tag, body = FRAME_ZSTD, _zstd.ZstdCompressor().compress(payload)
    else:
        tag, body = FRAME_ZLIB, zlib.compress(payload, 6)
    frame = bytes([tag]) + _write_frame_varint(len(payload)) + body
    if len(frame) >= len(payload):
        return payload
    return frame


def decompress_frame(
    frame: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Undo :func:`compress_frame`; raw frames pass through unchanged.

    Every failure mode — truncated stream, corrupt codec data, a length
    header that lies, trailing garbage, a claimed size beyond
    ``max_frame_bytes`` (the zip-bomb guard), a zstd frame without the
    library — raises :class:`EncodingError`, the same typed decode
    failure a mangled plain frame produces.
    """
    if not frame or frame[0] not in (FRAME_ZLIB, FRAME_ZSTD):
        if len(frame) > max_frame_bytes:
            raise EncodingError(
                f"frame of {len(frame)} bytes exceeds the "
                f"{max_frame_bytes}-byte limit"
            )
        return frame
    from repro.crypto.encoding import ByteReader

    reader = ByteReader(frame)
    tag = reader.bytes(1)[0]
    raw_len = reader.varint()
    if raw_len > max_frame_bytes:
        raise EncodingError(
            f"compressed frame claims {raw_len} decompressed bytes, over "
            f"the {max_frame_bytes}-byte limit"
        )
    body = reader.bytes(reader.remaining)
    if tag == FRAME_ZSTD:
        if _zstd is None:
            raise EncodingError("received a zstd frame without zstd support")
        try:
            raw = _zstd.ZstdDecompressor().decompress(
                body, max_output_size=max(raw_len, 1)
            )
        except _zstd.ZstdError as exc:  # pragma: no cover - needs zstd
            raise EncodingError(f"bad zstd frame: {exc}") from exc
    else:
        decomp = zlib.decompressobj()
        try:
            # max_length=0 would mean "unbounded" — always pass >= 1 so a
            # frame claiming 0 bytes cannot smuggle an expansion bomb.
            raw = decomp.decompress(body, max(raw_len, 1))
        except zlib.error as exc:
            raise EncodingError(f"bad zlib frame: {exc}") from exc
        if not decomp.eof or decomp.unconsumed_tail:
            raise EncodingError("zlib frame does not end where it claims to")
        if decomp.unused_data:
            raise EncodingError("trailing bytes after the zlib stream")
    if len(raw) != raw_len:
        raise EncodingError(
            f"compressed frame claims {raw_len} bytes, carries {len(raw)}"
        )
    return raw


class CompressedTransport:
    """Compress both directions of any wrapped transport, per frame.

    Duck-compatible with :class:`InProcessTransport` — handlers on either
    end keep exchanging *plain* frames while the wrapped transport (and
    its byte counters, budgets, and fault schedules) sees only the
    compressed bytes.  Wrapping a
    :class:`~repro.node.faults.FaultyTransport` therefore makes injected
    corruption and truncation land on the compressed representation,
    which is exactly how the chaos suite proves fault handling is
    codec-agnostic.
    """

    def __init__(
        self,
        inner=None,
        codec: str = "zlib",
        min_size: int = MIN_COMPRESS_SIZE,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if codec not in _CODECS:
            raise EncodingError(f"unknown compression codec {codec!r}")
        if codec == "zstd" and _zstd is None:
            raise EncodingError("zstd codec requested but library unavailable")
        if max_frame_bytes < 1:
            raise EncodingError(
                f"frame limit must be positive, got {max_frame_bytes}"
            )
        self.inner = inner if inner is not None else InProcessTransport()
        self.codec = codec
        self.min_size = min_size
        self.max_frame_bytes = max_frame_bytes

    # -- transport surface --------------------------------------------------

    @property
    def stats(self) -> TransportStats:
        return self.inner.stats

    @property
    def is_closed(self) -> bool:
        return self.inner.is_closed

    def close(self) -> None:
        self.inner.close()

    def arm_timeout(self, seconds: "Optional[float]") -> None:
        """Forward the deadline to the wrapped transport.

        When the inner transport cannot arm deadlines, the drop is
        *recorded* in :attr:`TransportStats.dropped_deadlines` rather
        than silently ignored — a socket deadline must never vanish
        because a compression wrapper sat in the middle.
        """
        arm = getattr(self.inner, "arm_timeout", None)
        if arm is not None:
            arm(seconds)
        elif seconds is not None:
            self.stats.dropped_deadlines += 1

    def send_to_server(self, payload: bytes) -> bytes:
        return decompress_frame(
            self.inner.send_to_server(
                compress_frame(
                    payload, self.codec, self.min_size, self.max_frame_bytes
                )
            ),
            self.max_frame_bytes,
        )

    def send_to_client(self, payload: bytes) -> bytes:
        return decompress_frame(
            self.inner.send_to_client(
                compress_frame(
                    payload, self.codec, self.min_size, self.max_frame_bytes
                )
            ),
            self.max_frame_bytes,
        )

    def __repr__(self) -> str:
        return f"CompressedTransport({self.codec}, inner={self.inner!r})"
