"""In-process transport with exact byte accounting.

The paper's experiments measure network overhead as the size of the query
result.  :class:`InProcessTransport` models the RPC link as a pair of
counted pipes: every message that crosses it adds ``len(payload)`` to the
direction's counter, so experiments read real serialized sizes rather
than estimates.  A configurable byte budget lets failure-injection tests
simulate a link that dies mid-query.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransportError


class TransportStats:
    """Bytes and messages per direction."""

    __slots__ = (
        "bytes_to_server",
        "bytes_to_client",
        "messages_to_server",
        "messages_to_client",
    )

    def __init__(self) -> None:
        self.bytes_to_server = 0
        self.bytes_to_client = 0
        self.messages_to_server = 0
        self.messages_to_client = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_server + self.bytes_to_client

    def merge(self, other: "TransportStats") -> "TransportStats":
        """Accumulate ``other`` into self (per-peer session accounting)."""
        self.bytes_to_server += other.bytes_to_server
        self.bytes_to_client += other.bytes_to_client
        self.messages_to_server += other.messages_to_server
        self.messages_to_client += other.messages_to_client
        return self

    def as_dict(self) -> "dict[str, int]":
        return {
            "bytes_to_server": self.bytes_to_server,
            "bytes_to_client": self.bytes_to_client,
            "messages_to_server": self.messages_to_server,
            "messages_to_client": self.messages_to_client,
        }

    def __repr__(self) -> str:
        return (
            f"TransportStats(→server {self.bytes_to_server}B/"
            f"{self.messages_to_server}msg, →client {self.bytes_to_client}B/"
            f"{self.messages_to_client}msg)"
        )


class LinkModel:
    """A simple network model turning byte counts into latency estimates.

    The paper reports only result *sizes*; this model converts them into
    wall-clock transfer estimates for a parameterized link:
    ``latency = rtt * round_trips + bytes / bandwidth``.
    """

    __slots__ = ("bandwidth_bps", "rtt_seconds")

    def __init__(self, bandwidth_bps: float, rtt_seconds: float) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if rtt_seconds < 0:
            raise ValueError(f"rtt cannot be negative, got {rtt_seconds}")
        self.bandwidth_bps = bandwidth_bps
        self.rtt_seconds = rtt_seconds

    @classmethod
    def home_broadband(cls) -> "LinkModel":
        """50 Mbit/s down, 30 ms RTT — a phone-class light node."""
        return cls(bandwidth_bps=50e6 / 8, rtt_seconds=0.030)

    @classmethod
    def mobile_3g(cls) -> "LinkModel":
        """2 Mbit/s, 120 ms RTT — the pessimistic SPV scenario."""
        return cls(bandwidth_bps=2e6 / 8, rtt_seconds=0.120)

    def transfer_seconds(self, num_bytes: int, round_trips: int = 1) -> float:
        if num_bytes < 0 or round_trips < 0:
            raise ValueError("bytes and round trips must be non-negative")
        return self.rtt_seconds * round_trips + num_bytes / self.bandwidth_bps

    def estimated_latency(self, stats: "TransportStats") -> float:
        """Estimated wall-clock time for everything ``stats`` recorded,
        assuming one round trip per request/response pair."""
        round_trips = max(stats.messages_to_server, stats.messages_to_client)
        return self.transfer_seconds(stats.total_bytes, round_trips)


class SimulatedClock:
    """Deterministic time source for timeout and backoff simulation.

    Sessions and fault-injecting transports share one clock; latency is
    *charged* to it (``advance``) rather than waited out, so chaos tests
    covering hours of backoff run in milliseconds of wall time.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    # ``sleep`` is an alias so session code reads like real client code.
    sleep = advance

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.3f}s)"


class InProcessTransport:
    """A counted, optionally budgeted, request/response pipe."""

    def __init__(self, byte_budget: Optional[int] = None) -> None:
        self.stats = TransportStats()
        self._byte_budget = byte_budget
        self._closed = False

    def close(self) -> None:
        self._closed = True

    @property
    def is_closed(self) -> bool:
        return self._closed

    def _charge(self, size: int) -> int:
        """Admit up to ``size`` bytes against the budget.

        Returns the number of bytes that actually made it across before
        the link died (all of them on a healthy link).  A budget-killed
        link closes itself; the *caller* records the partial delivery so
        experiments never under-count bytes that really crossed the wire.
        """
        if self._closed:
            raise TransportError("transport is closed")
        if self._byte_budget is not None:
            room = self._byte_budget - self.stats.total_bytes
            if size > room:
                self._closed = True
                return max(room, 0)
        return size

    def send_to_server(self, payload: bytes) -> bytes:
        """Client-side send; returns the payload as the server receives it."""
        delivered = self._charge(len(payload))
        self.stats.bytes_to_server += delivered
        if delivered < len(payload):
            raise TransportError(
                f"byte budget {self._byte_budget} exhausted mid-transfer "
                f"({delivered} of {len(payload)} bytes delivered)"
            )
        self.stats.messages_to_server += 1
        return payload

    def send_to_client(self, payload: bytes) -> bytes:
        """Server-side send; returns the payload as the client receives it."""
        delivered = self._charge(len(payload))
        self.stats.bytes_to_client += delivered
        if delivered < len(payload):
            raise TransportError(
                f"byte budget {self._byte_budget} exhausted mid-transfer "
                f"({delivered} of {len(payload)} bytes delivered)"
            )
        self.stats.messages_to_client += 1
        return payload
