"""Streaming watch-address subscriptions (PROTOCOL.md §10).

The pull protocol answers "what happened to these addresses?"; this
module answers it *continuously*.  A wallet-style client registers a
watch set once and the server pushes one frame per appended block:

* a block none of the watched addresses touch arrives as a compact
  **BF-negative attestation** (the per-address answers in the pushed
  batch are empty, and the authenticated filters prove that emptiness);
* a block that hits an address arrives with the full **SMT existence +
  Merkle/BMT inclusion** machinery a pull query would carry;
* a reorg arrives as a **retraction** naming the fork height, followed
  by the replacement blocks as ordinary updates whose headers must link
  onto the retained prefix.

Nothing pushed is trusted: every update passes the identical
``verify_batch_result`` path a pull query uses before it is surfaced,
so a Byzantine server can *deny* updates (which reconnect + backfill
repair through the normal verified request path) but never *deceive*.

Server side, :class:`SubscriptionRegistry` hooks the
:class:`~repro.query.builder.BuiltSystem` append/reorg listeners —
update frames are built while the write lock is still held, so the
proof's tip is exactly the pushed block's height — and fans frames out
to per-subscriber bounded outboxes.  A subscriber that stops draining
its socket overflows its outbox and is **evicted**: the queued frames
are reclaimed, one typed :class:`~repro.node.messages.SubscriptionEvicted`
frame takes their place, and the connection is closed; other
subscribers never block on the slow one (no head-of-line blocking).

Client side, :class:`SubscriptionSession` owns a dedicated watch
connection (push frames would desynchronize a pooled request/response
socket), keeps the stream alive with keepalive pings inside the
server's idle deadline, verifies every frame, and resolves every
irregularity — gaps, missed retractions, reconnects after a server
crash — through :class:`~repro.node.light_node.LightNode`'s verified
header-sync and range-query path.
"""

from __future__ import annotations

import queue
import random
import threading
import time
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chain.block import BlockHeader
from repro.crypto.encoding import ByteReader
from repro.errors import (
    BackpressureError,
    CompletenessError,
    EncodingError,
    QueryError,
    ReproError,
    StaleChainError,
    SubscriberEvictedError,
    TransportError,
    VerificationError,
)
from repro.node import messages as _messages
from repro.node.light_node import LightNode
from repro.node.netclient import (
    ClientConnection,
    ConnectionPool,
    RemoteFullNode,
    error_from_frame,
)
from repro.node.session import RetryPolicy
from repro.node.transport import DEFAULT_MAX_FRAME_BYTES
from repro.query.batch import BatchQueryResult, verify_batch_result
from repro.query.verifier import VerifiedHistory

#: ``channel.push`` outcomes (the sink protocol's return values).
PUSH_OK = "ok"
PUSH_OVERFLOW = "overflow"
PUSH_CLOSED = "closed"


# ---------------------------------------------------------------------------
# server side: the registry


class SubscriptionStats:
    """Counters for one :class:`SubscriptionRegistry`."""

    __slots__ = (
        "active",
        "subscribed_total",
        "unsubscribed",
        "evicted_slow",
        "frames_dropped",
        "channels_detached",
        "updates_built",
        "update_frames",
        "retraction_frames",
        "build_failures",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> "dict[str, int]":
        return {name: getattr(self, name) for name in self.__slots__}


class _ServerSubscription:
    __slots__ = ("sub_id", "addresses", "channel")

    def __init__(self, sub_id: int, addresses: Tuple[str, ...], channel) -> None:
        self.sub_id = sub_id
        self.addresses = addresses
        self.channel = channel


def _attach_listeners(registry: "SubscriptionRegistry", system) -> None:
    # Weakref, like FullNode's cache hookup: tests build many short-lived
    # registries over one shared system; dead ones must not keep firing.
    ref = weakref.ref(registry)

    def _on_append(ref=ref):
        live = ref()
        if live is not None:
            live._on_append()

    def _on_reorg(fork_height: int, ref=ref):
        live = ref()
        if live is not None:
            live._on_reorg(fork_height)

    system.add_append_listener(_on_append)
    system.add_reorg_listener(_on_reorg)


class SubscriptionRegistry:
    """Per-client watch sets, bounded outboxes, slow-consumer eviction.

    ``node`` is the :class:`~repro.node.full_node.FullNode` whose system
    the registry listens to; updates are built through
    ``node.answer_batch`` so adversarial node doubles tamper with pushed
    proofs exactly as they tamper with pulled ones (and the client's
    verification rejects both the same way).

    A *channel* is any object with the small sink protocol::

        push(frame: bytes) -> "ok" | "overflow" | "closed"
        evict(frame_factory: Callable[[int], bytes]) -> int

    ``push`` enqueues one frame; ``evict`` reclaims the queued frames,
    replaces them with one final frame built from the drop count, and
    returns that count.  The TCP transport's push channel implements it
    against an asyncio writer task; tests implement it with a list.

    Fan-out runs inside the system's append/reorg listeners — i.e. under
    the write lock — which is deadlock-free because the RWLock lets the
    writing thread reacquire the read side (``answer_batch`` reads), and
    it is what pins ``batch.tip_height`` to the pushed height.
    """

    def __init__(self, node, *, max_outbox: int = 256) -> None:
        if max_outbox < 2:
            # Room for at least one update plus the eviction frame's slot.
            raise ValueError(f"outbox bound must be >= 2, got {max_outbox}")
        self.node = node
        self.system = node.system
        self.config = node.system.config
        self.max_outbox = max_outbox
        self.stats = SubscriptionStats()
        self._lock = threading.Lock()
        self._subs: Dict[int, _ServerSubscription] = {}
        self._by_channel: "Dict[object, set[int]]" = {}
        self._next_id = 1
        self._tip = self.system.tip_height
        self._closed = False
        _attach_listeners(self, self.system)

    # -- registration ------------------------------------------------------

    def subscribe(
        self, addresses: Sequence[str], channel
    ) -> Tuple[int, int]:
        """Register a watch set on ``channel``; returns ``(id, tip)``.

        ``tip`` is the registry's tip at registration: every append the
        listeners see after this call will be pushed to ``channel``, so
        the client backfills exactly up to ``tip`` and no further.
        """
        request = _messages.SubscribeRequest(list(addresses))  # validates
        with self._lock:
            if self._closed:
                raise QueryError("subscription registry is closed")
            sub_id = self._next_id
            self._next_id += 1
            sub = _ServerSubscription(sub_id, tuple(request.addresses), channel)
            self._subs[sub_id] = sub
            self._by_channel.setdefault(channel, set()).add(sub_id)
            self.stats.subscribed_total += 1
            self.stats.active = len(self._subs)
            return sub_id, self._tip

    def unsubscribe(self, sub_id: int, channel) -> int:
        """Drop one subscription; returns the registry tip for the ack."""
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None or sub.channel is not channel:
                # Ids are guessable integers: only the owning connection
                # may drop a subscription.
                raise QueryError(f"no subscription {sub_id} on this connection")
            del self._subs[sub_id]
            ids = self._by_channel.get(channel)
            if ids is not None:
                ids.discard(sub_id)
                if not ids:
                    del self._by_channel[channel]
            self.stats.unsubscribed += 1
            self.stats.active = len(self._subs)
            return self._tip

    def detach_channel(self, channel) -> int:
        """Forget every subscription on a closed connection."""
        with self._lock:
            ids = self._by_channel.pop(channel, None)
            if not ids:
                return 0
            for sub_id in ids:
                self._subs.pop(sub_id, None)
            self.stats.channels_detached += 1
            self.stats.active = len(self._subs)
            return len(ids)

    def channel_active(self, channel) -> bool:
        with self._lock:
            return bool(self._by_channel.get(channel))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._subs.clear()
            self._by_channel.clear()
            self.stats.active = 0

    # -- fan-out (called from the system's listeners, write lock held) -----

    def _on_append(self) -> None:
        height = self.system.tip_height
        with self._lock:
            self._tip = height
            if self._closed or not self._subs:
                return
            subs = list(self._subs.values())
        header_bytes = self.system.chain.header_at(height).serialize()
        # One frame per distinct watch set: 100 watchers of the same
        # addresses cost one proof build, not 100.
        groups: Dict[Tuple[str, ...], List[_ServerSubscription]] = {}
        for sub in subs:
            groups.setdefault(sub.addresses, []).append(sub)
        for addresses, group in groups.items():
            try:
                batch = self.node.answer_batch(list(addresses), height, height)
                frame = _messages.PushUpdate(
                    height, header_bytes, batch.serialize(self.config)
                ).serialize()
            except ReproError:
                # An unservable watch set starves only its own group; the
                # client's gap detection backfills through the pull path.
                self.stats.build_failures += 1
                continue
            self.stats.updates_built += 1
            for sub in group:
                self._push(sub, frame, retraction=False)

    def _on_reorg(self, fork_height: int) -> None:
        with self._lock:
            old_tip = max(self._tip, fork_height)
            self._tip = fork_height
            if self._closed or not self._subs:
                return
            subs = list(self._subs.values())
        frame = _messages.PushRetraction(fork_height, old_tip).serialize()
        for sub in subs:
            self._push(sub, frame, retraction=True)

    def _push(
        self, sub: _ServerSubscription, frame: bytes, retraction: bool
    ) -> None:
        status = sub.channel.push(frame)
        if status == PUSH_OK:
            if retraction:
                self.stats.retraction_frames += 1
            else:
                self.stats.update_frames += 1
            return
        if status == PUSH_OVERFLOW:
            self._evict(sub)
            return
        # PUSH_CLOSED: the connection died under us; forget its subs.
        self.detach_channel(sub.channel)

    def _evict(self, sub: _ServerSubscription) -> None:
        def _final_frame(dropped: int) -> bytes:
            return _messages.SubscriptionEvicted(
                sub.sub_id, dropped, "outbox overflow"
            ).serialize()

        dropped = sub.channel.evict(_final_frame)
        with self._lock:
            ids = self._by_channel.pop(sub.channel, set())
            for sub_id in ids:
                self._subs.pop(sub_id, None)
            self.stats.evicted_slow += 1
            self.stats.frames_dropped += dropped
            self.stats.active = len(self._subs)

    def __repr__(self) -> str:
        return (
            f"SubscriptionRegistry(active={self.stats.active}, "
            f"tip={self._tip})"
        )


# ---------------------------------------------------------------------------
# client side: events


class WatchEvent:
    """Base class: everything a session surfaces is one of these."""

    kind = "event"
    #: ``time.monotonic()`` when the session surfaced the event (set by
    #: ``_emit``); benchmarks read it to compute notify latency.
    emitted_at = 0.0

    def describe(self) -> str:  # pragma: no cover - overridden everywhere
        return self.kind

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class WatchUpdate(WatchEvent):
    """One appended block, fully verified before this object existed.

    ``histories`` maps every watched address to its verified history
    over the single height — an empty history *is* the BF-negative
    attestation ("provably nothing for you in this block").
    """

    kind = "update"

    __slots__ = ("height", "histories")

    def __init__(
        self, height: int, histories: Dict[str, VerifiedHistory]
    ) -> None:
        self.height = height
        self.histories = histories

    @property
    def first_height(self) -> int:
        return self.height

    @property
    def last_height(self) -> int:
        return self.height

    @property
    def hits(self) -> Dict[str, VerifiedHistory]:
        return {
            address: history
            for address, history in self.histories.items()
            if history.transactions
        }

    @property
    def quiet(self) -> List[str]:
        return [
            address
            for address, history in self.histories.items()
            if not history.transactions
        ]

    def tx_count(self) -> int:
        return sum(len(h.transactions) for h in self.histories.values())

    def describe(self) -> str:
        return (
            f"update height={self.height} hits={len(self.hits)} "
            f"quiet={len(self.quiet)} txs={self.tx_count()}"
        )


class WatchBackfill(WatchEvent):
    """A verified range query that filled a push gap (§10.6)."""

    kind = "backfill"

    __slots__ = ("first_height", "last_height", "histories")

    def __init__(
        self,
        first_height: int,
        last_height: int,
        histories: Dict[str, VerifiedHistory],
    ) -> None:
        self.first_height = first_height
        self.last_height = last_height
        self.histories = histories

    def tx_count(self) -> int:
        return sum(len(h.transactions) for h in self.histories.values())

    def describe(self) -> str:
        return (
            f"backfill first={self.first_height} last={self.last_height} "
            f"txs={self.tx_count()}"
        )


class WatchRetraction(WatchEvent):
    """Blocks above ``fork_height`` are void; re-delivery follows."""

    kind = "retract"

    __slots__ = ("fork_height", "old_tip")

    def __init__(self, fork_height: int, old_tip: int) -> None:
        self.fork_height = fork_height
        self.old_tip = old_tip

    def describe(self) -> str:
        return f"retract fork={self.fork_height} old_tip={self.old_tip}"


class WatchEviction(WatchEvent):
    """The server's slow-consumer guard dropped this subscription."""

    kind = "evicted"

    __slots__ = ("error",)

    def __init__(self, error: SubscriberEvictedError) -> None:
        self.error = error

    def describe(self) -> str:
        return (
            f"evicted id={self.error.subscription_id} "
            f"dropped={self.error.dropped_frames} reason={self.error.reason}"
        )


class WatchDisconnect(WatchEvent):
    """The watch connection died; ``final`` means no reconnect follows."""

    kind = "disconnect"

    __slots__ = ("reason", "final")

    def __init__(self, reason: str, final: bool) -> None:
        self.reason = reason
        self.final = final

    def describe(self) -> str:
        return f"disconnect final={int(self.final)} reason={self.reason}"


class WatchClosed(WatchEvent):
    """Always the session's last event (the consumer's stop signal)."""

    kind = "closed"

    __slots__ = ("stats",)

    def __init__(self, stats: Dict[str, int]) -> None:
        self.stats = stats

    def describe(self) -> str:
        return (
            f"closed updates={self.stats.get('updates_verified', 0)} "
            f"retractions={self.stats.get('retractions', 0)} "
            f"backfills={self.stats.get('backfills', 0)}"
        )


class _EvictedSignal(Exception):
    """Internal: unwinds the reader after a terminal eviction frame."""


# ---------------------------------------------------------------------------
# client side: the session


class WatchStats:
    """Counters for one :class:`SubscriptionSession`."""

    __slots__ = (
        "connects",
        "connect_failures",
        "subscribes",
        "updates_verified",
        "updates_rejected",
        "verification_failures",
        "duplicates",
        "gaps",
        "stale_forks",
        "stale_retractions",
        "retractions",
        "backfills",
        "backpressure_waits",
        "keepalives",
        "evictions",
        "disconnects",
        "protocol_errors",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> "dict[str, int]":
        return {name: getattr(self, name) for name in self.__slots__}


class SubscriptionSession:
    """A verified, self-healing watch stream over one daemon.

    The reader thread owns a dedicated :class:`ClientConnection` (push
    frames on a pooled socket would be "unsolicited bytes" to the pool's
    health peek) plus a lazy single-slot request pool for the verified
    pull path that repairs gaps.  Every surfaced event went through the
    same §V verification a pull query uses — the session maintains the
    invariant that its delivered coverage always equals its header tip,
    so the only accepted live update is ``tip + 1`` linking onto the
    local chain; anything else is a duplicate (dropped), a gap or fork
    (resolved through a verified header sync + range query), or garbage
    (the connection is torn down and rebuilt).

    Consume events with :meth:`next_event` / :meth:`events`; the stream
    always ends with a :class:`WatchClosed`.
    """

    def __init__(
        self,
        light_node: LightNode,
        address: Tuple[str, int],
        watch_addresses: Sequence[str],
        *,
        keepalive: float = 5.0,
        request_timeout: float = 10.0,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        reconnect: bool = True,
        max_reconnects: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_backfill_retries: int = 4,
        resubscribe_on_eviction: bool = False,
        seed: int = 0,
    ) -> None:
        if keepalive <= 0:
            raise ValueError(f"keepalive must be positive, got {keepalive}")
        # Validate the watch set once, with the wire rules.
        _messages.SubscribeRequest(list(watch_addresses))
        self.light = light_node
        self.address = (address[0], int(address[1]))
        self.watched = list(watch_addresses)
        self.keepalive = keepalive
        self.request_timeout = request_timeout
        self.connect_timeout = connect_timeout
        self.max_frame_bytes = max_frame_bytes
        self.reconnect = reconnect
        self.max_reconnects = max_reconnects
        self.retry_policy = retry_policy or RetryPolicy(
            max_rounds=3, base_delay=0.05, max_delay=1.0, jitter=0.25
        )
        self.max_backfill_retries = max_backfill_retries
        self.resubscribe_on_eviction = resubscribe_on_eviction
        self.stats = WatchStats()
        self.subscription_id: Optional[int] = None
        self._rng = random.Random(seed)
        self._seed = seed
        self._events: "queue.Queue[WatchEvent]" = queue.Queue()
        self._stop = threading.Event()
        self._done = threading.Event()
        self._conn_lock = threading.Lock()
        self._subscribed = threading.Event()
        self._conn: Optional[ClientConnection] = None
        self._pool: Optional[ConnectionPool] = None
        self._remote_node: Optional[RemoteFullNode] = None
        self._thread: Optional[threading.Thread] = None
        #: Highest height whose (verified) data has been surfaced.  The
        #: session keeps ``_delivered_through == light.tip_height``.
        self._delivered_through = light_node.tip_height

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SubscriptionSession":
        if self._thread is not None:
            raise TransportError("subscription session already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-watch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: best-effort unsubscribe, close, join."""
        self._stop.set()
        with self._conn_lock:
            conn = self._conn
        if conn is not None:
            if self.subscription_id is not None:
                try:
                    conn.send_frame(
                        _messages.UnsubscribeRequest(
                            self.subscription_id
                        ).serialize(),
                        time.monotonic() + 1.0,
                    )
                except ReproError:
                    pass
            conn.close()
        self._done.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "SubscriptionSession":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and not self._done.is_set()

    def wait_subscribed(self, timeout: Optional[float] = None) -> bool:
        """Block until the first subscribe ack lands (True) or timeout.

        From that point on, every server append is covered: it either
        arrives as a push or is backfilled through the pull path.
        """
        return self._subscribed.wait(timeout)

    # -- event consumption -------------------------------------------------

    def next_event(
        self, timeout: Optional[float] = None
    ) -> Optional[WatchEvent]:
        """The next event, or ``None`` when ``timeout`` expires."""
        try:
            return self._events.get(timeout=timeout)
        except queue.Empty:
            return None

    def events(self, timeout: Optional[float] = None):
        """Iterate events until :class:`WatchClosed` (inclusive)."""
        while True:
            event = self.next_event(timeout)
            if event is None:
                return
            yield event
            if isinstance(event, WatchClosed):
                return

    def _emit(self, event: WatchEvent) -> None:
        # Stamped at surface time (i.e. after verification), so a
        # consumer draining later can still measure notify latency.
        event.emitted_at = time.monotonic()
        self._events.put(event)

    # -- reader thread -----------------------------------------------------

    def _run(self) -> None:
        try:
            self._run_inner()
        finally:
            with self._conn_lock:
                conn, self._conn = self._conn, None
            if conn is not None:
                conn.close()
            self._emit(WatchClosed(self.stats.as_dict()))
            self._done.set()

    def _run_inner(self) -> None:
        failures = 0
        reconnects = 0
        while not self._stop.is_set():
            try:
                conn = ClientConnection(
                    self.address, self.connect_timeout, self.max_frame_bytes
                )
            except TransportError as error:
                self.stats.connect_failures += 1
                failures += 1
                if not self._retry_allowed(reconnects):
                    self._emit(WatchDisconnect(str(error), final=True))
                    return
                reconnects += 1
                self._backoff(failures)
                continue
            with self._conn_lock:
                self._conn = conn
            if self._stop.is_set():
                return  # stop() raced the connect; its close may have missed
            self.stats.connects += 1
            try:
                self._serve_stream(conn)
                return  # orderly stop
            except _EvictedSignal:
                if not (self.resubscribe_on_eviction and self.reconnect):
                    return
                reason = "resubscribing after eviction"
            except ReproError as error:
                if self._stop.is_set():
                    return
                reason = f"{type(error).__name__}: {error}"
            finally:
                conn.close()
                with self._conn_lock:
                    self._conn = None
            self.stats.disconnects += 1
            failures += 1
            final = not (self.reconnect and self._retry_allowed(reconnects))
            self._emit(WatchDisconnect(reason, final=final))
            if final:
                return
            reconnects += 1
            self._backoff(failures)

    def _retry_allowed(self, reconnects: int) -> bool:
        if not self.reconnect:
            return False
        return self.max_reconnects is None or reconnects < self.max_reconnects

    def _backoff(self, failures: int) -> None:
        pause = self.retry_policy.backoff_seconds(
            min(failures, 16), self._rng
        )
        self._stop.wait(pause)

    # -- stream handling ---------------------------------------------------

    def _serve_stream(self, conn: ClientConnection) -> None:
        ack, pending = self._handshake(conn)
        self.subscription_id = ack.subscription_id
        self.stats.subscribes += 1
        self._subscribed.set()
        if ack.tip_height != self._delivered_through:
            # The server's chain moved while we were away (or we never
            # had it): close the gap through the verified pull path.
            self._resync()
        for frame in pending:
            self._dispatch(frame)
        awaiting_pong = False
        nonce = 0
        while not self._stop.is_set():
            frame = conn.recv_stream_frame(self.keepalive)
            if frame is None:
                if awaiting_pong:
                    raise TransportError(
                        "keepalive pong missed; watch link presumed dead"
                    )
                nonce = self._rng.randrange(1, 1 << 30)
                conn.send_frame(
                    _messages.PingRequest(nonce).serialize(),
                    time.monotonic() + self.request_timeout,
                )
                self.stats.keepalives += 1
                awaiting_pong = True
                continue
            awaiting_pong = False
            self._dispatch(frame)

    def _handshake(
        self, conn: ClientConnection
    ) -> "Tuple[_messages.SubscribeAck, List[bytes]]":
        deadline = time.monotonic() + self.request_timeout
        conn.send_frame(
            _messages.SubscribeRequest(self.watched).serialize(), deadline
        )
        pending: List[bytes] = []
        push_tags = (
            _messages.PushUpdate.type_tag,
            _messages.PushRetraction.type_tag,
            _messages.SubscriptionEvicted.type_tag,
        )
        while True:
            frame = conn.recv_frame(deadline)
            tag = frame[0] if frame else 0
            if tag == _messages.SubscribeAck.type_tag:
                return _messages.SubscribeAck.deserialize(frame), pending
            if tag == _messages.ErrorResponse.type_tag:
                raise error_from_frame(
                    _messages.ErrorResponse.deserialize(frame)
                )
            if tag in push_tags:
                # A second subscribe on a live connection can see pushes
                # for the earlier subscription land before its ack.
                pending.append(frame)
                continue
            if tag == _messages.PongResponse.type_tag:
                continue
            self.stats.protocol_errors += 1
            raise TransportError(
                f"unexpected frame tag {tag} while subscribing"
            )

    def _dispatch(self, frame: bytes) -> None:
        tag = frame[0] if frame else 0
        if tag == _messages.PushUpdate.type_tag:
            try:
                update = _messages.PushUpdate.deserialize(frame)
            except EncodingError as error:
                self.stats.protocol_errors += 1
                raise TransportError(
                    f"undecodable push update: {error}"
                ) from error
            self._handle_update(update)
        elif tag == _messages.PushRetraction.type_tag:
            try:
                retraction = _messages.PushRetraction.deserialize(frame)
            except EncodingError as error:
                self.stats.protocol_errors += 1
                raise TransportError(
                    f"undecodable retraction: {error}"
                ) from error
            self._handle_retraction(retraction)
        elif tag == _messages.SubscriptionEvicted.type_tag:
            try:
                notice = _messages.SubscriptionEvicted.deserialize(frame)
            except EncodingError as error:
                self.stats.protocol_errors += 1
                raise TransportError(f"undecodable eviction: {error}") from error
            self.stats.evictions += 1
            self._emit(WatchEviction(notice.to_error()))
            raise _EvictedSignal()
        elif tag == _messages.ErrorResponse.type_tag:
            raise error_from_frame(_messages.ErrorResponse.deserialize(frame))
        elif tag in (
            _messages.PongResponse.type_tag,
            _messages.SubscribeAck.type_tag,
        ):
            return  # keepalive echo / duplicate ack: liveness only
        else:
            self.stats.protocol_errors += 1
            raise TransportError(
                f"unexpected frame tag {tag} on the watch stream"
            )

    # -- verification core -------------------------------------------------

    def _handle_update(self, update: "_messages.PushUpdate") -> None:
        height = update.height
        expected = self._delivered_through + 1
        if height < expected:
            self.stats.duplicates += 1
            return
        if height > expected:
            # Dropped frames (chaos) or a registration race: nothing is
            # surfaced from this frame; the pull path re-fetches it all.
            self.stats.gaps += 1
            self._resync()
            return
        config = self.light.config
        try:
            reader = ByteReader(update.header_bytes)
            header = BlockHeader.deserialize(
                reader,
                config.header_extension_kind,
                config.header_bloom_bytes,
            )
            reader.finish()
            batch = BatchQueryResult.deserialize(update.batch_bytes, config)
        except EncodingError as error:
            self.stats.updates_rejected += 1
            raise TransportError(
                f"undecodable push update at height {height}: {error}"
            ) from error
        if header.prev_hash != self.light.headers[-1].block_id():
            # A reorg we have not heard about yet (the retraction may be
            # in flight or lost) or a fabricated header: either way the
            # frame is unusable and the verified sync path arbitrates.
            self.stats.stale_forks += 1
            self._resync()
            return
        try:
            histories = verify_batch_result(
                batch,
                self.light.headers + [header],
                config,
                list(self.watched),
                (height, height),
            )
        except VerificationError as error:
            self.stats.updates_rejected += 1
            self.stats.verification_failures += 1
            raise TransportError(
                f"push update at height {height} failed verification: "
                f"{error}"
            ) from error
        self.light.headers.append(header)
        self._delivered_through = height
        self.stats.updates_verified += 1
        self._emit(WatchUpdate(height, histories))

    def _handle_retraction(
        self, retraction: "_messages.PushRetraction"
    ) -> None:
        fork = retraction.fork_height
        old_tip = self.light.tip_height
        if fork >= old_tip:
            self.stats.stale_retractions += 1
            return  # nothing above the fork locally: stale or replayed
        self.light.truncate_headers(fork)
        self._delivered_through = min(self._delivered_through, fork)
        self.stats.retractions += 1
        self._emit(WatchRetraction(fork, old_tip))

    def _remote(self) -> RemoteFullNode:
        if self._remote_node is None:
            self._pool = ConnectionPool(
                self.address,
                size=1,
                connect_timeout=self.connect_timeout,
                request_timeout=self.request_timeout,
                max_frame_bytes=self.max_frame_bytes,
                seed=self._seed,
            )
            self._remote_node = RemoteFullNode(pool=self._pool)
        return self._remote_node

    def _wait_backpressure(self, error: BackpressureError) -> None:
        """Sleep out a §11 retry-after hint, waking early on close."""
        self.stats.backpressure_waits += 1
        wait = error.retry_after if error.retry_after else 0.05
        self._stop.wait(min(wait, 5.0))

    def _resync(self) -> None:
        """Close any coverage gap through the verified pull path.

        Syncs headers (reorg-aware), then range-queries every height
        between the delivered watermark and the new tip — the "backfill
        via a normal range query" the protocol mandates for reconnects.
        Retries a bounded number of times because the server's tip may
        advance between the sync and the query; anything that fails
        *verification* (as opposed to racing) tears the stream down
        without surfacing data.
        """
        remote = self._remote()
        last_error: Optional[Exception] = None
        for _attempt in range(self.max_backfill_retries):
            if self._stop.is_set():
                return
            before_tip = self.light.tip_height
            try:
                replaced, _appended = self.light.sync_with_reorg(remote)
            except StaleChainError:
                replaced = 0  # server behind us: nothing new to verify
            except BackpressureError as error:
                # The server is shedding backfill-class load (§11): a
                # benign, typed "come back later" — wait the hint out and
                # retry through the same verified pull path.  Never a
                # teardown: the whole point of staged shedding is that
                # refused traffic heals once the burst passes.
                self._wait_backpressure(error)
                last_error = error
                continue
            except (VerificationError, EncodingError) as error:
                self.stats.verification_failures += 1
                raise TransportError(
                    f"header resync failed verification: {error}"
                ) from error
            if replaced:
                fork = before_tip - replaced
                self._delivered_through = min(self._delivered_through, fork)
                self.stats.retractions += 1
                self._emit(WatchRetraction(fork, before_tip))
            first = self._delivered_through + 1
            last = self.light.tip_height
            if first > last:
                return  # already covered: the "gap" was advisory only
            try:
                histories = self.light.query_batch(
                    remote,
                    self.watched,
                    first_height=first,
                    last_height=last,
                )
            except BackpressureError as error:
                self._wait_backpressure(error)  # shed: wait, then retry
                last_error = error
                continue
            except (CompletenessError, StaleChainError) as error:
                last_error = error  # tip raced the query: sync and retry
                continue
            except VerificationError as error:
                self.stats.verification_failures += 1
                raise TransportError(
                    f"backfill failed verification: {error}"
                ) from error
            self._delivered_through = last
            self.stats.backfills += 1
            self._emit(WatchBackfill(first, last, histories))
            return
        raise TransportError(
            f"backfill did not converge after "
            f"{self.max_backfill_retries} attempts: {last_error}"
        )

    def __repr__(self) -> str:
        return (
            f"SubscriptionSession({self.address[0]}:{self.address[1]}, "
            f"{len(self.watched)} addresses, "
            f"delivered_through={self._delivered_through})"
        )


__all__ = [
    "PUSH_CLOSED",
    "PUSH_OK",
    "PUSH_OVERFLOW",
    "SubscriptionRegistry",
    "SubscriptionSession",
    "SubscriptionStats",
    "WatchBackfill",
    "WatchClosed",
    "WatchDisconnect",
    "WatchEvent",
    "WatchEviction",
    "WatchRetraction",
    "WatchStats",
    "WatchUpdate",
]
