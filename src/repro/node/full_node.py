"""The full node: stores complete blocks, serves verifiable queries (§II).

A :class:`FullNode` wraps a :class:`BuiltSystem` (chain plus indexes) and
answers the two RPCs of the protocol: header sync and history queries.
The honest implementation simply delegates to :func:`answer_query`; the
security tests subclass/wrap it with adversarial behaviours from
:mod:`repro.query.adversary`.

Serving-side caching (DESIGN.md §8): each node carries its own
:class:`~repro.query.cache.ResponseCache` of serialized query responses,
keyed ``(address, first_height, requested_last, tip)`` and fronted by
single-flight coalescing — N concurrent identical requests perform one
proof generation and one serialization.  The cache is **per node**, not
per system, because two nodes over one chain may answer differently (the
adversarial test doubles tamper in ``answer``); it registers an append
listener on the system so every new block drops the now-stale tip-keyed
bytes.  For a pooled multi-worker front end, wrap the node in
:class:`repro.node.server.QueryServer`.
"""

from __future__ import annotations

import weakref

from repro.errors import QueryError
from repro.node.messages import (
    HeadersRequest,
    HeadersResponse,
    QueryRequest,
    QueryResponse,
)
from repro.query.builder import BuiltSystem
from repro.query.cache import ResponseCache
from repro.query.prover import answer_query
from repro.query.result import QueryResult


class FullNode:
    """Serves headers and verifiable history queries from a built chain."""

    def __init__(
        self, system: BuiltSystem, response_cache_entries: int = 1024
    ) -> None:
        self.system = system
        #: Serialized answers for hot (address, range) pairs at the
        #: current tip; dropped whenever the chain grows.
        self.response_cache = ResponseCache(response_cache_entries)
        #: Only honest answers are cacheable: subclasses that override
        #: ``answer`` (the adversarial doubles, some stochastic) must be
        #: re-invoked on every request so their per-call behaviour —
        #: intermittent attacks, RNG-sequenced tampering — is preserved.
        self._cache_responses = type(self).answer is FullNode.answer
        # Register via weakref so short-lived nodes (tests build many
        # per shared system) don't pin their caches in the listener list.
        cache_ref = weakref.ref(self.response_cache)

        def _drop_stale(ref=cache_ref):
            cache = ref()
            if cache is not None:
                cache.invalidate_all()

        def _drop_stale_on_reorg(fork_height: int, ref=cache_ref):
            # Response keys carry the tip height, and an equal-length
            # fork reuses old tip heights for different chains — so a
            # reorg must drop everything, not just keys above the fork.
            cache = ref()
            if cache is not None:
                cache.invalidate_all()

        system.add_append_listener(_drop_stale)
        system.add_reorg_listener(_drop_stale_on_reorg)

    @property
    def tip_height(self) -> int:
        return self.system.tip_height

    # -- local API -----------------------------------------------------------

    def query(
        self,
        address: str,
        first_height: int = 1,
        last_height: "int | None" = None,
    ) -> QueryResult:
        """Full proof-bearing answer for ``address`` (the paper's §V)."""
        return self.answer(address, first_height, last_height)

    def answer(
        self,
        address: str,
        first_height: int = 1,
        last_height: "int | None" = None,
    ) -> QueryResult:
        """Hook point: adversarial full nodes override this one method."""
        return answer_query(self.system, address, first_height, last_height)

    # -- RPC handlers ----------------------------------------------------------

    def handle_query(self, payload: bytes) -> bytes:
        request = QueryRequest.deserialize(payload)
        if not request.address:
            raise QueryError("empty address in query request")
        last = request.last_height if request.last_height else None
        # Key and answer under one read-lock hold, so the tip in the key
        # is exactly the tip the answer is produced against (appends wait
        # for in-flight answers; the nested answer_query read is
        # reentrant).  Identical concurrent misses coalesce into one
        # proof generation via the cache's single-flight front.
        with self.system.lock.read():

            def build() -> bytes:
                return QueryResponse(
                    self.answer(request.address, request.first_height, last)
                ).serialize(self.system.config)

            if not self._cache_responses:
                return build()
            key = (
                request.address,
                request.first_height,
                request.last_height,
                self.system.tip_height,
            )
            return self.response_cache.get_or_build(key, build)

    def handle_batch_query(self, payload: bytes) -> bytes:
        from repro.node.messages import (
            _MSG_AGG_BATCH_REQUEST,
            AggregatedBatchRequest,
            AggregatedBatchResponse,
            BatchQueryRequest,
            BatchQueryResponse,
        )

        # The request tag selects the response encoding: the aggregated
        # tag asks for the blob-table form (§8.1), the plain tag for the
        # PR 5 per-fragment form, kept as the byte-equivalence oracle.
        aggregated = bool(payload) and payload[0] == _MSG_AGG_BATCH_REQUEST
        request_cls = AggregatedBatchRequest if aggregated else BatchQueryRequest
        request = request_cls.deserialize(payload)
        if not request.addresses:
            raise QueryError("batch query request carries no addresses")
        if any(not address for address in request.addresses):
            raise QueryError("empty address in batch query request")
        last = request.last_height if request.last_height else None
        batch = self.answer_batch(request.addresses, request.first_height, last)
        response_cls = AggregatedBatchResponse if aggregated else BatchQueryResponse
        return response_cls(batch).serialize(self.system.config)

    def answer_batch(
        self,
        addresses,
        first_height: int = 1,
        last_height: "int | None" = None,
    ):
        """Hook point for adversarial batch behaviour."""
        from repro.query.batch import answer_batch_query

        return answer_batch_query(
            self.system, addresses, first_height, last_height
        )

    def handle_headers(self, payload: bytes) -> bytes:
        from repro.node.messages import (
            _MSG_DELTA_HEADERS_REQUEST,
            DeltaHeadersRequest,
            DeltaHeadersResponse,
        )

        delta = bool(payload) and payload[0] == _MSG_DELTA_HEADERS_REQUEST
        request_cls = DeltaHeadersRequest if delta else HeadersRequest
        request = request_cls.deserialize(payload)
        response_cls = DeltaHeadersResponse if delta else HeadersResponse
        with self.system.lock.read():
            if request.from_height > self.tip_height + 1:
                raise QueryError(
                    f"no headers from height {request.from_height}; tip is "
                    f"{self.tip_height}"
                )
            # Slice the block range first: O(requested headers), not O(chain).
            response = response_cls(
                request.from_height,
                self.system.chain.headers_from(request.from_height),
            )
        return response.serialize()

    def extend_chain(self, bodies) -> None:
        """Append new blocks (each a transaction list) to the chain."""
        for transactions in bodies:
            self.system.append_block(transactions)

    def rollback_to(self, height: int) -> int:
        """Pop every block above ``height``; returns how many were removed.

        Delegates to :meth:`BuiltSystem.rollback_to`, which takes the
        write lock (in-flight answers finish against the old tip first)
        and fires the reorg listeners that drop this node's response
        cache.
        """
        return self.system.rollback_to(height)

    def reorg(self, fork_height: int, new_bodies) -> "tuple[int, int]":
        """Switch to a fork atomically; returns ``(replaced, appended)``."""
        return self.system.reorg(fork_height, new_bodies)
