"""The full node: stores complete blocks, serves verifiable queries (§II).

A :class:`FullNode` wraps a :class:`BuiltSystem` (chain plus indexes) and
answers the two RPCs of the protocol: header sync and history queries.
The honest implementation simply delegates to :func:`answer_query`; the
security tests subclass/wrap it with adversarial behaviours from
:mod:`repro.query.adversary`.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.node.messages import (
    HeadersRequest,
    HeadersResponse,
    QueryRequest,
    QueryResponse,
)
from repro.query.builder import BuiltSystem
from repro.query.prover import answer_query
from repro.query.result import QueryResult


class FullNode:
    """Serves headers and verifiable history queries from a built chain."""

    def __init__(self, system: BuiltSystem) -> None:
        self.system = system

    @property
    def tip_height(self) -> int:
        return self.system.tip_height

    # -- local API -----------------------------------------------------------

    def query(
        self,
        address: str,
        first_height: int = 1,
        last_height: "int | None" = None,
    ) -> QueryResult:
        """Full proof-bearing answer for ``address`` (the paper's §V)."""
        return self.answer(address, first_height, last_height)

    def answer(
        self,
        address: str,
        first_height: int = 1,
        last_height: "int | None" = None,
    ) -> QueryResult:
        """Hook point: adversarial full nodes override this one method."""
        return answer_query(self.system, address, first_height, last_height)

    # -- RPC handlers ----------------------------------------------------------

    def handle_query(self, payload: bytes) -> bytes:
        request = QueryRequest.deserialize(payload)
        if not request.address:
            raise QueryError("empty address in query request")
        last = request.last_height if request.last_height else None
        response = QueryResponse(
            self.answer(request.address, request.first_height, last)
        )
        return response.serialize(self.system.config)

    def handle_batch_query(self, payload: bytes) -> bytes:
        from repro.node.messages import BatchQueryRequest, BatchQueryResponse

        request = BatchQueryRequest.deserialize(payload)
        last = request.last_height if request.last_height else None
        batch = self.answer_batch(request.addresses, request.first_height, last)
        return BatchQueryResponse(batch).serialize(self.system.config)

    def answer_batch(
        self,
        addresses,
        first_height: int = 1,
        last_height: "int | None" = None,
    ):
        """Hook point for adversarial batch behaviour."""
        from repro.query.batch import answer_batch_query

        return answer_batch_query(
            self.system, addresses, first_height, last_height
        )

    def handle_headers(self, payload: bytes) -> bytes:
        request = HeadersRequest.deserialize(payload)
        if request.from_height > self.tip_height + 1:
            raise QueryError(
                f"no headers from height {request.from_height}; tip is "
                f"{self.tip_height}"
            )
        # Slice the block range first: O(requested headers), not O(chain).
        response = HeadersResponse(
            request.from_height,
            self.system.chain.headers_from(request.from_height),
        )
        return response.serialize()

    def extend_chain(self, bodies) -> None:
        """Append new blocks (each a transaction list) to the chain."""
        for transactions in bodies:
            self.system.append_block(transactions)
