"""Client side of the TCP transport: pooled, reconnecting, failing over.

Three layers, each usable alone:

* :class:`ClientConnection` — one blocking socket speaking the length-
  framed protocol with per-phase deadlines (connect, send, receive) and
  a cheap liveness probe (a zero-cost EOF peek, escalating to a
  ping/pong round trip for connections idle past a threshold).
* :class:`ConnectionPool` — a bounded pool of warm connections to one
  server: reconnect with exponential backoff + seeded jitter, health-
  checked reuse, and one conservative in-flight failover — a request
  that died on a *reused* connection before any response byte arrived
  is retried once on a fresh connection (the classic half-closed-socket
  hazard); every other failure surfaces as the PR 2 error taxonomy so
  :class:`~repro.node.session.QuerySession` retry/scoring/quarantine
  machinery works over sockets unchanged.
* :class:`RemoteFullNode` — duck-compatible with
  :class:`~repro.node.full_node.FullNode`'s handler surface
  (``handle_query`` / ``handle_batch_query`` / ``handle_headers`` /
  ``tip_height``), so a :class:`~repro.node.light_node.LightNode` or a
  :class:`~repro.node.session.QuerySession` peer list can point at a
  remote daemon with no other change.  Error frames received from the
  server are rebuilt into the same typed exceptions the in-process
  handlers raise; *nothing* received over the socket is trusted — every
  result still passes the full §V verification on the client.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BackpressureError,
    ConnectionLimitError,
    ChainError,
    EncodingError,
    QueryError,
    RateLimitedError,
    RequestShedError,
    RequestTimeoutError,
    ServerOverloadedError,
    SubscriberEvictedError,
    TransportError,
)
from repro.node.messages import (
    SHED_PRIORITIES,
    SHED_STATES,
    ErrorResponse,
    HelloRequest,
    PingRequest,
    PongResponse,
)
from repro.node.net import FRAME_HEADER
from repro.node.transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_ZLIB,
    FRAME_ZSTD,
    compress_frame,
    decompress_frame,
)

def _retry_seconds(params: Tuple[int, ...], position: int) -> "float | None":
    """Decode a retry-after-milliseconds wire param (0 / absent = none),
    clamped so a hostile hint cannot park a client for hours."""
    if len(params) <= position or params[position] <= 0:
        return None
    return min(params[position] / 1000.0, 30.0)


def _name_at(options: Tuple[str, ...], params: Tuple[int, ...], position: int) -> str:
    if len(params) > position and 0 <= params[position] < len(options):
        return options[params[position]]
    return "unknown"


#: Wire error kinds a client will rebuild as their original type.  Only
#: *benign* kinds are mapped — a malicious server naming anything else
#: (or inventing kinds) degrades to a generic :class:`TransportError`,
#: which can deny service but never influence what verifies.
_WIRE_ERRORS: Dict[str, Callable[[str, Tuple[int, ...]], Exception]] = {
    "ServerOverloadedError": lambda msg, params: ServerOverloadedError(
        params[0] if len(params) > 0 else 0,
        params[1] if len(params) > 1 else 0,
        retry_after=_retry_seconds(params, 2),
    ),
    "ConnectionLimitError": lambda msg, params: ConnectionLimitError(
        params[0] if len(params) > 0 else 0,
        params[1] if len(params) > 1 else 0,
        retry_after=_retry_seconds(params, 2),
    ),
    "RateLimitedError": lambda msg, params: RateLimitedError(
        "self", retry_after=_retry_seconds(params, 0)
    ),
    "RequestShedError": lambda msg, params: RequestShedError(
        _name_at(SHED_PRIORITIES, params, 0),
        _name_at(SHED_STATES, params, 1),
        retry_after=_retry_seconds(params, 2),
    ),
    "SubscriberEvictedError": lambda msg, params: SubscriberEvictedError(
        params[0] if len(params) > 0 else 1,
        params[1] if len(params) > 1 else 0,
    ),
    "EncodingError": lambda msg, params: EncodingError(msg),
    "QueryError": lambda msg, params: QueryError(msg),
    "ChainError": lambda msg, params: ChainError(msg),
    "TransportError": lambda msg, params: TransportError(msg),
}


def error_from_frame(error: ErrorResponse) -> Exception:
    """Rebuild the typed exception an :class:`ErrorResponse` carries."""
    builder = _WIRE_ERRORS.get(error.kind)
    if builder is not None:
        return builder(error.message, error.params)
    return TransportError(f"peer reported {error.kind}: {error.message}")


class ClientConnection:
    """One framed TCP connection with per-phase deadlines."""

    __slots__ = (
        "address",
        "max_frame_bytes",
        "last_used",
        "requests_served",
        "received_any",
        "_sock",
        "_closed",
    )

    def __init__(
        self,
        address: Tuple[str, int],
        connect_timeout: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.address = address
        self.max_frame_bytes = max_frame_bytes
        try:
            self._sock = socket.create_connection(
                address, timeout=connect_timeout
            )
        except OSError as exc:
            raise TransportError(
                f"connect to {address[0]}:{address[1]} failed: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.last_used = time.monotonic()
        self.requests_served = 0
        #: True once any byte of the current exchange's response landed
        #: — the pool's failover guard (never retry a half-answered
        #: request on the pool's own initiative).
        self.received_any = False
        self._closed = False

    @property
    def is_closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    # -- framed I/O --------------------------------------------------------

    def _remaining(self, deadline: float, doing: str) -> float:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RequestTimeoutError(
                f"deadline expired while {doing}",
                timeout_seconds=None,
                elapsed_seconds=None,
            )
        return remaining

    def send_frame(self, frame: bytes, deadline: float) -> None:
        if len(frame) > self.max_frame_bytes:
            raise EncodingError(
                f"frame of {len(frame)} bytes exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        try:
            self._sock.settimeout(self._remaining(deadline, "sending"))
            self._sock.sendall(FRAME_HEADER.pack(len(frame)) + frame)
        except socket.timeout as exc:
            raise RequestTimeoutError(
                f"send to {self.address} timed out"
            ) from exc
        except OSError as exc:
            raise TransportError(f"send to {self.address} failed: {exc}") from exc

    def _recv_exact(self, length: int, deadline: float) -> bytes:
        chunks: List[bytes] = []
        needed = length
        while needed:
            try:
                self._sock.settimeout(self._remaining(deadline, "receiving"))
                chunk = self._sock.recv(min(needed, 1 << 20))
            except socket.timeout as exc:
                raise RequestTimeoutError(
                    f"receive from {self.address} timed out with "
                    f"{needed} of {length} bytes outstanding"
                ) from exc
            except OSError as exc:
                raise TransportError(
                    f"receive from {self.address} failed: {exc}"
                ) from exc
            if not chunk:
                raise TransportError(
                    f"connection to {self.address} closed with "
                    f"{needed} of {length} bytes outstanding"
                )
            self.received_any = True
            chunks.append(chunk)
            needed -= len(chunk)
        return b"".join(chunks)

    def recv_frame(self, deadline: float) -> bytes:
        header = self._recv_exact(FRAME_HEADER.size, deadline)
        (length,) = FRAME_HEADER.unpack(header)
        if length == 0 or length > self.max_frame_bytes:
            raise EncodingError(
                f"peer announced a frame of {length} bytes, outside "
                f"[1, {self.max_frame_bytes}]"
            )
        return self._recv_exact(length, deadline)

    def recv_stream_frame(self, idle_timeout: float) -> Optional[bytes]:
        """Wait up to ``idle_timeout`` for a server-initiated frame.

        The push-capable receive used by subscription sessions: returns
        the next frame, or ``None`` when the line stayed *completely*
        quiet for the window (the caller's cue to send a keepalive
        ping).  A timeout that strikes after any byte has landed is a
        mid-frame stall — unrecoverable at the framing layer — and
        surfaces as :class:`RequestTimeoutError` like the request path.
        """
        deadline = time.monotonic() + idle_timeout
        self.received_any = False
        try:
            frame = self.recv_frame(deadline)
        except RequestTimeoutError:
            if self.received_any:
                raise  # half a frame arrived: the stream cannot resync
            return None
        self.last_used = time.monotonic()
        return frame

    def request(self, frame: bytes, timeout: float) -> bytes:
        """One request/response exchange under a single deadline."""
        deadline = time.monotonic() + timeout
        self.received_any = False
        started = time.monotonic()
        try:
            self.send_frame(frame, deadline)
            response = self.recv_frame(deadline)
        except RequestTimeoutError as exc:
            raise RequestTimeoutError(
                str(exc),
                timeout_seconds=timeout,
                elapsed_seconds=time.monotonic() - started,
            ) from exc
        self.last_used = time.monotonic()
        self.requests_served += 1
        return response

    # -- liveness ----------------------------------------------------------

    def peek_healthy(self) -> bool:
        """Non-blocking EOF check: a server that closed (or wrote
        unsolicited bytes onto) this idle connection fails the peek."""
        if self._closed:
            return False
        try:
            self._sock.setblocking(False)
            try:
                data = self._sock.recv(1, socket.MSG_PEEK)
            finally:
                self._sock.setblocking(True)
        except (BlockingIOError, InterruptedError):
            return True  # nothing to read: the expected idle state
        except OSError:
            return False
        # Readable while idle means EOF (b"") or unsolicited bytes that
        # would desynchronize the framing — either way, not reusable.
        del data
        return False

    def ping(self, nonce: int, timeout: float) -> PongResponse:
        response = self.request(PingRequest(nonce).serialize(), timeout)
        if response and response[0] == ErrorResponse.type_tag:
            raise error_from_frame(ErrorResponse.deserialize(response))
        pong = PongResponse.deserialize(response)
        if pong.nonce != nonce:
            raise TransportError(
                f"pong nonce {pong.nonce} does not answer ping {nonce}"
            )
        return pong

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.requests_served} reqs"
        return f"ClientConnection({self.address[0]}:{self.address[1]}, {state})"


class ConnectionPool:
    """Reconnecting bounded pool of framed connections to one server."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        size: int = 4,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        codec: Optional[str] = None,
        backoff_base: float = 0.05,
        backoff_multiplier: float = 2.0,
        backoff_max: float = 2.0,
        backoff_jitter: float = 0.25,
        health_check_idle: float = 5.0,
        seed: int = 0,
        client_id: Optional[str] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool needs at least one slot, got {size}")
        self.address = (address[0], int(address[1]))
        self.size = size
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_frame_bytes = max_frame_bytes
        self.codec = codec
        #: Identity declared to the server via a §11 hello frame on every
        #: fresh connection (None = identified by socket peer host only).
        self.client_id = client_id
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        self.health_check_idle = health_check_idle
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._idle: List[ClientConnection] = []
        self._consecutive_failures = 0
        self._blocked_until = 0.0
        self._deferred_until = 0.0
        self._closed = False
        self.stats: Dict[str, float] = {
            "connects": 0,
            "connect_failures": 0,
            "backoff_seconds": 0.0,
            "requests": 0,
            "request_failures": 0,
            "failovers": 0,
            "health_evictions": 0,
            "pings": 0,
            "hellos": 0,
            "backpressure_signals": 0,
            "backpressure_wait_seconds": 0.0,
        }

    # -- connection management --------------------------------------------

    def _connect(self) -> ClientConnection:
        now = time.monotonic()
        with self._lock:
            if self._closed:
                raise TransportError("connection pool is closed")
            blocked = self._blocked_until - now
        if blocked > 0:
            raise TransportError(
                f"reconnect to {self.address[0]}:{self.address[1]} backed "
                f"off for another {blocked:.3f}s"
            )
        try:
            connection = ClientConnection(
                self.address, self.connect_timeout, self.max_frame_bytes
            )
        except TransportError:
            with self._lock:
                self._consecutive_failures += 1
                # Clamp the exponent: past ~2**64 the pause is already
                # pinned at backoff_max, and an unbounded float power
                # would overflow after enough rapid failures.
                exponent = min(self._consecutive_failures - 1, 64)
                pause = min(
                    self.backoff_base * self.backoff_multiplier ** exponent,
                    self.backoff_max,
                )
                pause *= 1.0 + self.backoff_jitter * self._rng.uniform(
                    -1.0, 1.0
                )
                pause = max(0.0, pause)
                self._blocked_until = time.monotonic() + pause
                self.stats["connect_failures"] += 1
                self.stats["backoff_seconds"] += pause
            raise
        with self._lock:
            self._consecutive_failures = 0
            self._blocked_until = 0.0
            self.stats["connects"] += 1
        if self.client_id is not None:
            # Declare this pool's identity before any real request, so
            # the server's rate buckets key on it from the first frame.
            try:
                response = connection.request(
                    HelloRequest(self.client_id).serialize(),
                    self.request_timeout,
                )
            except (TransportError, EncodingError):
                connection.close()
                raise
            if response and response[0] == ErrorResponse.type_tag:
                connection.close()
                raise error_from_frame(ErrorResponse.deserialize(response))
            with self._lock:
                self.stats["hellos"] += 1
        return connection

    def _healthy(self, connection: ClientConnection) -> bool:
        if not connection.peek_healthy():
            return False
        if (
            time.monotonic() - connection.last_used
            > self.health_check_idle
        ):
            # Idle past the threshold: prove the peer still answers
            # before trusting the socket with a real request.
            try:
                connection.ping(
                    self._rng.randrange(1 << 30), self.request_timeout
                )
                with self._lock:
                    self.stats["pings"] += 1
            except Exception:  # noqa: BLE001 - any failure means unhealthy
                return False
        return True

    def _acquire(self) -> Tuple[ClientConnection, bool]:
        """A healthy connection plus whether it was reused."""
        while True:
            with self._lock:
                if self._closed:
                    raise TransportError("connection pool is closed")
                connection = self._idle.pop() if self._idle else None
            if connection is None:
                return self._connect(), False
            if self._healthy(connection):
                return connection, True
            connection.close()
            with self._lock:
                self.stats["health_evictions"] += 1

    def _release(self, connection: ClientConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.size:
                self._idle.append(connection)
                return
        connection.close()

    # -- backpressure ------------------------------------------------------

    def defer(self, seconds: float) -> None:
        """Hold future requests for ``seconds`` (a server retry-after)."""
        if seconds <= 0:
            return
        until = time.monotonic() + min(seconds, 30.0)
        with self._lock:
            if until > self._deferred_until:
                self._deferred_until = until

    def _observe_backpressure(self, response: bytes) -> None:
        """Honor the retry-after hint riding on a §11 refusal frame.

        The pool waits before its *next* request instead of hammering an
        overloaded server — the typed error still flows to the caller
        untouched.  A malformed error frame is ignored here; the caller
        decodes (and rejects) it through the strict path.
        """
        if not response or response[0] != ErrorResponse.type_tag:
            return
        try:
            error = error_from_frame(ErrorResponse.deserialize(response))
        except Exception:  # noqa: BLE001 - strict decode happens upstream
            return
        if isinstance(error, BackpressureError) and error.retry_after:
            with self._lock:
                self.stats["backpressure_signals"] += 1
            self.defer(error.retry_after)

    def _wait_deferred(self) -> None:
        with self._lock:
            pause = self._deferred_until - time.monotonic()
        if pause > 0:
            with self._lock:
                self.stats["backpressure_wait_seconds"] += pause
            time.sleep(pause)

    # -- request path ------------------------------------------------------

    def request(self, payload: bytes) -> bytes:
        """One request frame → the response frame, with reconnect/failover.

        Failures surface as the PR 2 taxonomy: connect/reset/EOF →
        :class:`TransportError`, blown deadline →
        :class:`RequestTimeoutError`, frame-limit violations →
        :class:`EncodingError`.  A request that died on a *reused*
        connection before any response byte arrived is retried once on a
        fresh connection; everything else is the caller's retry decision
        (``QuerySession`` already makes it).  When the previous exchange
        brought back a §11 backpressure frame with a retry-after hint,
        the pool sleeps the hint out before this request goes on the
        wire.
        """
        self._wait_deferred()
        if self.codec is not None:
            frame = compress_frame(
                payload, self.codec, max_frame_bytes=self.max_frame_bytes
            )
        else:
            if len(payload) > self.max_frame_bytes:
                raise EncodingError(
                    f"frame of {len(payload)} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            frame = payload
        with self._lock:
            self.stats["requests"] += 1
        last_error: Optional[Exception] = None
        for attempt in range(2):
            connection, reused = self._acquire()
            try:
                raw = connection.request(frame, self.request_timeout)
            except (TransportError, EncodingError) as error:
                connection.close()
                failover = (
                    reused
                    and attempt == 0
                    and not connection.received_any
                    and not isinstance(error, RequestTimeoutError)
                )
                if failover:
                    with self._lock:
                        self.stats["failovers"] += 1
                    last_error = error
                    continue
                with self._lock:
                    self.stats["request_failures"] += 1
                raise
            self._release(connection)
            response = decompress_frame(raw, self.max_frame_bytes)
            self._observe_backpressure(response)
            return response
        with self._lock:
            self.stats["request_failures"] += 1
        raise last_error  # pragma: no cover - loop always raised/returned

    def ping(self) -> PongResponse:
        connection, _reused = self._acquire()
        try:
            pong = connection.ping(
                self._rng.randrange(1 << 30), self.request_timeout
            )
        except Exception:
            connection.close()
            raise
        with self._lock:
            self.stats["pings"] += 1
        self._release(connection)
        return pong

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ConnectionPool({self.address[0]}:{self.address[1]}, "
            f"idle={len(self._idle)}/{self.size})"
        )


class RemoteFullNode:
    """A full node on the other end of a socket, behind the same duck.

    Implements the handler surface the light node, session, and fault
    wrappers already consume, so ``QuerySession(light, [Peer("remote",
    RemoteFullNode(addr))])`` — including a ``FaultyTransport`` factory
    on the peer — runs the whole resilience stack over real TCP.  An
    :class:`ErrorResponse` frame is rebuilt into its typed exception;
    response *contents* stay untrusted and go through §V verification
    exactly as before.
    """

    def __init__(
        self,
        address: Optional[Tuple[str, int]] = None,
        *,
        pool: Optional[ConnectionPool] = None,
        **pool_kwargs,
    ) -> None:
        if pool is None:
            if address is None:
                raise ValueError("RemoteFullNode needs an address or a pool")
            pool = ConnectionPool(address, **pool_kwargs)
        elif pool_kwargs:
            raise ValueError("pass pool kwargs or a pool, not both")
        self.pool = pool

    def _rpc(self, payload: bytes) -> bytes:
        response = self.pool.request(payload)
        if response and response[0] == ErrorResponse.type_tag:
            raise error_from_frame(ErrorResponse.deserialize(response))
        return response

    # -- FullNode handler surface -----------------------------------------

    def handle_query(self, payload: bytes) -> bytes:
        return self._rpc(payload)

    def handle_batch_query(self, payload: bytes) -> bytes:
        return self._rpc(payload)

    def handle_headers(self, payload: bytes) -> bytes:
        return self._rpc(payload)

    @property
    def tip_height(self) -> int:
        """The peer's advisory tip (from a pong; never trusted blindly)."""
        return self.pool.ping().tip_height

    def ping(self) -> PongResponse:
        return self.pool.ping()

    def close(self) -> None:
        self.pool.close()

    def __repr__(self) -> str:
        host, port = self.pool.address
        return f"RemoteFullNode({host}:{port})"


__all__ = [
    "ClientConnection",
    "ConnectionPool",
    "RemoteFullNode",
    "error_from_frame",
]
