"""Wire messages of the simulated RPC protocol.

The paper runs its query over an RPC link between a light-node client and
a full-node server; the communication cost it reports is the size of the
response.  These message classes give that cost a concrete wire form: a
one-byte type tag plus a length-exact payload.  The transport layer counts
``len(message.serialize())`` per direction.
"""

from __future__ import annotations

from typing import List

from repro.chain.block import BlockHeader, deserialize_extension
from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.crypto.hashing import HASH_SIZE
from repro.errors import EncodingError
from repro.query.config import SystemConfig
from repro.query.result import QueryResult

_MSG_QUERY_REQUEST = 1
_MSG_QUERY_RESPONSE = 2
_MSG_HEADERS_REQUEST = 3
_MSG_HEADERS_RESPONSE = 4
_MSG_BATCH_REQUEST = 5
_MSG_BATCH_RESPONSE = 6
_MSG_DELTA_HEADERS_REQUEST = 7
_MSG_DELTA_HEADERS_RESPONSE = 8
_MSG_AGG_BATCH_REQUEST = 9
_MSG_AGG_BATCH_RESPONSE = 10
_MSG_ERROR = 11
_MSG_PING = 12
_MSG_PONG = 13
# Subscription tags start at 0x14: 0x0e-0x13 are left unassigned so the
# compression frame markers (0x10/0x11, transport.py) and room around
# them can never be mistaken for a message tag on first-byte dispatch.
_MSG_SUBSCRIBE_REQUEST = 20
_MSG_SUBSCRIBE_ACK = 21
_MSG_UNSUBSCRIBE_REQUEST = 22
_MSG_PUSH_UPDATE = 23
_MSG_PUSH_RETRACTION = 24
_MSG_SUBSCRIPTION_EVICTED = 25
_MSG_HELLO = 26

#: Wire encodings for RequestShedError params (PROTOCOL.md §11.3): the
#: priority class and shed state ride as indices into these tuples so a
#: client rebuilds the typed refusal without trusting free-form strings.
SHED_PRIORITIES = ("interactive", "sync", "batch", "backfill")
SHED_STATES = ("normal", "shed_batch", "shed_low", "shed_all")


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) if not (z & 1) else -((z + 1) >> 1)


class QueryRequest:
    """Light → full: "send me the verifiable history of this address".

    ``first_height``/``last_height`` optionally restrict the query to a
    height range; ``last_height = 0`` means "up to your tip" (the client
    cross-checks the answered range against its own headers).
    """

    __slots__ = ("address", "first_height", "last_height")

    type_tag = _MSG_QUERY_REQUEST

    def __init__(
        self, address: str, first_height: int = 1, last_height: int = 0
    ) -> None:
        if first_height < 1 or last_height < 0:
            raise EncodingError(
                f"bad query range [{first_height},{last_height}]"
            )
        self.address = address
        self.first_height = first_height
        self.last_height = last_height

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_var_bytes(self.address.encode("utf-8"))
            + write_varint(self.first_height)
            + write_varint(self.last_height)
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "QueryRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        address = _utf8(reader.var_bytes())
        first_height = reader.varint()
        last_height = reader.varint()
        reader.finish()
        return cls(address, first_height, last_height)


class QueryResponse:
    """Full → light: the complete :class:`QueryResult`."""

    __slots__ = ("result",)

    type_tag = _MSG_QUERY_RESPONSE

    def __init__(self, result: QueryResult) -> None:
        self.result = result

    def serialize(self, config: SystemConfig) -> bytes:
        return bytes([self.type_tag]) + self.result.serialize(config)

    @classmethod
    def deserialize(cls, payload: bytes, config: SystemConfig) -> "QueryResponse":
        if not payload or payload[0] != cls.type_tag:
            raise EncodingError("not a query response")
        return cls(QueryResult.deserialize(payload[1:], config))


class BatchQueryRequest:
    """Light → full: verifiable histories for several addresses at once."""

    __slots__ = ("addresses", "first_height", "last_height")

    type_tag = _MSG_BATCH_REQUEST

    def __init__(
        self,
        addresses: "List[str]",
        first_height: int = 1,
        last_height: int = 0,
    ) -> None:
        if not addresses:
            raise EncodingError("batch request needs at least one address")
        if first_height < 1 or last_height < 0:
            raise EncodingError(
                f"bad query range [{first_height},{last_height}]"
            )
        self.addresses = addresses
        self.first_height = first_height
        self.last_height = last_height

    def serialize(self) -> bytes:
        parts = [bytes([self.type_tag]), write_varint(len(self.addresses))]
        parts.extend(
            write_var_bytes(address.encode("utf-8"))
            for address in self.addresses
        )
        parts.append(write_varint(self.first_height))
        parts.append(write_varint(self.last_height))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "BatchQueryRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        count = reader.varint()
        if count == 0 or count > 10_000:
            raise EncodingError(f"implausible batch size {count}")
        addresses = [_utf8(reader.var_bytes()) for _ in range(count)]
        first_height = reader.varint()
        last_height = reader.varint()
        reader.finish()
        return cls(addresses, first_height, last_height)


class BatchQueryResponse:
    """Full → light: one :class:`BatchQueryResult` for the whole request."""

    __slots__ = ("batch",)

    type_tag = _MSG_BATCH_RESPONSE

    def __init__(self, batch) -> None:
        self.batch = batch

    def serialize(self, config: SystemConfig) -> bytes:
        return bytes([self.type_tag]) + self.batch.serialize(config)

    @classmethod
    def deserialize(
        cls, payload: bytes, config: SystemConfig
    ) -> "BatchQueryResponse":
        from repro.query.batch import BatchQueryResult

        if not payload or payload[0] != cls.type_tag:
            raise EncodingError("not a batch query response")
        return cls(BatchQueryResult.deserialize(payload[1:], config))


class HeadersRequest:
    """Light → full: "send headers from this height on" (initial sync)."""

    __slots__ = ("from_height",)

    type_tag = _MSG_HEADERS_REQUEST

    def __init__(self, from_height: int = 0) -> None:
        if from_height < 0:
            raise EncodingError(f"negative height {from_height}")
        self.from_height = from_height

    def serialize(self) -> bytes:
        return bytes([self.type_tag]) + write_varint(self.from_height)

    @classmethod
    def deserialize(cls, payload: bytes) -> "HeadersRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        from_height = reader.varint()
        reader.finish()
        return cls(from_height)


class HeadersResponse:
    """Full → light: consecutive headers (the light node's whole storage)."""

    __slots__ = ("from_height", "headers")

    type_tag = _MSG_HEADERS_RESPONSE

    def __init__(self, from_height: int, headers: List[BlockHeader]) -> None:
        self.from_height = from_height
        self.headers = headers

    def serialize(self) -> bytes:
        parts = [
            bytes([self.type_tag]),
            write_varint(self.from_height),
            write_varint(len(self.headers)),
        ]
        parts.extend(
            write_var_bytes(header.serialize()) for header in self.headers
        )
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls, payload: bytes, extension_kind: int, bloom_bytes: int = 0
    ) -> "HeadersResponse":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        from_height = reader.varint()
        count = reader.varint()
        if count > 100_000_000:
            raise EncodingError(f"implausible header count {count}")
        headers = []
        for _ in range(count):
            header_reader = ByteReader(reader.var_bytes())
            headers.append(
                BlockHeader.deserialize(header_reader, extension_kind, bloom_bytes)
            )
            header_reader.finish()
        reader.finish()
        return cls(from_height, headers)


class DeltaHeadersRequest(HeadersRequest):
    """Light → full: headers from a height on, delta-encoded (§8.2).

    Same payload shape as :class:`HeadersRequest`; the tag alone selects
    the response encoding, which is how compression is "negotiated" —
    an old server simply rejects the unknown tag.
    """

    type_tag = _MSG_DELTA_HEADERS_REQUEST


class DeltaHeadersResponse:
    """Full → light: consecutive headers with the prev-hash implied.

    The first header ships in full; each subsequent one omits its 32-byte
    ``prev_hash`` (the chain link makes it equal to the previous header's
    id) and varint-packs the small core fields, with the timestamp as a
    zigzag delta.  The decoder *derives* the missing prev-hash by hashing
    the previous header, so a server cannot smuggle in a header whose
    linkage the client has not itself recomputed.
    """

    __slots__ = ("from_height", "headers")

    type_tag = _MSG_DELTA_HEADERS_RESPONSE

    def __init__(self, from_height: int, headers: List[BlockHeader]) -> None:
        self.from_height = from_height
        self.headers = headers

    def serialize(self) -> bytes:
        parts = [
            bytes([self.type_tag]),
            write_varint(self.from_height),
            write_varint(len(self.headers)),
        ]
        previous = None
        for header in self.headers:
            if previous is None:
                parts.append(write_var_bytes(header.serialize()))
            else:
                if header.prev_hash != previous.block_id():
                    raise EncodingError(
                        "delta header encoding requires chained headers"
                    )
                parts.append(write_varint(header.version))
                parts.append(
                    write_varint(_zigzag(header.timestamp - previous.timestamp))
                )
                parts.append(write_varint(header.bits))
                parts.append(write_varint(header.nonce))
                parts.append(header.merkle_root)
                parts.append(header.extension.serialize())
            previous = header
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls, payload: bytes, extension_kind: int, bloom_bytes: int = 0
    ) -> "DeltaHeadersResponse":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        from_height = reader.varint()
        count = reader.varint()
        if count > 100_000_000:
            raise EncodingError(f"implausible header count {count}")
        headers: List[BlockHeader] = []
        previous = None
        for _ in range(count):
            if previous is None:
                header_reader = ByteReader(reader.var_bytes())
                previous = BlockHeader.deserialize(
                    header_reader, extension_kind, bloom_bytes
                )
                header_reader.finish()
            else:
                version = reader.varint()
                timestamp = previous.timestamp + _unzigzag(reader.varint())
                if timestamp < 0:
                    raise EncodingError("delta header timestamp underflow")
                bits = reader.varint()
                nonce = reader.varint()
                merkle_root = reader.bytes(HASH_SIZE)
                extension = deserialize_extension(
                    reader, extension_kind, bloom_bytes
                )
                previous = BlockHeader(
                    previous.block_id(),
                    merkle_root,
                    timestamp,
                    extension,
                    version,
                    bits,
                    nonce,
                )
            headers.append(previous)
        reader.finish()
        return cls(from_height, headers)


class AggregatedBatchRequest(BatchQueryRequest):
    """Light → full: a batch query answered with the aggregated encoding.

    Identical payload to :class:`BatchQueryRequest`; the tag selects the
    response format (§8.1).
    """

    type_tag = _MSG_AGG_BATCH_REQUEST


class AggregatedBatchResponse:
    """Full → light: a :class:`BatchQueryResult` in blob-table form."""

    __slots__ = ("batch",)

    type_tag = _MSG_AGG_BATCH_RESPONSE

    def __init__(self, batch) -> None:
        self.batch = batch

    def serialize(self, config: SystemConfig) -> bytes:
        from repro.query.aggregate import encode_aggregated_batch

        return bytes([self.type_tag]) + encode_aggregated_batch(
            self.batch, config
        )

    @classmethod
    def deserialize(
        cls, payload: bytes, config: SystemConfig
    ) -> "AggregatedBatchResponse":
        from repro.query.aggregate import decode_aggregated_batch

        if not payload or payload[0] != cls.type_tag:
            raise EncodingError("not an aggregated batch response")
        return cls(decode_aggregated_batch(payload[1:], config))


class ErrorResponse:
    """Server → client: a typed failure instead of a result frame (§9).

    In-process, a handler failure propagates as a Python exception; over
    a socket it must take a wire form.  ``kind`` names the exception
    class (from :mod:`repro.errors`), ``message`` is its text, and
    ``params`` carries kind-specific non-negative integers (queue depth
    and bound for ``ServerOverloadedError``, active count and gate for
    ``ConnectionLimitError``) so the client can rebuild the exact typed
    error that peer scoring and retry machinery already classify.
    """

    __slots__ = ("kind", "message", "params")

    type_tag = _MSG_ERROR

    def __init__(
        self, kind: str, message: str, params: "tuple[int, ...]" = ()
    ) -> None:
        if not kind:
            raise EncodingError("error frame needs a kind")
        params = tuple(int(value) for value in params)
        if any(value < 0 for value in params):
            raise EncodingError(f"negative error param in {params}")
        self.kind = kind
        self.message = message
        self.params = params

    @classmethod
    def from_exception(cls, error: Exception) -> "ErrorResponse":
        from repro.errors import (
            BackpressureError,
            ConnectionLimitError,
            RateLimitedError,
            RequestShedError,
            ServerOverloadedError,
            SubscriberEvictedError,
        )

        def _retry_ms(err: BackpressureError) -> int:
            # Wire params are non-negative varints; the retry-after hint
            # rides as integer milliseconds (0 = no hint).
            if err.retry_after is None or err.retry_after <= 0:
                return 0
            return max(1, int(err.retry_after * 1000.0))

        def _index(options: "tuple[str, ...]", name: str) -> int:
            try:
                return options.index(name)
            except ValueError:
                return len(options)  # out-of-range = "unknown" on rebuild

        params: "tuple[int, ...]" = ()
        if isinstance(error, ServerOverloadedError):
            params = (error.pending, error.max_pending, _retry_ms(error))
        elif isinstance(error, ConnectionLimitError):
            params = (error.active, error.max_connections, _retry_ms(error))
        elif isinstance(error, RateLimitedError):
            params = (_retry_ms(error),)
        elif isinstance(error, RequestShedError):
            params = (
                _index(SHED_PRIORITIES, error.priority),
                _index(SHED_STATES, error.state),
                _retry_ms(error),
            )
        elif isinstance(error, SubscriberEvictedError):
            params = (error.subscription_id, error.dropped_frames)
        return cls(type(error).__name__, str(error), params)

    def serialize(self) -> bytes:
        parts = [
            bytes([self.type_tag]),
            write_var_bytes(self.kind.encode("utf-8")),
            write_var_bytes(self.message.encode("utf-8")),
            write_varint(len(self.params)),
        ]
        parts.extend(write_varint(value) for value in self.params)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "ErrorResponse":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        kind = _utf8(reader.var_bytes())
        message = _utf8(reader.var_bytes())
        count = reader.varint()
        if count > 16:
            raise EncodingError(f"implausible error param count {count}")
        params = tuple(reader.varint() for _ in range(count))
        reader.finish()
        return cls(kind, message, params)

    def __repr__(self) -> str:
        return f"ErrorResponse({self.kind}: {self.message!r})"


class PingRequest:
    """Client → server: liveness/health probe, answered inline (§9.4).

    The net server replies without queueing a worker, so a pong proves
    the event loop is alive even when the query queue is saturated.
    ``nonce`` is echoed back, binding each pong to its ping.
    """

    __slots__ = ("nonce",)

    type_tag = _MSG_PING

    def __init__(self, nonce: int = 0) -> None:
        if nonce < 0:
            raise EncodingError(f"negative ping nonce {nonce}")
        self.nonce = nonce

    def serialize(self) -> bytes:
        return bytes([self.type_tag]) + write_varint(self.nonce)

    @classmethod
    def deserialize(cls, payload: bytes) -> "PingRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        nonce = reader.varint()
        reader.finish()
        return cls(nonce)


class PongResponse:
    """Server → client: ping echo plus the served chain's tip height.

    The tip lets a pooled client learn the peer's height without paying
    for a header sync — it is *advisory* (nothing about it is verified);
    any data derived from it still goes through the usual proof checks.
    """

    __slots__ = ("nonce", "tip_height")

    type_tag = _MSG_PONG

    def __init__(self, nonce: int, tip_height: int) -> None:
        if nonce < 0 or tip_height < 0:
            raise EncodingError(
                f"negative pong fields ({nonce}, {tip_height})"
            )
        self.nonce = nonce
        self.tip_height = tip_height

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_varint(self.nonce)
            + write_varint(self.tip_height)
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "PongResponse":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        nonce = reader.varint()
        tip_height = reader.varint()
        reader.finish()
        return cls(nonce, tip_height)


#: Hard bound on a declared client id: identity is an accounting key,
#: not a payload — a hostile peer must not stuff kilobytes into it.
MAX_CLIENT_ID_BYTES = 64


class HelloRequest:
    """Client → server: declare a client identity for this connection.

    Optional and purely operational (§11): the id keys the server's
    per-client token bucket, so a wallet fleet behind one NAT is rate-
    limited per wallet instead of per source address.  Answered inline
    with a :class:`PongResponse` (nonce 0) carrying the advisory tip —
    like the ping path, a hello never queues behind query work.  The id
    grants nothing: it can only *narrow* a rate bucket, and an unsent
    hello leaves the connection keyed by its socket peer.
    """

    __slots__ = ("client_id",)

    type_tag = _MSG_HELLO

    def __init__(self, client_id: str) -> None:
        if not client_id:
            raise EncodingError("hello needs a non-empty client id")
        if len(client_id.encode("utf-8")) > MAX_CLIENT_ID_BYTES:
            raise EncodingError(
                f"client id exceeds {MAX_CLIENT_ID_BYTES} bytes"
            )
        self.client_id = client_id

    def serialize(self) -> bytes:
        return bytes([self.type_tag]) + write_var_bytes(
            self.client_id.encode("utf-8")
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "HelloRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        client_id = _utf8(reader.var_bytes())
        reader.finish()
        return cls(client_id)


#: Hard bound on watch-set size: large enough for any wallet, small
#: enough that a hostile subscribe cannot make the server build
#: megaframe updates on every append.
MAX_WATCH_ADDRESSES = 1024


class SubscribeRequest:
    """Client → server: "push me verifiable updates for these addresses".

    The address list becomes the subscription's watch set; every pushed
    :class:`PushUpdate` answers exactly this list, in this order, so the
    client can pin ``expected_addresses`` during verification (§10.2).
    """

    __slots__ = ("addresses",)

    type_tag = _MSG_SUBSCRIBE_REQUEST

    def __init__(self, addresses: "List[str]") -> None:
        if not addresses:
            raise EncodingError("subscription needs at least one address")
        if len(addresses) > MAX_WATCH_ADDRESSES:
            raise EncodingError(
                f"watch set of {len(addresses)} exceeds the "
                f"{MAX_WATCH_ADDRESSES}-address bound"
            )
        if any(not address for address in addresses):
            raise EncodingError("empty address in watch set")
        if len(set(addresses)) != len(addresses):
            raise EncodingError("watch set addresses must be distinct")
        self.addresses = list(addresses)

    def serialize(self) -> bytes:
        parts = [bytes([self.type_tag]), write_varint(len(self.addresses))]
        parts.extend(
            write_var_bytes(address.encode("utf-8"))
            for address in self.addresses
        )
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "SubscribeRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        count = reader.varint()
        if count == 0 or count > MAX_WATCH_ADDRESSES:
            raise EncodingError(f"implausible watch set size {count}")
        addresses = [_utf8(reader.var_bytes()) for _ in range(count)]
        reader.finish()
        return cls(addresses)


class SubscribeAck:
    """Server → client: the subscription is registered.

    ``tip_height`` is the server's tip *at registration*: every block
    appended after this moment will be pushed, so a client whose local
    tip lags the ack tip knows exactly the gap it must backfill with a
    normal (verified) range query.  Like the pong tip, the value itself
    is advisory — data derived from it still passes full verification.
    Also answers :class:`UnsubscribeRequest` (same shape, same fields).
    """

    __slots__ = ("subscription_id", "tip_height")

    type_tag = _MSG_SUBSCRIBE_ACK

    def __init__(self, subscription_id: int, tip_height: int) -> None:
        if subscription_id < 1 or tip_height < 0:
            raise EncodingError(
                f"bad subscribe ack ({subscription_id}, {tip_height})"
            )
        self.subscription_id = subscription_id
        self.tip_height = tip_height

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_varint(self.subscription_id)
            + write_varint(self.tip_height)
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "SubscribeAck":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        subscription_id = reader.varint()
        tip_height = reader.varint()
        reader.finish()
        return cls(subscription_id, tip_height)


class UnsubscribeRequest:
    """Client → server: drop one subscription (answered by an ack)."""

    __slots__ = ("subscription_id",)

    type_tag = _MSG_UNSUBSCRIBE_REQUEST

    def __init__(self, subscription_id: int) -> None:
        if subscription_id < 1:
            raise EncodingError(f"bad subscription id {subscription_id}")
        self.subscription_id = subscription_id

    def serialize(self) -> bytes:
        return bytes([self.type_tag]) + write_varint(self.subscription_id)

    @classmethod
    def deserialize(cls, payload: bytes) -> "UnsubscribeRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        subscription_id = reader.varint()
        reader.finish()
        return cls(subscription_id)


class PushUpdate:
    """Server → client (unsolicited): one appended block, proven.

    ``header_bytes`` is the new block's full header; ``batch_bytes`` is
    a serialized :class:`~repro.query.batch.BatchQueryResult` answering
    the subscription's watch set over the single-height range
    ``[height, height]``, built *at tip == height* (inside the append
    listener, before the chain can move again).  The client links the
    header onto its local chain, then runs the identical
    ``verify_batch_result`` path a pull query uses — quiet addresses
    arrive as BF-negative attestations, hits as SMT existence plus
    Merkle/BMT inclusion proofs.  Nothing here is trusted unverified.

    The batch stays opaque bytes at this layer because decoding needs
    the chain's :class:`~repro.query.config.SystemConfig`; the client
    decodes with its own trusted config, never one supplied by a peer.
    """

    __slots__ = ("height", "header_bytes", "batch_bytes")

    type_tag = _MSG_PUSH_UPDATE

    def __init__(
        self, height: int, header_bytes: bytes, batch_bytes: bytes
    ) -> None:
        if height < 1:
            raise EncodingError(f"bad push update height {height}")
        if not header_bytes or not batch_bytes:
            raise EncodingError("push update needs header and batch bytes")
        self.height = height
        self.header_bytes = header_bytes
        self.batch_bytes = batch_bytes

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_varint(self.height)
            + write_var_bytes(self.header_bytes)
            + write_var_bytes(self.batch_bytes)
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "PushUpdate":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        height = reader.varint()
        header_bytes = reader.var_bytes()
        batch_bytes = reader.var_bytes()
        reader.finish()
        return cls(height, header_bytes, batch_bytes)


class PushRetraction:
    """Server → client (unsolicited): blocks above ``fork_height`` are gone.

    Sent from the reorg listener the moment the server rolls back; the
    replacement blocks follow as ordinary :class:`PushUpdate` frames
    whose headers must *link* onto the retained prefix — that linkage
    plus their batch proofs is what actually authorizes the switch.  A
    fabricated retraction can therefore only cost the client a
    re-verification round trip (deny), never install wrong history
    (deceive).  ``old_tip`` is advisory: the tip the server had before
    rolling back, letting the client report the retracted span.
    """

    __slots__ = ("fork_height", "old_tip")

    type_tag = _MSG_PUSH_RETRACTION

    def __init__(self, fork_height: int, old_tip: int) -> None:
        if fork_height < 0 or old_tip < fork_height:
            raise EncodingError(
                f"bad retraction ({fork_height}, {old_tip})"
            )
        self.fork_height = fork_height
        self.old_tip = old_tip

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_varint(self.fork_height)
            + write_varint(self.old_tip)
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "PushRetraction":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        fork_height = reader.varint()
        old_tip = reader.varint()
        reader.finish()
        return cls(fork_height, old_tip)


class SubscriptionEvicted:
    """Server → client (unsolicited, final): slow-consumer eviction (§10.5).

    When a subscriber's bounded outbox overflows, the server reclaims
    the queued frames, delivers this one frame in their place, and
    closes the connection.  The client rebuilds it as a typed
    :class:`~repro.errors.SubscriberEvictedError`.
    """

    __slots__ = ("subscription_id", "dropped_frames", "reason")

    type_tag = _MSG_SUBSCRIPTION_EVICTED

    def __init__(
        self, subscription_id: int, dropped_frames: int, reason: str
    ) -> None:
        if subscription_id < 1 or dropped_frames < 0:
            raise EncodingError(
                f"bad eviction ({subscription_id}, {dropped_frames})"
            )
        self.subscription_id = subscription_id
        self.dropped_frames = dropped_frames
        self.reason = reason

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_varint(self.subscription_id)
            + write_varint(self.dropped_frames)
            + write_var_bytes(self.reason.encode("utf-8"))
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "SubscriptionEvicted":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        subscription_id = reader.varint()
        dropped_frames = reader.varint()
        reason = _utf8(reader.var_bytes())
        reader.finish()
        return cls(subscription_id, dropped_frames, reason)

    def to_error(self):
        from repro.errors import SubscriberEvictedError

        return SubscriberEvictedError(
            self.subscription_id, self.dropped_frames, self.reason
        )


def _expect_tag(reader: ByteReader, tag: int) -> None:
    actual = reader.bytes(1)[0]
    if actual != tag:
        raise EncodingError(f"expected message tag {tag}, got {actual}")


def _utf8(raw: bytes) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EncodingError(f"not UTF-8: {exc}") from exc
