"""Wire messages of the simulated RPC protocol.

The paper runs its query over an RPC link between a light-node client and
a full-node server; the communication cost it reports is the size of the
response.  These message classes give that cost a concrete wire form: a
one-byte type tag plus a length-exact payload.  The transport layer counts
``len(message.serialize())`` per direction.
"""

from __future__ import annotations

from typing import List

from repro.chain.block import BlockHeader
from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.errors import EncodingError
from repro.query.config import SystemConfig
from repro.query.result import QueryResult

_MSG_QUERY_REQUEST = 1
_MSG_QUERY_RESPONSE = 2
_MSG_HEADERS_REQUEST = 3
_MSG_HEADERS_RESPONSE = 4
_MSG_BATCH_REQUEST = 5
_MSG_BATCH_RESPONSE = 6


class QueryRequest:
    """Light → full: "send me the verifiable history of this address".

    ``first_height``/``last_height`` optionally restrict the query to a
    height range; ``last_height = 0`` means "up to your tip" (the client
    cross-checks the answered range against its own headers).
    """

    __slots__ = ("address", "first_height", "last_height")

    type_tag = _MSG_QUERY_REQUEST

    def __init__(
        self, address: str, first_height: int = 1, last_height: int = 0
    ) -> None:
        if first_height < 1 or last_height < 0:
            raise EncodingError(
                f"bad query range [{first_height},{last_height}]"
            )
        self.address = address
        self.first_height = first_height
        self.last_height = last_height

    def serialize(self) -> bytes:
        return (
            bytes([self.type_tag])
            + write_var_bytes(self.address.encode("utf-8"))
            + write_varint(self.first_height)
            + write_varint(self.last_height)
        )

    @classmethod
    def deserialize(cls, payload: bytes) -> "QueryRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        address = _utf8(reader.var_bytes())
        first_height = reader.varint()
        last_height = reader.varint()
        reader.finish()
        return cls(address, first_height, last_height)


class QueryResponse:
    """Full → light: the complete :class:`QueryResult`."""

    __slots__ = ("result",)

    type_tag = _MSG_QUERY_RESPONSE

    def __init__(self, result: QueryResult) -> None:
        self.result = result

    def serialize(self, config: SystemConfig) -> bytes:
        return bytes([self.type_tag]) + self.result.serialize(config)

    @classmethod
    def deserialize(cls, payload: bytes, config: SystemConfig) -> "QueryResponse":
        if not payload or payload[0] != cls.type_tag:
            raise EncodingError("not a query response")
        return cls(QueryResult.deserialize(payload[1:], config))


class BatchQueryRequest:
    """Light → full: verifiable histories for several addresses at once."""

    __slots__ = ("addresses", "first_height", "last_height")

    type_tag = _MSG_BATCH_REQUEST

    def __init__(
        self,
        addresses: "List[str]",
        first_height: int = 1,
        last_height: int = 0,
    ) -> None:
        if not addresses:
            raise EncodingError("batch request needs at least one address")
        if first_height < 1 or last_height < 0:
            raise EncodingError(
                f"bad query range [{first_height},{last_height}]"
            )
        self.addresses = addresses
        self.first_height = first_height
        self.last_height = last_height

    def serialize(self) -> bytes:
        parts = [bytes([self.type_tag]), write_varint(len(self.addresses))]
        parts.extend(
            write_var_bytes(address.encode("utf-8"))
            for address in self.addresses
        )
        parts.append(write_varint(self.first_height))
        parts.append(write_varint(self.last_height))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "BatchQueryRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        count = reader.varint()
        if count == 0 or count > 10_000:
            raise EncodingError(f"implausible batch size {count}")
        addresses = [_utf8(reader.var_bytes()) for _ in range(count)]
        first_height = reader.varint()
        last_height = reader.varint()
        reader.finish()
        return cls(addresses, first_height, last_height)


class BatchQueryResponse:
    """Full → light: one :class:`BatchQueryResult` for the whole request."""

    __slots__ = ("batch",)

    type_tag = _MSG_BATCH_RESPONSE

    def __init__(self, batch) -> None:
        self.batch = batch

    def serialize(self, config: SystemConfig) -> bytes:
        return bytes([self.type_tag]) + self.batch.serialize(config)

    @classmethod
    def deserialize(
        cls, payload: bytes, config: SystemConfig
    ) -> "BatchQueryResponse":
        from repro.query.batch import BatchQueryResult

        if not payload or payload[0] != cls.type_tag:
            raise EncodingError("not a batch query response")
        return cls(BatchQueryResult.deserialize(payload[1:], config))


class HeadersRequest:
    """Light → full: "send headers from this height on" (initial sync)."""

    __slots__ = ("from_height",)

    type_tag = _MSG_HEADERS_REQUEST

    def __init__(self, from_height: int = 0) -> None:
        if from_height < 0:
            raise EncodingError(f"negative height {from_height}")
        self.from_height = from_height

    def serialize(self) -> bytes:
        return bytes([self.type_tag]) + write_varint(self.from_height)

    @classmethod
    def deserialize(cls, payload: bytes) -> "HeadersRequest":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        from_height = reader.varint()
        reader.finish()
        return cls(from_height)


class HeadersResponse:
    """Full → light: consecutive headers (the light node's whole storage)."""

    __slots__ = ("from_height", "headers")

    type_tag = _MSG_HEADERS_RESPONSE

    def __init__(self, from_height: int, headers: List[BlockHeader]) -> None:
        self.from_height = from_height
        self.headers = headers

    def serialize(self) -> bytes:
        parts = [
            bytes([self.type_tag]),
            write_varint(self.from_height),
            write_varint(len(self.headers)),
        ]
        parts.extend(
            write_var_bytes(header.serialize()) for header in self.headers
        )
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls, payload: bytes, extension_kind: int, bloom_bytes: int = 0
    ) -> "HeadersResponse":
        reader = ByteReader(payload)
        _expect_tag(reader, cls.type_tag)
        from_height = reader.varint()
        count = reader.varint()
        if count > 100_000_000:
            raise EncodingError(f"implausible header count {count}")
        headers = []
        for _ in range(count):
            header_reader = ByteReader(reader.var_bytes())
            headers.append(
                BlockHeader.deserialize(header_reader, extension_kind, bloom_bytes)
            )
            header_reader.finish()
        reader.finish()
        return cls(from_height, headers)


def _expect_tag(reader: ByteReader, tag: int) -> None:
    actual = reader.bytes(1)[0]
    if actual != tag:
        raise EncodingError(f"expected message tag {tag}, got {actual}")


def _utf8(raw: bytes) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EncodingError(f"not UTF-8: {exc}") from exc
