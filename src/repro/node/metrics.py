"""Prometheus-style text metrics for a serving node (PROTOCOL.md §11.5).

Operating the admission-controlled server (DESIGN.md §11) without
seeing its state means flying blind into a shed storm, so this module
renders every counter the serving stack already tracks — queue depth
and latency percentiles from :class:`~repro.node.server.QueryServer`,
shed/ratelimit/watermark counters from the admission controller, cache
hit rates, outbox-eviction accounting from the subscription registry,
frame and byte counters from :class:`~repro.node.net.NetServer` — in
the Prometheus text exposition format (version 0.0.4), served by a tiny
stdlib HTTP listener (`repro serve --metrics-port`).

The exporter is strictly read-only and best-effort: it snapshots the
same ``stats()`` dictionaries the test suite asserts on, never takes a
lock the serving path contends on beyond those snapshots, and a scrape
can never make the server refuse, shed, or answer differently.

:func:`parse_metrics` is the inverse used by the bench harness and the
tests — parse a scrape back into ``{"name{labels}": value}``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

_PREFIX = "lvq"

#: Admission states in escalation order → numeric gauge value.
_STATE_VALUES = {"normal": 0, "shed_batch": 1, "shed_low": 2, "shed_all": 3}


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class _Lines:
    """Accumulates exposition lines, emitting HELP/TYPE once per metric."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._seen: "set[str]" = set()

    def add(
        self,
        name: str,
        value: object,
        labels: "Optional[Dict[str, str]]" = None,
        *,
        kind: str = "gauge",
        help_text: str = "",
    ) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        metric = f"{_PREFIX}_{name}"
        if metric not in self._seen:
            self._seen.add(metric)
            if help_text:
                self._lines.append(f"# HELP {metric} {help_text}")
            self._lines.append(f"# TYPE {metric} {kind}")
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in sorted(labels.items())
            )
            self._lines.append(f"{metric}{{{rendered}}} {value}")
        else:
            self._lines.append(f"{metric} {value}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


def _render_latency(lines: _Lines, stage: str, summary: "dict") -> None:
    for quantile in ("p50_ms", "p99_ms", "mean_ms", "max_ms"):
        lines.add(
            "latency_ms",
            summary.get(quantile),
            {"stage": stage, "quantile": quantile[:-3]},
            help_text="Request latency summary in milliseconds.",
        )
    lines.add(
        "latency_samples",
        summary.get("count"),
        {"stage": stage},
        help_text="Samples in the latency window.",
    )


def render_metrics(
    server=None,
    net=None,
    subscriptions=None,
    extra: "Optional[Dict[str, float]]" = None,
) -> str:
    """Render one scrape for any subset of the serving stack.

    ``server`` is a :class:`~repro.node.server.QueryServer`, ``net`` a
    :class:`~repro.node.net.NetServer`, ``subscriptions`` a
    :class:`~repro.node.subscribe.SubscriptionRegistry`; ``extra`` adds
    flat caller-defined gauges (bench instrumentation).
    """
    lines = _Lines()
    if server is not None:
        stats = server.stats()
        lines.add("workers", stats["workers"],
                  help_text="Worker threads in the query pool.")
        lines.add("queue_depth", stats["queue_depth"],
                  help_text="Requests admitted but not yet running.")
        lines.add("queue_depth_peak", stats["peak_queue_depth"],
                  help_text="Peak queue depth since start.")
        lines.add("queue_bound", stats["max_pending"],
                  help_text="Hard bound on queued requests.")
        lines.add("in_flight", stats["in_flight"],
                  help_text="Requests currently executing.")
        for counter in ("submitted", "rejected", "completed", "failed",
                        "reorgs"):
            lines.add(f"requests_{counter}_total", stats[counter],
                      kind="counter",
                      help_text=f"Requests {counter} since start.")
        for stage, key in (("total", "latency"), ("wait", "queue_wait"),
                           ("service", "service")):
            _render_latency(lines, stage, stats[key])

        admission = stats["admission"]
        state = admission["state"]
        lines.add("admission_state", _STATE_VALUES.get(state, -1),
                  help_text="Shed state: 0 normal, 1 shed_batch, "
                            "2 shed_low, 3 shed_all.")
        lines.add("admission_state_info", 1, {"state": state},
                  help_text="Current shed state as a label.")
        lines.add("admission_transitions_total", admission["transitions"],
                  kind="counter",
                  help_text="Watermark state transitions since start.")
        lines.add("admitted_total", admission["admitted"], kind="counter",
                  help_text="Requests past admission since start.")
        lines.add("shed_total", admission["shed"], kind="counter",
                  help_text="Requests refused by watermark shedding.")
        for shed_state, count in admission["shed_by_state"].items():
            lines.add("shed_by_state_total", count, {"state": shed_state},
                      kind="counter",
                      help_text="Shed refusals per watermark state.")
        lines.add("ratelimited_total", admission["ratelimited"],
                  kind="counter",
                  help_text="Requests refused by per-client rate limits.")
        lines.add("queue_full_total", admission["queue_full"],
                  kind="counter",
                  help_text="Requests refused at the hard queue bound.")
        for class_name, counters in admission["classes"].items():
            for counter, value in counters.items():
                lines.add(f"class_{counter}", value,
                          {"class": class_name},
                          kind="gauge" if counter == "queued" else "counter",
                          help_text=f"Per-priority-class {counter}.")
        rate = admission.get("rate_limit")
        if rate:
            lines.add("ratelimit_clients", rate["clients"],
                      help_text="Client identities with live buckets.")
            lines.add("ratelimit_rejected_total", rate["rejected"],
                      kind="counter",
                      help_text="Token-bucket refusals since start.")
            lines.add("ratelimit_evicted_clients_total",
                      rate["evicted_clients"], kind="counter",
                      help_text="Idle identities evicted from the table.")

        for cache_name, cache in stats["caches"].items():
            if not isinstance(cache, dict):
                continue
            for counter, value in cache.items():
                lines.add("cache_counter", value,
                          {"cache": cache_name, "counter": counter},
                          kind="counter",
                          help_text="Raw cache counters.")
            hits = cache.get("hits")
            misses = cache.get("misses")
            if isinstance(hits, int) and isinstance(misses, int) \
                    and hits + misses > 0:
                lines.add("cache_hit_rate", hits / (hits + misses),
                          {"cache": cache_name},
                          help_text="hits / (hits + misses).")
    if net is not None:
        for counter, value in net.stats.as_dict().items():
            lines.add(f"net_{counter}_total", value, kind="counter",
                      help_text=f"Transport counter: {counter}.")
        lines.add("net_max_connections", net.max_connections,
                  help_text="Concurrent-connection gate.")
    if subscriptions is not None:
        stats = subscriptions.stats.as_dict()
        for counter, value in stats.items():
            kind = "gauge" if counter == "active" else "counter"
            lines.add(f"subscriptions_{counter}", value, kind=kind,
                      help_text=f"Subscription registry counter: {counter}.")
    if extra:
        for name, value in extra.items():
            lines.add(name, value, help_text="Caller-supplied gauge.")
    return lines.text()


def parse_metrics(text: str) -> "Dict[str, float]":
    """Parse an exposition scrape into ``{"name{labels}": value}``.

    The inverse of :func:`render_metrics` for the bench harness and the
    tests: comments are skipped, the label block (if any) is kept
    verbatim in the key, and values parse as floats.
    """
    parsed: "Dict[str, float]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"unparseable metrics line: {line!r}")
        parsed[key] = float(value)
    return parsed


class MetricsServer:
    """`/metrics` over stdlib HTTP on a daemon thread.

    Bound to loopback by default; ``port=0`` picks a free port
    (reported by :attr:`address` after :meth:`start`).  Any GET path
    answers the same scrape — there is nothing else to route.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        server=None,
        net=None,
        subscriptions=None,
        extra: "Optional[Dict[str, float]]" = None,
    ) -> None:
        self._sources = {
            "server": server,
            "net": net,
            "subscriptions": subscriptions,
            "extra": extra,
        }
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.scrapes = 0

    def render(self) -> str:
        self.scrapes += 1
        return render_metrics(**self._sources)

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    def start(self) -> "MetricsServer":
        metrics = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                try:
                    body = metrics.render().encode("utf-8")
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    self.send_response(500)
                    self.end_headers()
                    self.wfile.write(str(exc).encode("utf-8", "replace"))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes are periodic; keep stderr quiet

        self._httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        self._httpd.daemon_threads = True
        self._host, self._port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["MetricsServer", "parse_metrics", "render_metrics"]
