"""Length-framed asyncio TCP serving for the query protocol (PROTOCOL.md §9).

Everything before this module exchanged frames through a function call;
this is the piece that puts them on a real socket.  The wire format is
deliberately minimal — a 4-byte big-endian length prefix followed by one
existing wire-tag frame (tags 1–13, or a FRAME_ZLIB/FRAME_ZSTD
compressed frame) — so every byte after the prefix is already covered by
the strictness and chaos suites.

* :class:`NetServer` — serves a :class:`~repro.node.server.QueryServer`
  (or a bare :class:`~repro.node.full_node.FullNode`) over TCP with
  per-connection read/write deadlines, idle-connection reaping, a
  max-concurrent-connections gate that rejects with a typed
  :class:`~repro.errors.ConnectionLimitError` frame, graceful drain, and
  an :meth:`NetServer.abort` hard-kill for crash testing.  Handler
  failures cross the wire as :class:`~repro.node.messages.ErrorResponse`
  frames, so the client rebuilds the same typed exceptions the
  in-process path raises.
* :class:`SocketFaultInjector` — a frame-aware man-in-the-middle proxy
  speaking the same FaultSchedule language as PR 2's
  :class:`~repro.node.faults.FaultyTransport`, but with the faults
  realized at the socket layer: connection reset (RST), mid-frame
  stall, partial write followed by an abrupt FIN, byte corruption,
  frame swallowing, duplication and reordering.

The event loop runs on a dedicated daemon thread
(:class:`EventLoopThread`), so synchronous code — tests, the CLI, the
thread-based :class:`~repro.node.server.QueryServer` — drives servers
without owning an asyncio loop; many servers can share one loop thread.
"""

from __future__ import annotations

import asyncio
import struct
import threading
from collections import deque
from typing import Callable, Optional, Set, Tuple

from repro.errors import (
    ConnectionLimitError,
    EncodingError,
    QueryError,
    ReproError,
)
from repro.node import messages as _messages
from repro.node.faults import FaultKind, FaultSchedule
from repro.node.server import _DISPATCH
from repro.node.transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_ZLIB,
    FRAME_ZSTD,
    compress_frame,
    decompress_frame,
)

#: Frame header: payload length, 4-byte big-endian, length >= 1.
FRAME_HEADER = struct.Struct(">I")


class EventLoopThread:
    """An asyncio loop on a daemon thread, driven from synchronous code."""

    def __init__(self, name: str = "repro-net-loop") -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._started = threading.Event()
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        self.loop.run_forever()

    def call(self, coroutine, timeout: Optional[float] = None):
        """Run ``coroutine`` on the loop; block for (and return) its result."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        return future.result(timeout)

    def stop(self) -> None:
        if not self.loop.is_closed():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=5.0)
            self.loop.close()


class NetServerStats:
    """Connection- and frame-level counters for one :class:`NetServer`."""

    __slots__ = (
        "connections_accepted",
        "connections_rejected",
        "connections_reaped",
        "deadline_closes",
        "frames_in",
        "frames_out",
        "bytes_in",
        "bytes_out",
        "errors_sent",
        "pings",
        "hellos",
        "pushes",
        "subscriptions_accepted",
        "subscribers_reaped",
    )

    def __init__(self) -> None:
        self.connections_accepted = 0
        self.connections_rejected = 0
        self.connections_reaped = 0
        self.deadline_closes = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.errors_sent = 0
        self.pings = 0
        self.hellos = 0
        self.pushes = 0
        self.subscriptions_accepted = 0
        self.subscribers_reaped = 0

    def as_dict(self) -> "dict[str, int]":
        return {name: getattr(self, name) for name in self.__slots__}


class _Target:
    """Adapts a QueryServer (worker pool) or bare FullNode to one
    ``serve(payload) -> bytes`` coroutine."""

    __slots__ = ("query_server", "node")

    def __init__(self, target) -> None:
        if hasattr(target, "submit"):
            self.query_server = target
            self.node = target.node
        else:
            self.query_server = None
            self.node = target

    @property
    def tip_height(self) -> int:
        return self.node.tip_height

    async def serve(
        self, payload: bytes, client: Optional[str] = None
    ) -> bytes:
        if self.query_server is not None:
            # submit() raises synchronously on admission refusal (rate
            # limited / shed / queue full) or unknown tag; the caller
            # turns any of them into a typed error frame.
            future = self.query_server.submit(payload, client)
            return await asyncio.wrap_future(future)
        if not payload:
            raise QueryError("empty request payload")
        handler_name = _DISPATCH.get(payload[0])
        if handler_name is None:
            raise QueryError(f"unknown request tag {payload[0]}")
        handler = getattr(self.node, handler_name)
        return await asyncio.get_running_loop().run_in_executor(
            None, handler, payload
        )


#: Request tags routed to the subscription registry instead of _Target.
_SUBSCRIPTION_TAGS = (
    _messages.SubscribeRequest.type_tag,
    _messages.UnsubscribeRequest.type_tag,
)


class _PushChannel:
    """Bounded server→client outbox bridging registry threads to one
    connection's asyncio push task (the §10 slow-consumer guard).

    ``push``/``evict`` run on whatever thread appended the block — the
    :class:`~repro.node.subscribe.SubscriptionRegistry` fans out inside
    the system's append listener, under the write lock — so they take a
    plain threading lock and wake the event loop with
    ``call_soon_threadsafe``.  The push task drains frames FIFO.

    The outbox bound is enforced here: ``push`` past the bound returns
    ``"overflow"`` (the registry's cue to evict), and ``evict`` reclaims
    everything queued, replacing it with one final typed frame built
    from the drop count.
    """

    __slots__ = (
        "max_outbox",
        "_lock",
        "_frames",
        "_evicted",
        "_closed",
        "_event",
        "_loop",
    )

    def __init__(
        self, loop: asyncio.AbstractEventLoop, max_outbox: int
    ) -> None:
        self.max_outbox = max_outbox
        self._lock = threading.Lock()
        self._frames: "deque[bytes]" = deque()
        self._evicted = False
        self._closed = False
        self._event = asyncio.Event()
        self._loop = loop

    def _wake(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._event.set)
        except RuntimeError:
            pass  # loop already shut down; the connection is gone anyway

    def push(self, frame: bytes) -> str:
        with self._lock:
            if self._closed or self._evicted:
                return "closed"
            if len(self._frames) >= self.max_outbox:
                return "overflow"
            self._frames.append(frame)
        self._wake()
        return "ok"

    def evict(self, frame_factory: Callable[[int], bytes]) -> int:
        with self._lock:
            if self._closed or self._evicted:
                return 0
            # Everything queued plus the frame that overflowed the bound.
            dropped = len(self._frames) + 1
            self._frames.clear()
            self._frames.append(frame_factory(dropped))
            self._evicted = True
        self._wake()
        return dropped

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._frames.clear()
        self._wake()

    def drain(self) -> "Tuple[list[bytes], bool, bool]":
        """Take every queued frame; returns ``(frames, evicted, closed)``."""
        with self._lock:
            frames = list(self._frames)
            self._frames.clear()
            self._event.clear()
            return frames, self._evicted, self._closed

    async def wait(self) -> None:
        await self._event.wait()


class _ConnState:
    """Per-connection mutable state.

    ``write_lock`` serializes response and push writes on one socket so
    a pushed frame can never interleave with a response frame's bytes;
    ``channel``/``push_task`` exist only once the connection subscribes.
    ``peer`` is the socket peer host — the default rate-limit identity —
    and ``client_id`` the finer identity a §11 hello frame declared.
    """

    __slots__ = ("write_lock", "channel", "push_task", "peer", "client_id")

    def __init__(self, peer: str = "") -> None:
        self.write_lock = asyncio.Lock()
        self.channel: Optional[_PushChannel] = None
        self.push_task: Optional[asyncio.Task] = None
        self.peer = peer
        self.client_id: Optional[str] = None

    @property
    def client(self) -> str:
        """Rate-limit identity: the declared id, else the peer host."""
        return self.client_id if self.client_id else self.peer


class NetServer:
    """One node served over loopback/LAN TCP with defensive deadlines.

    ``target`` is a :class:`~repro.node.server.QueryServer` (requests go
    through its bounded queue and worker pool, so overload surfaces as a
    typed :class:`~repro.errors.ServerOverloadedError` frame) or a bare
    :class:`~repro.node.full_node.FullNode` (requests run on the loop's
    default executor — the lightweight shape the chaos matrix uses).

    Deadline semantics (PROTOCOL.md §9.3):

    * **idle** — a connection that sends no new frame header within
      ``idle_timeout`` is reaped;
    * **read** — once a frame has started, the rest of it must arrive
      within ``read_timeout``, else the connection is closed (a stalled
      or half-delivered frame cannot be resynchronized);
    * **write** — a response that cannot be flushed within
      ``write_timeout`` closes the connection (slow-consumer guard).

    The concurrency gate: at most ``max_connections`` connections are
    served; beyond that the server answers a single
    :class:`~repro.errors.ConnectionLimitError` frame and closes.

    When a :class:`~repro.node.subscribe.SubscriptionRegistry` is passed
    as ``subscriptions``, connections may also carry §10 watch streams:
    subscribe/unsubscribe requests are answered inline, and a per-
    connection push task interleaves server-initiated frames with the
    request/response traffic (serialized by a per-connection write
    lock).  The idle deadline still applies — a subscriber keeps its
    connection alive with keepalive pings, and one that goes quiet is
    reaped like any other connection (counted separately in
    ``stats.subscribers_reaped``).
    """

    def __init__(
        self,
        target,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        idle_timeout: float = 30.0,
        read_timeout: float = 10.0,
        write_timeout: float = 10.0,
        subscriptions=None,
        push_outbox: int = 256,
        push_buffer_bytes: Optional[int] = None,
        loop_thread: Optional[EventLoopThread] = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError(f"need at least 1 connection, {max_connections}")
        if max_frame_bytes < 1:
            raise ValueError(f"bad frame limit {max_frame_bytes}")
        if push_outbox < 2:
            raise ValueError(f"push outbox bound must be >= 2, {push_outbox}")
        if push_buffer_bytes is not None and push_buffer_bytes < 0:
            raise ValueError(f"bad push buffer bound {push_buffer_bytes}")
        self._target = _Target(target)
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout = idle_timeout
        self.read_timeout = read_timeout
        self.write_timeout = write_timeout
        self.subscriptions = subscriptions
        self.push_outbox = push_outbox
        self.push_buffer_bytes = push_buffer_bytes
        self.stats = NetServerStats()
        self._owns_loop = loop_thread is None
        self._loop_thread = loop_thread
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._active = 0
        self._busy = 0
        self._draining = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`start`."""
        return (self.host, self.port)

    def start(self) -> "NetServer":
        if self._loop_thread is None:
            self._loop_thread = EventLoopThread()
        self._loop_thread.call(self._start())
        return self

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; optionally let in-flight frames finish first."""
        if self._closed or self._loop_thread is None:
            return
        self._closed = True
        self._loop_thread.call(self._close(drain, timeout))
        if self._owns_loop:
            self._loop_thread.stop()

    async def _close(self, drain: bool, timeout: float) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
        if drain:
            deadline = asyncio.get_running_loop().time() + timeout
            while self._busy and asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.002)
        for writer in list(self._writers):
            writer.close()
        for task in list(self._tasks):
            task.cancel()
        if self._server is not None:
            await self._server.wait_closed()

    def abort(self) -> None:
        """Kill the server *now*: every live connection is reset without
        flushing — the crash the kill-mid-request harness injects."""
        if self._loop_thread is None:
            return
        self._closed = True
        self._loop_thread.call(self._abort())
        if self._owns_loop:
            self._loop_thread.stop()

    async def _abort(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            writer.transport.abort()
        for task in list(self._tasks):
            task.cancel()
        if self._server is not None:
            await self._server.wait_closed()

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining or self._active >= self.max_connections:
            self.stats.connections_rejected += 1
            error = ConnectionLimitError(self._active, self.max_connections)
            try:
                await self._write_frame(
                    writer, _messages.ErrorResponse.from_exception(error).serialize()
                )
            except (ConnectionError, asyncio.TimeoutError, OSError):
                pass
            writer.close()
            return
        self._active += 1
        self.stats.connections_accepted += 1
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # close()/abort() tearing the connection down
        finally:
            self._active -= 1
            self._writers.discard(writer)
            if task is not None:
                self._tasks.discard(task)
            writer.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = str(peername[0]) if peername else "unknown"
        state = _ConnState(peer)
        try:
            await self._serve_frames(reader, writer, state)
        finally:
            if state.push_task is not None:
                state.push_task.cancel()
            if state.channel is not None:
                state.channel.close()
                if self.subscriptions is not None:
                    self.subscriptions.detach_channel(state.channel)

    async def _serve_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        state: _ConnState,
    ) -> None:
        while not self._draining:
            # Idle deadline: arm it on the *first* byte of the next
            # frame's header; a quiet connection is reaped, a started
            # frame falls under the stricter read deadline below.  A
            # subscriber's keepalive pings are frames like any other, so
            # a healthy watch connection refreshes the deadline each
            # ping; only a genuinely silent one is reaped.
            try:
                first = await asyncio.wait_for(
                    reader.readexactly(1), self.idle_timeout
                )
            except asyncio.TimeoutError:
                self.stats.connections_reaped += 1
                if (
                    state.channel is not None
                    and self.subscriptions is not None
                    and self.subscriptions.channel_active(state.channel)
                ):
                    self.stats.subscribers_reaped += 1
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # clean EOF or client went away between frames
            try:
                rest = await asyncio.wait_for(
                    reader.readexactly(FRAME_HEADER.size - 1),
                    self.read_timeout,
                )
                (length,) = FRAME_HEADER.unpack(first + rest)
                if length == 0 or length > self.max_frame_bytes:
                    self.stats.errors_sent += 1
                    async with state.write_lock:
                        await self._write_frame(
                            writer,
                            _messages.ErrorResponse.from_exception(
                                EncodingError(
                                    f"frame of {length} bytes outside "
                                    f"[1, {self.max_frame_bytes}]"
                                )
                            ).serialize(),
                        )
                    return  # framing can't be trusted past this point
                frame = await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout
                )
            except asyncio.TimeoutError:
                self.stats.deadline_closes += 1
                return  # mid-frame stall: no way to resync, drop the link
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            self.stats.frames_in += 1
            self.stats.bytes_in += FRAME_HEADER.size + length
            self._busy += 1
            try:
                response = await self._serve_frame(frame, state)
            finally:
                self._busy -= 1
            try:
                async with state.write_lock:
                    await self._write_frame(writer, response)
            except asyncio.TimeoutError:
                self.stats.deadline_closes += 1
                return
            except (ConnectionError, OSError):
                return
            # Spawn the push task only after the subscribe ack is on the
            # wire, so the client always sees ack-before-pushes for the
            # subscription it just opened.
            if state.channel is not None and state.push_task is None:
                if self.push_buffer_bytes is not None:
                    # Bound the transport's write buffer on subscriber
                    # connections so a stalled reader's backpressure
                    # reaches the outbox (and its eviction accounting)
                    # instead of ballooning server-side memory.
                    writer.transport.set_write_buffer_limits(
                        high=self.push_buffer_bytes
                    )
                state.push_task = asyncio.ensure_future(
                    self._push_loop(writer, state)
                )

    async def _handle_subscription(
        self, payload: bytes, state: _ConnState
    ) -> bytes:
        """Serve one subscribe/unsubscribe frame on the event loop.

        Registry calls are quick bookkeeping (no proof building), so
        they run inline rather than through the worker pool — and they
        must, because the channel is bound to this connection.
        """
        if self.subscriptions is None:
            raise QueryError(
                "this server does not accept streaming subscriptions"
            )
        if payload[0] == _messages.SubscribeRequest.type_tag:
            request = _messages.SubscribeRequest.deserialize(payload)
            if state.channel is None:
                state.channel = _PushChannel(
                    asyncio.get_running_loop(), self.push_outbox
                )
            sub_id, tip = self.subscriptions.subscribe(
                request.addresses, state.channel
            )
            self.stats.subscriptions_accepted += 1
            return _messages.SubscribeAck(sub_id, tip).serialize()
        request = _messages.UnsubscribeRequest.deserialize(payload)
        if state.channel is None:
            raise QueryError(
                f"no subscription {request.subscription_id} "
                f"on this connection"
            )
        tip = self.subscriptions.unsubscribe(
            request.subscription_id, state.channel
        )
        return _messages.SubscribeAck(request.subscription_id, tip).serialize()

    async def _push_loop(
        self, writer: asyncio.StreamWriter, state: _ConnState
    ) -> None:
        """Drain the connection's push channel onto the socket, FIFO.

        Push frames are written plain (never compressed): compression is
        a per-request mirror (§9.5) and a push has no request to mirror.
        After an eviction the channel's final frame is the typed notice;
        once it is flushed the connection is severed so the client can't
        mistake the post-eviction silence for a quiet chain.
        """
        channel = state.channel
        if channel is None:  # pragma: no cover - spawn guard precludes it
            return
        try:
            while True:
                frames, evicted, closed = channel.drain()
                for frame in frames:
                    async with state.write_lock:
                        await self._write_frame(writer, frame)
                    self.stats.pushes += 1
                if closed:
                    return
                if evicted:
                    writer.close()
                    return
                if not frames:
                    await channel.wait()
        except asyncio.TimeoutError:
            # Socket-level slow consumer: the write deadline fired with
            # the kernel buffer full.  Drop the link; the registry's
            # outbox bound does the accounting when it overflows.
            self.stats.deadline_closes += 1
            writer.close()
        except (ConnectionError, OSError):
            writer.close()

    async def _serve_frame(self, frame: bytes, state: _ConnState) -> bytes:
        """One request frame → one response frame, errors included.

        Compression is negotiated per frame by mirroring: a request that
        arrived compressed gets its response compressed with the same
        codec (§9.5); plain requests get plain responses.
        """
        codec: Optional[str] = None
        try:
            if frame and frame[0] in (FRAME_ZLIB, FRAME_ZSTD):
                codec = "zstd" if frame[0] == FRAME_ZSTD else "zlib"
                payload = decompress_frame(frame, self.max_frame_bytes)
            else:
                payload = frame
            if payload and payload[0] in _SUBSCRIPTION_TAGS:
                response = await self._handle_subscription(payload, state)
            elif payload and payload[0] == _messages.PingRequest.type_tag:
                ping = _messages.PingRequest.deserialize(payload)
                self.stats.pings += 1
                response = _messages.PongResponse(
                    ping.nonce, self._target.tip_height
                ).serialize()
            elif payload and payload[0] == _messages.HelloRequest.type_tag:
                # A hello narrows this connection's rate-limit identity
                # from the socket peer host to the declared client id
                # (PROTOCOL.md §11.2).  It grants nothing — answered
                # inline like a ping, never queued, never shed.
                hello = _messages.HelloRequest.deserialize(payload)
                state.client_id = hello.client_id
                self.stats.hellos += 1
                response = _messages.PongResponse(
                    0, self._target.tip_height
                ).serialize()
            else:
                response = await self._target.serve(payload, state.client)
        except ReproError as error:
            self.stats.errors_sent += 1
            response = _messages.ErrorResponse.from_exception(error).serialize()
        except Exception as error:  # noqa: BLE001 - never leak a raw crash
            self.stats.errors_sent += 1
            response = _messages.ErrorResponse(
                "TransportError",
                f"internal server error: {type(error).__name__}",
            ).serialize()
        if codec is not None:
            try:
                response = compress_frame(
                    response, codec, max_frame_bytes=self.max_frame_bytes
                )
            except EncodingError as error:
                self.stats.errors_sent += 1
                response = _messages.ErrorResponse.from_exception(
                    error
                ).serialize()
        if len(response) > self.max_frame_bytes:
            # Symmetric send-side cap: never put a frame on the wire the
            # peer is required to reject.
            self.stats.errors_sent += 1
            response = _messages.ErrorResponse.from_exception(
                EncodingError(
                    f"response of {len(response)} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte frame limit"
                )
            ).serialize()
        return response

    async def _write_frame(
        self, writer: asyncio.StreamWriter, frame: bytes
    ) -> None:
        writer.write(FRAME_HEADER.pack(len(frame)) + frame)
        await asyncio.wait_for(writer.drain(), self.write_timeout)
        self.stats.frames_out += 1
        self.stats.bytes_out += FRAME_HEADER.size + len(frame)

    def __repr__(self) -> str:
        return (
            f"NetServer({self.host}:{self.port}, "
            f"active={self._active}/{self.max_connections})"
        )


# ---------------------------------------------------------------------------
# socket-layer chaos


def _reset_connection(writer: asyncio.StreamWriter) -> None:
    """Abort with an RST where the platform allows it — the peer sees a
    connection reset, not an orderly FIN."""
    import socket as _socket

    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(
                _socket.SOL_SOCKET,
                _socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
    writer.transport.abort()


class SocketFaultInjector:
    """A frame-aware chaos proxy between a client and a real server.

    Listens on its own loopback port and forwards length-framed traffic
    to ``target``; every frame in either direction is run through a PR 2
    :class:`~repro.node.faults.FaultSchedule` — the same rule language
    the in-process :class:`~repro.node.faults.FaultyTransport` speaks,
    realized at the socket layer:

    =============  ========================================================
    ``DELAY``      mid-frame stall: half the frame, a real sleep of
                   ``param * delay_scale`` seconds, then the rest
    ``DROP``       the frame is swallowed; the receiver waits in silence
    ``TRUNCATE``   partial write: the header claims the full length but
                   only a prefix is sent, then an abrupt FIN
    ``CORRUPT``    ``param`` bytes of the frame body flipped in place
    ``CLOSE``      connection reset (RST) after ``param`` payload bytes
    ``DUPLICATE``  the frame is delivered twice
    ``REORDER``    delivered after the next frame in that direction
    =============  ========================================================

    Faults drawn from the shared schedule advance the same message
    counter and RNG as the in-process wrapper, so a scripted schedule
    stays a deterministic script whichever layer executes it.
    """

    def __init__(
        self,
        target: Tuple[str, int],
        schedule: Optional[FaultSchedule] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        delay_scale: float = 0.01,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        loop_thread: Optional[EventLoopThread] = None,
    ) -> None:
        self.target = target
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.host = host
        self.port = port
        self.delay_scale = delay_scale
        self.max_frame_bytes = max_frame_bytes
        self._owns_loop = loop_thread is None
        self._loop_thread = loop_thread
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._held: "dict[str, Optional[bytes]]" = {
            "to_server": None,
            "to_client": None,
        }
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "SocketFaultInjector":
        if self._loop_thread is None:
            self._loop_thread = EventLoopThread("repro-chaos-proxy")
        self._loop_thread.call(self._start())
        return self

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    def close(self) -> None:
        if self._closed or self._loop_thread is None:
            return
        self._closed = True
        self._loop_thread.call(self._shutdown())
        if self._owns_loop:
            self._loop_thread.stop()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.transport.abort()

    def __enter__(self) -> "SocketFaultInjector":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pumps -------------------------------------------------------------

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        try:
            server_reader, server_writer = await asyncio.open_connection(
                *self.target
            )
        except OSError:
            client_writer.transport.abort()
            return
        self._writers.add(client_writer)
        self._writers.add(server_writer)
        try:
            await asyncio.gather(
                self._pump(
                    "to_server", client_reader, server_writer, client_writer
                ),
                self._pump(
                    "to_client", server_reader, client_writer, server_writer
                ),
                return_exceptions=True,
            )
        finally:
            for writer in (client_writer, server_writer):
                self._writers.discard(writer)
                writer.close()

    async def _pump(
        self,
        direction: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        back_writer: asyncio.StreamWriter,
    ) -> None:
        """Forward frames one way, applying the fault schedule."""
        while True:
            try:
                header = await reader.readexactly(FRAME_HEADER.size)
                (length,) = FRAME_HEADER.unpack(header)
                if length == 0 or length > self.max_frame_bytes:
                    # Not a frame we can reason about: sever the link.
                    writer.transport.abort()
                    back_writer.transport.abort()
                    return
                frame = await reader.readexactly(length)
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                # One side went away: propagate the close to the other.
                writer.close()
                return
            try:
                alive = await self._deliver(direction, frame, writer, back_writer)
            except (ConnectionError, OSError):
                return
            if not alive:
                return

    async def _deliver(
        self,
        direction: str,
        frame: bytes,
        writer: asyncio.StreamWriter,
        back_writer: asyncio.StreamWriter,
    ) -> bool:
        """Apply drawn faults to one frame; False ends this connection."""
        rules = self.schedule.draw(direction)
        rng = self.schedule.rng()
        stall: Optional[float] = None
        for rule in rules:
            kind = rule.kind
            self.schedule.count(kind)
            if kind is FaultKind.DELAY:
                stall = (
                    rule.param if rule.param is not None else 1.0
                ) * self.delay_scale
            elif kind is FaultKind.CLOSE:
                delivered = (
                    int(rule.param)
                    if rule.param is not None
                    else rng.randrange(0, len(frame) + 1)
                )
                delivered = max(0, min(delivered, len(frame)))
                writer.write(
                    FRAME_HEADER.pack(len(frame)) + frame[:delivered]
                )
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                _reset_connection(writer)
                _reset_connection(back_writer)
                return False
            elif kind is FaultKind.DROP:
                return True  # swallowed; the receiver hears silence
            elif kind is FaultKind.TRUNCATE:
                cut = (
                    int(rule.param)
                    if rule.param is not None
                    else rng.randrange(0, max(len(frame), 1))
                )
                cut = max(0, min(cut, max(len(frame) - 1, 0)))
                # Header claims the full frame; only a prefix arrives,
                # then an orderly FIN — the "abrupt FIN mid-frame" case.
                writer.write(FRAME_HEADER.pack(len(frame)) + frame[:cut])
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                writer.close()
                back_writer.close()
                return False
            elif kind is FaultKind.CORRUPT:
                nbytes = int(rule.param) if rule.param is not None else 1
                mutated = bytearray(frame)
                for _ in range(max(1, nbytes)):
                    position = rng.randrange(0, len(mutated))
                    mutated[position] ^= rng.randrange(1, 256)
                frame = bytes(mutated)
            elif kind is FaultKind.DUPLICATE:
                await self._forward(writer, frame, None)
            elif kind is FaultKind.REORDER:
                held = self._held[direction]
                self._held[direction] = frame
                if held is None:
                    return True  # nothing earlier yet: hold this one
                frame = held

        await self._forward(writer, frame, stall)
        return True

    async def _forward(
        self,
        writer: asyncio.StreamWriter,
        frame: bytes,
        stall: Optional[float],
    ) -> None:
        payload = FRAME_HEADER.pack(len(frame)) + frame
        if stall is not None and len(payload) > 1:
            # Mid-frame stall: a prefix lands, then the line goes quiet.
            split = max(1, len(payload) // 2)
            writer.write(payload[:split])
            await writer.drain()
            await asyncio.sleep(stall)
            writer.write(payload[split:])
        else:
            writer.write(payload)
        await writer.drain()

    def __repr__(self) -> str:
        return (
            f"SocketFaultInjector({self.host}:{self.port} → "
            f"{self.target[0]}:{self.target[1]}, {self.schedule!r})"
        )


__all__ = [
    "EventLoopThread",
    "FRAME_HEADER",
    "NetServer",
    "NetServerStats",
    "SocketFaultInjector",
]
