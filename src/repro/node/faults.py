"""Fault injection for the link and the peer (never the proof).

:mod:`repro.query.adversary` attacks the *contents* of an answer; this
module attacks its *delivery*.  :class:`FaultyTransport` wraps any
transport with a seeded, scriptable schedule of link faults — drop,
truncation, byte corruption, duplication, reorder, injected latency (fed
through :class:`~repro.node.transport.LinkModel` and a
:class:`~repro.node.transport.SimulatedClock`), and mid-stream close —
while :class:`FlakyFullNode` / :class:`ByzantineFlakyFullNode` model
peers whose *service* fails probabilistically or on scripted request
indices.

The invariant the chaos suite enforces (see
``tests/node/test_chaos.py``): any composition of these faults with any
content attack degrades a query to a typed :class:`~repro.errors.ReproError`
— never to a wrong history.  Faults here are client-observable events,
not wire-format changes; PROTOCOL.md is unaffected.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RequestTimeoutError, TransportError
from repro.node.full_node import FullNode
from repro.node.transport import (
    InProcessTransport,
    LinkModel,
    SimulatedClock,
    TransportStats,
)


class FaultKind(enum.Enum):
    """Link-level failure modes a schedule can inject."""

    DELAY = "delay"  # extra seconds charged to the clock
    DROP = "drop"  # message never arrives: deadline-blowing silence
    TRUNCATE = "truncate"  # a prefix arrives, the tail is lost
    CORRUPT = "corrupt"  # N bytes flipped in place
    DUPLICATE = "duplicate"  # delivered (and charged) twice
    REORDER = "reorder"  # stale earlier message delivered instead
    CLOSE = "close"  # link dies mid-stream after a partial write


#: Application order when several faults hit one message: latency always
#: accrues first; terminal faults (drop/close) preempt payload mangling.
_KIND_ORDER = {
    FaultKind.DELAY: 0,
    FaultKind.CLOSE: 1,
    FaultKind.DROP: 2,
    FaultKind.TRUNCATE: 3,
    FaultKind.CORRUPT: 4,
    FaultKind.DUPLICATE: 5,
    FaultKind.REORDER: 6,
}

_DIRECTIONS = ("to_server", "to_client")


class FaultRule:
    """One line of a fault script.

    A rule fires either *deterministically* — ``at_messages`` names
    global message indices on this schedule (requests and responses share
    one counter) — or *probabilistically* with ``probability`` per
    matching message.  ``direction`` restricts it to one side of the
    pipe.  ``param`` is kind-specific: extra seconds for ``DELAY``,
    bytes to flip for ``CORRUPT``, bytes delivered before death for
    ``CLOSE``, surviving prefix length for ``TRUNCATE`` (random when
    ``None``).
    """

    __slots__ = ("kind", "direction", "probability", "at_messages", "param")

    def __init__(
        self,
        kind: FaultKind,
        direction: str = "both",
        probability: float = 1.0,
        at_messages: Optional[Iterable[int]] = None,
        param: Optional[float] = None,
    ) -> None:
        if direction not in ("both",) + _DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0,1]")
        self.kind = kind
        self.direction = direction
        self.probability = probability
        self.at_messages = (
            frozenset(at_messages) if at_messages is not None else None
        )
        self.param = param

    def matches(self, direction: str, index: int, rng: random.Random) -> bool:
        if self.direction != "both" and self.direction != direction:
            return False
        if self.at_messages is not None:
            return index in self.at_messages
        return rng.random() < self.probability

    def __repr__(self) -> str:
        where = (
            f"at={sorted(self.at_messages)}"
            if self.at_messages is not None
            else f"p={self.probability}"
        )
        return f"FaultRule({self.kind.value}, {self.direction}, {where})"


class FaultSchedule:
    """A seeded set of :class:`FaultRule`\\ s shared by one peer's link.

    The schedule owns the RNG and the global message counter, so it stays
    deterministic across reconnects (a session opening a fresh transport
    per attempt continues the same script) and counts every injected
    fault in :attr:`fault_counts` for availability reports.
    """

    __slots__ = ("rules", "seed", "message_index", "fault_counts", "_rng")

    def __init__(
        self, rules: Sequence[FaultRule] = (), seed: int = 0
    ) -> None:
        self.rules = list(rules)
        self.seed = seed
        self.message_index = 0
        self.fault_counts: Dict[str, int] = {}
        self._rng = random.Random(seed)

    # -- convenience constructors -----------------------------------------

    @classmethod
    def none(cls) -> "FaultSchedule":
        return cls()

    @classmethod
    def drops(cls, rate: float, seed: int = 0) -> "FaultSchedule":
        return cls([FaultRule(FaultKind.DROP, probability=rate)], seed)

    @classmethod
    def latency(
        cls, extra_seconds: float, rate: float = 1.0, seed: int = 0
    ) -> "FaultSchedule":
        return cls(
            [
                FaultRule(
                    FaultKind.DELAY, probability=rate, param=extra_seconds
                )
            ],
            seed,
        )

    @classmethod
    def scripted(
        cls, events: Sequence[Tuple[int, FaultKind]], seed: int = 0
    ) -> "FaultSchedule":
        """Deterministic script: fault ``kind`` exactly at message ``index``."""
        return cls(
            [
                FaultRule(kind, at_messages=(index,))
                for index, kind in events
            ],
            seed,
        )

    # -- drawing -----------------------------------------------------------

    def draw(self, direction: str) -> List[FaultRule]:
        """Faults for the next message in ``direction`` (advances the
        counter; deterministic for a fixed seed and call sequence)."""
        index = self.message_index
        self.message_index += 1
        fired = [
            rule
            for rule in self.rules
            if rule.matches(direction, index, self._rng)
        ]
        fired.sort(key=lambda rule: _KIND_ORDER[rule.kind])
        return fired

    def count(self, kind: FaultKind) -> None:
        self.fault_counts[kind.value] = self.fault_counts.get(kind.value, 0) + 1

    def rng(self) -> random.Random:
        return self._rng

    @property
    def is_benign(self) -> bool:
        """True when the schedule can only slow delivery, never mangle it
        (drop/latency-only — the availability-guarantee regime)."""
        return all(
            rule.kind in (FaultKind.DELAY, FaultKind.DROP)
            for rule in self.rules
        )

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.rules)} rules, seed={self.seed})"


class FaultyTransport:
    """Wraps a transport and runs every delivery through a fault schedule.

    Duck-compatible with :class:`InProcessTransport` (``send_to_server``,
    ``send_to_client``, ``stats``, ``close``), so any code path that takes
    a transport can be put under chaos unchanged.  Latency — the modeled
    link's transfer time plus injected ``DELAY`` faults — is charged to
    the shared :class:`SimulatedClock`; when a per-request deadline is
    armed (:meth:`arm_timeout`), blowing it raises
    :class:`RequestTimeoutError`.
    """

    def __init__(
        self,
        inner: Optional[InProcessTransport] = None,
        schedule: Optional[FaultSchedule] = None,
        clock: Optional[SimulatedClock] = None,
        link: Optional[LinkModel] = None,
    ) -> None:
        self.inner = inner if inner is not None else InProcessTransport()
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.clock = clock
        self.link = link
        self._timeout: Optional[float] = None
        self._armed_at: Optional[float] = None
        self._stale: Dict[str, Optional[bytes]] = {d: None for d in _DIRECTIONS}

    # -- transport surface --------------------------------------------------

    @property
    def stats(self) -> TransportStats:
        return self.inner.stats

    @property
    def is_closed(self) -> bool:
        return self.inner.is_closed

    def close(self) -> None:
        self.inner.close()

    def send_to_server(self, payload: bytes) -> bytes:
        return self._deliver("to_server", payload, self.inner.send_to_server)

    def send_to_client(self, payload: bytes) -> bytes:
        return self._deliver("to_client", payload, self.inner.send_to_client)

    # -- timeout management ---------------------------------------------------

    def arm_timeout(self, seconds: Optional[float]) -> None:
        """Set the per-exchange deadline relative to the clock's *now*."""
        self._timeout = seconds
        self._armed_at = self.clock.now() if self.clock is not None else None

    def _elapsed(self) -> Optional[float]:
        if self.clock is None or self._armed_at is None:
            return None
        return self.clock.now() - self._armed_at

    def _deadline_blown(self) -> bool:
        elapsed = self._elapsed()
        return (
            self._timeout is not None
            and elapsed is not None
            and elapsed > self._timeout
        )

    def _timeout_error(self, reason: str) -> RequestTimeoutError:
        return RequestTimeoutError(
            reason,
            timeout_seconds=self._timeout,
            elapsed_seconds=self._elapsed(),
        )

    # -- delivery -------------------------------------------------------------

    def _deliver(self, direction: str, payload: bytes, forward) -> bytes:
        rules = self.schedule.draw(direction)
        rng = self.schedule.rng()

        # Modeled transfer time: one RTT per request/response exchange,
        # charged on the request leg, plus serialization time per leg.
        if self.clock is not None and self.link is not None:
            round_trips = 1 if direction == "to_server" else 0
            self.clock.advance(
                self.link.transfer_seconds(len(payload), round_trips)
            )

        for rule in rules:
            kind = rule.kind
            if kind is FaultKind.DELAY:
                self.schedule.count(kind)
                if self.clock is not None:
                    self.clock.advance(
                        rule.param if rule.param is not None else 1.0
                    )
            elif kind is FaultKind.CLOSE:
                self.schedule.count(kind)
                # Partial write: the bytes that crossed before the link
                # died are recorded (never under-count delivered bytes),
                # but no complete message arrived.
                delivered = (
                    int(rule.param)
                    if rule.param is not None
                    else rng.randrange(0, len(payload) + 1)
                )
                delivered = max(0, min(delivered, len(payload)))
                if direction == "to_server":
                    self.inner.stats.bytes_to_server += delivered
                else:
                    self.inner.stats.bytes_to_client += delivered
                self.inner.close()
                raise TransportError(
                    f"link closed mid-stream after {delivered} of "
                    f"{len(payload)} bytes ({direction})"
                )
            elif kind is FaultKind.DROP:
                self.schedule.count(kind)
                # The sender transmitted (and is charged); the receiver
                # waits out the full deadline in silence.
                forward(payload)
                if self.clock is not None and self._timeout is not None:
                    deadline = (self._armed_at or 0.0) + self._timeout
                    if self.clock.now() < deadline:
                        self.clock.advance(deadline - self.clock.now())
                    self.clock.advance(1e-9)
                raise self._timeout_error(
                    f"message dropped ({direction}); no response before "
                    "deadline"
                )
            elif kind is FaultKind.TRUNCATE:
                self.schedule.count(kind)
                if len(payload) > 0:
                    cut = (
                        int(rule.param)
                        if rule.param is not None
                        else rng.randrange(0, len(payload))
                    )
                    payload = payload[: max(0, min(cut, len(payload) - 1))]
            elif kind is FaultKind.CORRUPT:
                self.schedule.count(kind)
                payload = _corrupt(
                    payload,
                    int(rule.param) if rule.param is not None else 1,
                    rng,
                )
            elif kind is FaultKind.DUPLICATE:
                self.schedule.count(kind)
                forward(payload)  # the wire carried it twice
            elif kind is FaultKind.REORDER:
                self.schedule.count(kind)
                stale = self._stale[direction]
                forward(payload)
                self._stale[direction] = payload
                if stale is not None:
                    if self._deadline_blown():
                        raise self._timeout_error(
                            "injected latency exceeded request deadline"
                        )
                    return stale  # an earlier message arrives instead
                # Nothing earlier to deliver: reorder degenerates to
                # normal delivery on the first message.
                if self._deadline_blown():
                    raise self._timeout_error(
                        "injected latency exceeded request deadline"
                    )
                return payload

        if self._deadline_blown():
            raise self._timeout_error(
                "injected latency exceeded request deadline"
            )
        return forward(payload)

    def __repr__(self) -> str:
        return f"FaultyTransport({self.schedule!r}, inner={self.inner!r})"


def _corrupt(payload: bytes, nbytes: int, rng: random.Random) -> bytes:
    if not payload:
        return payload
    mutated = bytearray(payload)
    for _ in range(max(1, nbytes)):
        position = rng.randrange(0, len(mutated))
        mutated[position] ^= rng.randrange(1, 256)
    return bytes(mutated)


# ---------------------------------------------------------------------------
# flaky peers: the *service* fails, not the link


class _FlakyMixin:
    """Shared probabilistic/scripted service-failure behaviour."""

    def _init_flaky(
        self,
        failure_rate: float,
        fail_on: Iterable[int],
        seed: int,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure rate {failure_rate} outside [0,1]")
        self._failure_rate = failure_rate
        self._fail_on = frozenset(fail_on)
        self._flaky_rng = random.Random(seed)
        self.request_index = 0
        self.failures_injected = 0

    def _maybe_fail(self) -> None:
        index = self.request_index
        self.request_index += 1
        if index in self._fail_on or (
            self._failure_rate > 0.0
            and self._flaky_rng.random() < self._failure_rate
        ):
            self.failures_injected += 1
            raise TransportError(
                f"peer unavailable while serving request {index}"
            )


class FlakyFullNode(_FlakyMixin, FullNode):
    """An *honest* full node whose service flaps.

    Failures surface as :class:`TransportError` — indistinguishable, to
    the client, from a dead link — so a resilient session must retry it
    rather than ban it: when it does answer, the answer verifies.
    """

    def __init__(
        self,
        system,
        failure_rate: float = 0.0,
        fail_on: Iterable[int] = (),
        seed: int = 0,
    ) -> None:
        FullNode.__init__(self, system)
        self._init_flaky(failure_rate, fail_on, seed)

    def handle_query(self, payload: bytes) -> bytes:
        self._maybe_fail()
        return super().handle_query(payload)

    def handle_batch_query(self, payload: bytes) -> bytes:
        self._maybe_fail()
        return super().handle_batch_query(payload)

    def handle_headers(self, payload: bytes) -> bytes:
        self._maybe_fail()
        return super().handle_headers(payload)


class ByzantineFlakyFullNode(_FlakyMixin, FullNode):
    """The worst peer: flaps like a flaky node *and* lies when it serves.

    ``attack`` is any :data:`repro.query.adversary.Attack`;
    ``attack_rate`` < 1 makes the malice intermittent, modelling a peer
    that builds a good reputation before striking.
    """

    def __init__(
        self,
        system,
        attack,
        failure_rate: float = 0.0,
        fail_on: Iterable[int] = (),
        attack_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        from repro.query.adversary import MaliciousFullNode

        FullNode.__init__(self, system)
        self._init_flaky(failure_rate, fail_on, seed)
        self._malicious = MaliciousFullNode(system, attack)
        if not 0.0 <= attack_rate <= 1.0:
            raise ValueError(f"attack rate {attack_rate} outside [0,1]")
        self._attack_rate = attack_rate
        self._attack_rng = random.Random(seed ^ 0x5EED)

    def answer(self, address, first_height=1, last_height=None):
        if self._attack_rng.random() < self._attack_rate:
            return self._malicious.answer(address, first_height, last_height)
        return super().answer(address, first_height, last_height)

    def answer_batch(self, addresses, first_height=1, last_height=None):
        if self._attack_rng.random() < self._attack_rate:
            return self._malicious.answer_batch(
                addresses, first_height, last_height
            )
        return super().answer_batch(addresses, first_height, last_height)

    def handle_query(self, payload: bytes) -> bytes:
        self._maybe_fail()
        return super().handle_query(payload)

    def handle_batch_query(self, payload: bytes) -> bytes:
        self._maybe_fail()
        return super().handle_batch_query(payload)

    def handle_headers(self, payload: bytes) -> bytes:
        self._maybe_fail()
        return super().handle_headers(payload)


__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultSchedule",
    "FaultyTransport",
    "FlakyFullNode",
    "ByzantineFlakyFullNode",
]
