"""Simulated full/light nodes, the byte-counting transport between them,
the chaos layer (fault injection + resilient multi-peer sessions), and
the real TCP transport (asyncio server + reconnecting client pool)."""

from repro.node.messages import QueryRequest, QueryResponse, HeadersRequest, HeadersResponse
from repro.node.transport import (
    InProcessTransport,
    LinkModel,
    SimulatedClock,
    TransportStats,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.server import QueryServer
from repro.node.faults import (
    ByzantineFlakyFullNode,
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
    FlakyFullNode,
)
from repro.node.session import (
    PartialHistory,
    Peer,
    QuerySession,
    RetryPolicy,
    SessionStats,
)
from repro.node.net import (
    EventLoopThread,
    NetServer,
    NetServerStats,
    SocketFaultInjector,
)
from repro.node.netclient import (
    ClientConnection,
    ConnectionPool,
    RemoteFullNode,
)

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "HeadersRequest",
    "HeadersResponse",
    "InProcessTransport",
    "LinkModel",
    "SimulatedClock",
    "TransportStats",
    "FullNode",
    "LightNode",
    "QueryServer",
    "FaultKind",
    "FaultRule",
    "FaultSchedule",
    "FaultyTransport",
    "FlakyFullNode",
    "ByzantineFlakyFullNode",
    "Peer",
    "PartialHistory",
    "QuerySession",
    "RetryPolicy",
    "SessionStats",
    "EventLoopThread",
    "NetServer",
    "NetServerStats",
    "SocketFaultInjector",
    "ClientConnection",
    "ConnectionPool",
    "RemoteFullNode",
]
