"""Simulated full/light nodes and the byte-counting transport between them."""

from repro.node.messages import QueryRequest, QueryResponse, HeadersRequest, HeadersResponse
from repro.node.transport import InProcessTransport, LinkModel, TransportStats
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "HeadersRequest",
    "HeadersResponse",
    "InProcessTransport",
    "LinkModel",
    "TransportStats",
    "FullNode",
    "LightNode",
]
