"""A concurrent query-serving front end over :class:`FullNode`.

:class:`QueryServer` is the piece the ROADMAP's "heavy traffic" goal
needs on the serving side: a fixed pool of worker threads draining an
admission-controlled, weighted-fair request queue.  The pieces fit
together as

* **admission control** — every submission passes through
  :class:`~repro.node.admission.AdmissionController`: a per-client
  token bucket (one hot client runs out of budget before it can crowd
  anyone else), watermark load shedding (past 50%/75%/90% of the queue
  bound the server refuses batch → low-priority → everything, in
  stages), and a hard queue bound — each refusal a typed
  :class:`~repro.errors.BackpressureError` with a retry-after hint, so
  an overloaded node degrades into fast, honest rejections that a
  resilient client (``QuerySession``) treats as backoff signals;
* **fair scheduling** — admitted requests drain in deficit-weighted
  round-robin across priority classes (interactive > sync > batch >
  backfill), so a batch backlog delays an interactive query by at most
  one scheduling round instead of a full FIFO traversal;
* **concurrency safety** — workers call the node's RPC handlers, which
  take the system's read lock; ``append_block`` takes the write lock,
  so serving threads and the mining path interleave without torn state;
* **coalescing** — identical concurrent queries collapse into one proof
  generation inside the node's single-flight response cache, so a
  thundering herd on a hot address costs one computation;
* **observability** — per-request wait/service/total latency, queue
  depth, and every admission counter are recorded; :meth:`stats`
  reports counts, p50/p99, cache counters, and the admission state
  (exported in Prometheus text form by :mod:`repro.node.metrics`).

The request/response payloads are the exact wire messages of
:mod:`repro.node.messages`; :meth:`submit` dispatches on the type tag,
so a transport can hand every inbound frame to one entry point.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import List, Optional, Sequence, Tuple

from repro.errors import BackpressureError, QueryError
from repro.node import messages as _messages
from repro.node.admission import DEFAULT_WEIGHTS, AdmissionController
from repro.node.full_node import FullNode

#: Message type tag → FullNode handler name.
_DISPATCH = {
    _messages._MSG_QUERY_REQUEST: "handle_query",
    _messages._MSG_HEADERS_REQUEST: "handle_headers",
    _messages._MSG_BATCH_REQUEST: "handle_batch_query",
    _messages._MSG_DELTA_HEADERS_REQUEST: "handle_headers",
    _messages._MSG_AGG_BATCH_REQUEST: "handle_batch_query",
}

#: Connection-scoped tags a queue-based server cannot serve (see submit).
_SUBSCRIPTION_TAGS = (
    _messages._MSG_SUBSCRIBE_REQUEST,
    _messages._MSG_UNSUBSCRIBE_REQUEST,
)


class _PendingRequest:
    __slots__ = ("payload", "future", "submitted_at")

    def __init__(self, payload: bytes, future: "Future[bytes]") -> None:
        self.payload = payload
        self.future = future
        self.submitted_at = time.perf_counter()


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = round(quantile * (len(sorted_values) - 1))
    return sorted_values[rank]


def _latency_summary(samples: Sequence[float]) -> "dict[str, float]":
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "count": count,
        "mean_ms": (sum(ordered) / count * 1000.0) if count else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "max_ms": (ordered[-1] * 1000.0) if count else 0.0,
    }


class QueryServer:
    """A worker pool serving one :class:`FullNode` to many clients.

    ``rate_limit`` (requests/second per client identity, ``None``
    disables) and ``rate_burst`` configure the per-client token
    buckets; ``watermarks`` overrides the staged-shedding entry depths
    (defaults to 50%/75%/90% of ``max_pending``).
    """

    def __init__(
        self,
        node: FullNode,
        num_workers: int = 4,
        max_pending: int = 64,
        latency_window: int = 8192,
        *,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        weights: Sequence[int] = DEFAULT_WEIGHTS,
        watermarks: "Optional[Tuple[int, int, int]]" = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        self.node = node
        self.num_workers = num_workers
        self.max_pending = max_pending
        self.admission = AdmissionController(
            max_pending,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
            weights=weights,
            watermarks=watermarks,
        )
        self._submit_lock = threading.Lock()
        self._closed = False

        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._reorgs = 0
        self._in_flight = 0
        self._accepted = 0
        self._finished = 0
        self._peak_queue_depth = 0
        self._total_latency: "deque[float]" = deque(maxlen=latency_window)
        self._wait_latency: "deque[float]" = deque(maxlen=latency_window)
        self._service_latency: "deque[float]" = deque(maxlen=latency_window)

        self._workers: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop,
                name=f"query-server-worker-{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- client API ----------------------------------------------------------

    def submit(
        self, payload: bytes, client: Optional[str] = None
    ) -> "Future[bytes]":
        """Queue one raw request frame; resolves to the response bytes.

        ``client`` is the submitter's identity for rate limiting (the
        connection peer or hello-declared id; ``None`` bypasses the
        limiter — trusted in-process callers).  Raises a typed
        :class:`~repro.errors.BackpressureError` subclass when admission
        refuses (rate limited / shed / queue full) and
        :class:`QueryError` once closed.
        """
        if not payload:
            raise QueryError("empty request payload")
        if payload[0] not in _DISPATCH:
            if payload[0] in _SUBSCRIPTION_TAGS:
                # Tags 20/22 are connection-scoped: a subscription binds
                # a watch set to one socket's push channel, which a
                # request queue has no notion of.  NetServer handles
                # them before the queue; reaching here means the caller
                # used the in-process submit path.
                raise QueryError(
                    f"request tag {payload[0]} is a subscription message; "
                    f"subscriptions require a push-capable transport "
                    f"(serve the node over NetServer with a "
                    f"SubscriptionRegistry)"
                )
            raise QueryError(f"unknown request tag {payload[0]}")
        request = _PendingRequest(payload, Future())
        with self._submit_lock:
            if self._closed:
                raise QueryError("query server is closed")
            try:
                priority = self.admission.submit(payload, client)
            except BackpressureError:
                with self._stats_lock:
                    self._rejected += 1
                raise
            depth = self.admission.enqueue(priority, request)
        with self._stats_lock:
            self._submitted += 1
            self._accepted += 1
            if depth > self._peak_queue_depth:
                self._peak_queue_depth = depth
        return request.future

    def submit_query(
        self,
        address: str,
        first_height: int = 1,
        last_height: int = 0,
        client: Optional[str] = None,
    ) -> "Future[bytes]":
        """Convenience: build and queue a history-query frame."""
        request = _messages.QueryRequest(address, first_height, last_height)
        return self.submit(request.serialize(), client)

    def query(
        self,
        address: str,
        first_height: int = 1,
        last_height: int = 0,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Blocking single query; returns the serialized response."""
        return self.submit_query(address, first_height, last_height).result(
            timeout
        )

    # -- chain mutation ------------------------------------------------------

    def reorg(self, fork_height: int, new_bodies) -> "tuple[int, int]":
        """Switch the served chain to a fork; returns ``(replaced, appended)``.

        The system's write lock serializes the switch against in-flight
        answers: requests already running finish against the old tip
        (and verify against it — the client re-syncs afterwards), while
        requests dequeued after the switch see only the new fork.  All
        height- and tip-keyed cache entries above the fork are dropped
        before the lock is released.
        """
        result = self.node.reorg(fork_height, new_bodies)
        with self._stats_lock:
            self._reorgs += 1
        return result

    def rollback_to(self, height: int) -> int:
        """Pop every served block above ``height`` (see :meth:`reorg`)."""
        removed = self.node.rollback_to(height)
        if removed:
            with self._stats_lock:
                self._reorgs += 1
        return removed

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request has finished.

        Returns ``False`` if ``timeout`` elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._stats_lock:
                idle = self._accepted == self._finished
            if idle:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.001)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work; optionally finish the backlog first.

        With ``drain=False`` every queued-but-unstarted request fails
        with :class:`QueryError`; in-flight requests still complete.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain(timeout)
        pending = self.admission.close()
        for _priority, item in pending:
            item.future.set_exception(
                QueryError("query server closed before request ran")
            )
            with self._stats_lock:
                self._finished += 1
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            popped = self.admission.next_request()
            if popped is None:
                return
            priority, item = popped
            started_at = time.perf_counter()
            if not item.future.set_running_or_notify_cancel():
                self.admission.request_done(priority, 0.0)
                with self._stats_lock:
                    self._finished += 1
                continue
            with self._stats_lock:
                self._in_flight += 1
            try:
                handler = getattr(self.node, _DISPATCH[item.payload[0]])
                response = handler(item.payload)
            except BaseException as exc:  # typed errors flow to the caller
                succeeded = False
                item.future.set_exception(exc)
            else:
                succeeded = True
                item.future.set_result(response)
            finished_at = time.perf_counter()
            self.admission.request_done(priority, finished_at - started_at)
            with self._stats_lock:
                self._in_flight -= 1
                self._finished += 1
                if succeeded:
                    self._completed += 1
                else:
                    self._failed += 1
                self._total_latency.append(finished_at - item.submitted_at)
                self._wait_latency.append(started_at - item.submitted_at)
                self._service_latency.append(finished_at - started_at)

    # -- observability -------------------------------------------------------

    def stats(self) -> "dict[str, object]":
        """Snapshot of counters, latency percentiles and cache state."""
        admission = self.admission.stats_dict()
        with self._stats_lock:
            report = {
                "workers": self.num_workers,
                "max_pending": self.max_pending,
                "submitted": self._submitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "reorgs": self._reorgs,
                "in_flight": self._in_flight,
                "queue_depth": admission["queue_depth"],
                "peak_queue_depth": self._peak_queue_depth,
                "latency": _latency_summary(self._total_latency),
                "queue_wait": _latency_summary(self._wait_latency),
                "service": _latency_summary(self._service_latency),
            }
        report["admission"] = admission
        report["caches"] = {
            "responses": self.node.response_cache.stats(),
            **self.node.system.caches.stats(),
        }
        return report
