"""A concurrent query-serving front end over :class:`FullNode`.

:class:`QueryServer` is the piece the ROADMAP's "heavy traffic" goal
needs on the serving side: a fixed pool of worker threads draining a
bounded request queue in FIFO order.  The pieces fit together as

* **backpressure** — submissions beyond ``max_pending`` queued requests
  fail *immediately* with :class:`ServerOverloadedError` instead of
  growing an unbounded backlog, so an overloaded node degrades into
  fast rejections that a resilient client (``QuerySession``) treats
  like any other transient peer failure;
* **concurrency safety** — workers call the node's RPC handlers, which
  take the system's read lock; ``append_block`` takes the write lock,
  so serving threads and the mining path interleave without torn state;
* **coalescing** — identical concurrent queries collapse into one proof
  generation inside the node's single-flight response cache, so a
  thundering herd on a hot address costs one computation;
* **observability** — per-request wait/service/total latency and queue
  depth are recorded; :meth:`stats` reports counts, p50/p99, and the
  node's cache counters.

The request/response payloads are the exact wire messages of
:mod:`repro.node.messages`; :meth:`submit` dispatches on the type tag,
so a transport can hand every inbound frame to one entry point.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import List, Optional, Sequence

from repro.errors import QueryError, ServerOverloadedError
from repro.node import messages as _messages
from repro.node.full_node import FullNode

#: Message type tag → FullNode handler name.
_DISPATCH = {
    _messages._MSG_QUERY_REQUEST: "handle_query",
    _messages._MSG_HEADERS_REQUEST: "handle_headers",
    _messages._MSG_BATCH_REQUEST: "handle_batch_query",
    _messages._MSG_DELTA_HEADERS_REQUEST: "handle_headers",
    _messages._MSG_AGG_BATCH_REQUEST: "handle_batch_query",
}

#: Connection-scoped tags a queue-based server cannot serve (see submit).
_SUBSCRIPTION_TAGS = (
    _messages._MSG_SUBSCRIBE_REQUEST,
    _messages._MSG_UNSUBSCRIBE_REQUEST,
)

_SHUTDOWN = object()


class _PendingRequest:
    __slots__ = ("payload", "future", "submitted_at")

    def __init__(self, payload: bytes, future: "Future[bytes]") -> None:
        self.payload = payload
        self.future = future
        self.submitted_at = time.perf_counter()


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = round(quantile * (len(sorted_values) - 1))
    return sorted_values[rank]


def _latency_summary(samples: Sequence[float]) -> "dict[str, float]":
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "count": count,
        "mean_ms": (sum(ordered) / count * 1000.0) if count else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "max_ms": (ordered[-1] * 1000.0) if count else 0.0,
    }


class QueryServer:
    """A worker pool serving one :class:`FullNode` to many clients."""

    def __init__(
        self,
        node: FullNode,
        num_workers: int = 4,
        max_pending: int = 64,
        latency_window: int = 8192,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        if max_pending < 1:
            raise ValueError(f"queue bound must be >= 1, got {max_pending}")
        self.node = node
        self.num_workers = num_workers
        self.max_pending = max_pending
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_pending)
        self._submit_lock = threading.Lock()
        self._closed = False

        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._reorgs = 0
        self._in_flight = 0
        self._peak_queue_depth = 0
        self._total_latency: "deque[float]" = deque(maxlen=latency_window)
        self._wait_latency: "deque[float]" = deque(maxlen=latency_window)
        self._service_latency: "deque[float]" = deque(maxlen=latency_window)

        self._workers: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop,
                name=f"query-server-worker-{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- client API ----------------------------------------------------------

    def submit(self, payload: bytes) -> "Future[bytes]":
        """Queue one raw request frame; resolves to the response bytes.

        Raises :class:`ServerOverloadedError` when the pending queue is
        full (backpressure) and :class:`QueryError` once closed.
        """
        if not payload:
            raise QueryError("empty request payload")
        if payload[0] not in _DISPATCH:
            if payload[0] in _SUBSCRIPTION_TAGS:
                # Tags 14/16 are connection-scoped: a subscription binds
                # a watch set to one socket's push channel, which a
                # request queue has no notion of.  NetServer handles
                # them before the queue; reaching here means the caller
                # used the in-process submit path.
                raise QueryError(
                    f"request tag {payload[0]} is a subscription message; "
                    f"subscriptions require a push-capable transport "
                    f"(serve the node over NetServer with a "
                    f"SubscriptionRegistry)"
                )
            raise QueryError(f"unknown request tag {payload[0]}")
        request = _PendingRequest(payload, Future())
        with self._submit_lock:
            if self._closed:
                raise QueryError("query server is closed")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                with self._stats_lock:
                    self._rejected += 1
                raise ServerOverloadedError(
                    self._queue.qsize(), self.max_pending
                ) from None
        with self._stats_lock:
            self._submitted += 1
            depth = self._queue.qsize()
            if depth > self._peak_queue_depth:
                self._peak_queue_depth = depth
        return request.future

    def submit_query(
        self, address: str, first_height: int = 1, last_height: int = 0
    ) -> "Future[bytes]":
        """Convenience: build and queue a history-query frame."""
        request = _messages.QueryRequest(address, first_height, last_height)
        return self.submit(request.serialize())

    def query(
        self,
        address: str,
        first_height: int = 1,
        last_height: int = 0,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Blocking single query; returns the serialized response."""
        return self.submit_query(address, first_height, last_height).result(
            timeout
        )

    # -- chain mutation ------------------------------------------------------

    def reorg(self, fork_height: int, new_bodies) -> "tuple[int, int]":
        """Switch the served chain to a fork; returns ``(replaced, appended)``.

        The system's write lock serializes the switch against in-flight
        answers: requests already running finish against the old tip
        (and verify against it — the client re-syncs afterwards), while
        requests dequeued after the switch see only the new fork.  All
        height- and tip-keyed cache entries above the fork are dropped
        before the lock is released.
        """
        result = self.node.reorg(fork_height, new_bodies)
        with self._stats_lock:
            self._reorgs += 1
        return result

    def rollback_to(self, height: int) -> int:
        """Pop every served block above ``height`` (see :meth:`reorg`)."""
        removed = self.node.rollback_to(height)
        if removed:
            with self._stats_lock:
                self._reorgs += 1
        return removed

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request has finished.

        Returns ``False`` if ``timeout`` elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._stats_lock:
                idle = self._queue.empty() and self._in_flight == 0
            if idle:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.001)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work; optionally finish the backlog first.

        With ``drain=False`` every queued-but-unstarted request fails
        with :class:`QueryError`; in-flight requests still complete.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SHUTDOWN:
                    item.future.set_exception(
                        QueryError("query server closed before request ran")
                    )
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            started_at = time.perf_counter()
            if not item.future.set_running_or_notify_cancel():
                continue
            with self._stats_lock:
                self._in_flight += 1
            try:
                handler = getattr(self.node, _DISPATCH[item.payload[0]])
                response = handler(item.payload)
            except BaseException as exc:  # typed errors flow to the caller
                succeeded = False
                item.future.set_exception(exc)
            else:
                succeeded = True
                item.future.set_result(response)
            finished_at = time.perf_counter()
            with self._stats_lock:
                self._in_flight -= 1
                if succeeded:
                    self._completed += 1
                else:
                    self._failed += 1
                self._total_latency.append(finished_at - item.submitted_at)
                self._wait_latency.append(started_at - item.submitted_at)
                self._service_latency.append(finished_at - started_at)

    # -- observability -------------------------------------------------------

    def stats(self) -> "dict[str, object]":
        """Snapshot of counters, latency percentiles and cache state."""
        with self._stats_lock:
            report = {
                "workers": self.num_workers,
                "max_pending": self.max_pending,
                "submitted": self._submitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "reorgs": self._reorgs,
                "in_flight": self._in_flight,
                "queue_depth": self._queue.qsize(),
                "peak_queue_depth": self._peak_queue_depth,
                "latency": _latency_summary(self._total_latency),
                "queue_wait": _latency_summary(self._wait_latency),
                "service": _latency_summary(self._service_latency),
            }
        report["caches"] = {
            "responses": self.node.response_cache.stats(),
            **self.node.system.caches.stats(),
        }
        return report
