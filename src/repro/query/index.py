"""Inverted address index: the full node's query-serving fast path.

The prover's block-level resolutions need "which transactions in block
``h`` involve address ``a``?".  Without an index the only source of that
answer is the block body itself, so every failed filter check costs a
linear scan over the whole block — O(chain) redundant work per query on
a busy address.  vChain (SIGMOD 2019) and Dietcoin both show that
verifiable-query serving lives or dies on prover-side indexing; this
module is LVQ's equivalent.

:class:`AddressIndex` maps ``address → [(height, tx_index), ...]``
(postings sorted by construction, since blocks are appended in height
order).  Per-height appearance counts — the exact leaf content of the
block's SMT — fall out of the postings by counting entries at a height.

Resident memory is the design constraint here, so the map is keyed by a
64-bit *short id* — a truncated domain-separated hash of the address —
and each posting is a single machine int ``(height << 20) | tx_index``
in a compact ``array('q')`` instead of a list of CPython tuples.  A
collision-checked intern table pins each short id to the one address
that owns it; the (astronomically rare at realistic scales, see
DESIGN.md) colliding addresses fall back to a full-string side table, so
lookups are always exact — short ids are a memory optimisation, never a
source of wrong answers.

The index is *prover-side only*: nothing in it is committed to by any
header, and the verifier never sees it.  An index that drifted from the
chain could therefore never corrupt a proof — the worst it can do is
make the prover ship evidence the verifier rejects.  The property tests
in ``tests/query/test_index.py`` pin it to brute-force
``Transaction.involves`` scans anyway.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.chain.transaction import Transaction
from repro.crypto.hashing import tagged_hash
from repro.errors import ChainError

#: Bits reserved for the tx-index half of a packed posting.  2^20
#: transactions per block is ~250× Bitcoin's historical maximum.
_TX_BITS = 20
_TX_MASK = (1 << _TX_BITS) - 1


def short_id(address: str) -> int:
    """64-bit truncated hash of ``address`` — the postings-map key.

    Domain-separated from every commitment hash in the system, so no
    adversarially chosen address string can be steered toward a target
    short id any more cheaply than brute force (~2^32 hashes for a
    single collision by the birthday bound).
    """
    return int.from_bytes(
        tagged_hash("index/sid", address.encode("utf-8"))[:8], "little"
    )


def _pack(height: int, tx_index: int) -> int:
    if tx_index > _TX_MASK:
        raise ChainError(
            f"tx index {tx_index} exceeds the {_TX_BITS}-bit posting field"
        )
    return (height << _TX_BITS) | tx_index


class AddressIndex:
    """Incremental ``address → [(height, tx_index), ...]`` postings."""

    __slots__ = (
        "_postings",
        "_intern",
        "_overflow",
        "_num_postings",
        "_next_height",
        "_height_addresses",
    )

    def __init__(self) -> None:
        #: short id → packed postings of the address *owning* that id.
        self._postings: Dict[int, array] = {}
        #: short id → owning address string.  Entries are permanent for
        #: the life of the index (never dropped on rollback), so an id's
        #: owner cannot silently change while a collision loser is
        #: parked in the overflow table.
        self._intern: Dict[int, str] = {}
        #: Collision losers: full address string → packed postings.
        self._overflow: Dict[str, array] = {}
        self._num_postings = 0
        self._next_height = 0
        #: Per-height list of distinct addresses touched — the reverse
        #: map that makes :meth:`rollback_to` O(postings removed).
        self._height_addresses: List[List[str]] = []

    # -- bucket resolution ---------------------------------------------------

    def _bucket(self, address: str) -> "array | None":
        """The packed postings for ``address``, or ``None``.

        The intern check makes short-id lookups exact: a bucket is only
        returned when the interned owner string matches byte-for-byte.
        """
        sid = short_id(address)
        if self._intern.get(sid) == address:
            return self._postings.get(sid)
        return self._overflow.get(address)

    # -- construction ------------------------------------------------------

    def add_block(
        self, height: int, transactions: Sequence[Transaction]
    ) -> None:
        """Index one block; must be called in strict height order."""
        if height != self._next_height:
            raise ChainError(
                f"index expects height {self._next_height}, got {height}"
            )
        self._next_height = height + 1
        touched: List[str] = []
        for tx_index, transaction in enumerate(transactions):
            packed = _pack(height, tx_index)
            # ``addresses()`` is already deduplicated per transaction, so
            # one transaction contributes at most one posting per address
            # (matching both ``involves()`` and the SMT count semantics).
            for address in transaction.addresses():
                sid = short_id(address)
                owner = self._intern.get(sid)
                if owner is None:
                    self._intern[sid] = address
                    self._postings[sid] = array("q", (packed,))
                    touched.append(address)
                elif owner == address:
                    bucket = self._postings.get(sid)
                    if bucket is None:
                        # Owner's postings were fully rolled back; the
                        # interned claim on the id survives, so recreate.
                        self._postings[sid] = array("q", (packed,))
                        touched.append(address)
                    else:
                        if bucket[-1] >> _TX_BITS != height:
                            touched.append(address)
                        bucket.append(packed)
                else:
                    # Short-id collision: this address loses the id and
                    # lives in the full-string overflow table forever.
                    bucket = self._overflow.get(address)
                    if bucket is None:
                        self._overflow[address] = array("q", (packed,))
                        touched.append(address)
                    else:
                        if bucket[-1] >> _TX_BITS != height:
                            touched.append(address)
                        bucket.append(packed)
                self._num_postings += 1
        self._height_addresses.append(touched)

    def rollback_to(self, height: int) -> None:
        """Drop every posting above ``height`` (the reorg path).

        Postings are appended in height order, so the stale entries of a
        bucket are exactly its tail; the per-height touch lists point
        straight at the affected buckets, making the whole rollback
        proportional to the postings removed, not the index size.
        """
        if not -1 <= height <= self.indexed_height:
            raise ChainError(
                f"cannot roll index back to height {height}; indexed tip "
                f"is {self.indexed_height}"
            )
        for stale_height in range(self.indexed_height, height, -1):
            for address in self._height_addresses[stale_height]:
                sid = short_id(address)
                if self._intern.get(sid) == address:
                    store: "Dict[int, array] | Dict[str, array]" = self._postings
                    key: "int | str" = sid
                else:
                    store = self._overflow
                    key = address
                bucket = store[key]
                while bucket and bucket[-1] >> _TX_BITS == stale_height:
                    bucket.pop()
                    self._num_postings -= 1
                if not bucket:
                    del store[key]
        del self._height_addresses[height + 1 :]
        self._next_height = height + 1

    # -- inspection --------------------------------------------------------

    @property
    def indexed_height(self) -> int:
        """Highest indexed height (``-1`` when empty)."""
        return self._next_height - 1

    @property
    def num_addresses(self) -> int:
        return len(self._postings) + len(self._overflow)

    @property
    def num_postings(self) -> int:
        return self._num_postings

    def __contains__(self, address: str) -> bool:
        return self._bucket(address) is not None

    def occurrences(self, address: str) -> List[Tuple[int, int]]:
        """All ``(height, tx_index)`` pairs for ``address``, ascending."""
        bucket = self._bucket(address)
        if bucket is None:
            return []
        return [(packed >> _TX_BITS, packed & _TX_MASK) for packed in bucket]

    def tx_indices(self, address: str, height: int) -> List[int]:
        """Indices of the transactions in block ``height`` involving
        ``address``, in block order — the existence-resolution work list."""
        bucket = self._bucket(address)
        if not bucket:
            return []
        lo = bisect_left(bucket, height << _TX_BITS)
        out: List[int] = []
        for packed in bucket[lo:]:
            if packed >> _TX_BITS != height:
                break
            out.append(packed & _TX_MASK)
        return out

    def count_at(self, address: str, height: int) -> int:
        """Number of transactions touching ``address`` in block ``height``
        — exactly the block SMT's committed count for the address."""
        return len(self.tx_indices(address, height))

    def appearance_counts(self, address: str) -> Dict[int, int]:
        """Per-height appearance counts over the whole chain."""
        counts: Dict[int, int] = {}
        for packed in self._bucket(address) or ():
            height = packed >> _TX_BITS
            counts[height] = counts.get(height, 0) + 1
        return counts

    def heights(self, address: str) -> List[int]:
        """Distinct heights touching ``address``, ascending."""
        seen: List[int] = []
        for packed in self._bucket(address) or ():
            height = packed >> _TX_BITS
            if not seen or seen[-1] != height:
                seen.append(height)
        return seen

    def touches_range(self, address: str, first: int, last: int) -> bool:
        """Does ``address`` appear anywhere in heights ``[first, last]``?

        Lets batch serving skip the per-segment resolution bookkeeping
        for address/segment pairs with no real appearances (false
        positives still surface through the Bloom checks, which this
        never short-circuits).
        """
        bucket = self._bucket(address)
        if not bucket:
            return False
        lo = bisect_left(bucket, first << _TX_BITS)
        return lo < len(bucket) and bucket[lo] >> _TX_BITS <= last

    def addresses(self) -> Iterable[str]:
        intern = self._intern
        for sid in self._postings:
            yield intern[sid]
        yield from self._overflow

    def approx_size_bytes(self) -> int:
        """Rough in-memory footprint (postings only), for capacity math."""
        import sys

        total = sys.getsizeof(self._postings) + sys.getsizeof(self._overflow)
        total += sys.getsizeof(self._intern)
        for address in self._intern.values():
            total += sys.getsizeof(address) + 8  # interned string + int key
        for bucket in self._postings.values():
            total += sys.getsizeof(bucket)
        for address, bucket in self._overflow.items():
            total += sys.getsizeof(address) + sys.getsizeof(bucket)
        return total

    def __repr__(self) -> str:
        return (
            f"AddressIndex(addresses={self.num_addresses}, "
            f"postings={self.num_postings}, tip={self.indexed_height})"
        )
