"""Inverted address index: the full node's query-serving fast path.

The prover's block-level resolutions need "which transactions in block
``h`` involve address ``a``?".  Without an index the only source of that
answer is the block body itself, so every failed filter check costs a
linear scan over the whole block — O(chain) redundant work per query on
a busy address.  vChain (SIGMOD 2019) and Dietcoin both show that
verifiable-query serving lives or dies on prover-side indexing; this
module is LVQ's equivalent.

:class:`AddressIndex` maps ``address → [(height, tx_index), ...]``
(postings sorted by construction, since blocks are appended in height
order).  Per-height appearance counts — the exact leaf content of the
block's SMT — fall out of the postings by counting entries at a height.

The index is *prover-side only*: nothing in it is committed to by any
header, and the verifier never sees it.  An index that drifted from the
chain could therefore never corrupt a proof — the worst it can do is
make the prover ship evidence the verifier rejects.  The property tests
in ``tests/query/test_index.py`` pin it to brute-force
``Transaction.involves`` scans anyway.

Memory cost (documented in DESIGN.md): one ``(int, int)`` tuple per
(address, transaction) incidence — roughly ``num_blocks × txs_per_block
× addresses_per_tx`` postings, i.e. linear in chain size with a small
constant (~100 bytes per posting of CPython overhead).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.chain.transaction import Transaction
from repro.errors import ChainError


class AddressIndex:
    """Incremental ``address → [(height, tx_index), ...]`` postings."""

    __slots__ = (
        "_postings",
        "_num_postings",
        "_next_height",
        "_height_addresses",
    )

    def __init__(self) -> None:
        self._postings: Dict[str, List[Tuple[int, int]]] = {}
        self._num_postings = 0
        self._next_height = 0
        #: Per-height list of distinct addresses touched — the reverse
        #: map that makes :meth:`rollback_to` O(postings removed).
        self._height_addresses: List[List[str]] = []

    # -- construction ------------------------------------------------------

    def add_block(
        self, height: int, transactions: Sequence[Transaction]
    ) -> None:
        """Index one block; must be called in strict height order."""
        if height != self._next_height:
            raise ChainError(
                f"index expects height {self._next_height}, got {height}"
            )
        self._next_height = height + 1
        postings = self._postings
        touched: List[str] = []
        for tx_index, transaction in enumerate(transactions):
            # ``addresses()`` is already deduplicated per transaction, so
            # one transaction contributes at most one posting per address
            # (matching both ``involves()`` and the SMT count semantics).
            for address in transaction.addresses():
                bucket = postings.get(address)
                if bucket is None:
                    postings[address] = [(height, tx_index)]
                    touched.append(address)
                else:
                    if bucket[-1][0] != height:
                        touched.append(address)
                    bucket.append((height, tx_index))
                self._num_postings += 1
        self._height_addresses.append(touched)

    def rollback_to(self, height: int) -> None:
        """Drop every posting above ``height`` (the reorg path).

        Postings are appended in height order, so the stale entries of a
        bucket are exactly its tail; the per-height touch lists point
        straight at the affected buckets, making the whole rollback
        proportional to the postings removed, not the index size.
        """
        if not -1 <= height <= self.indexed_height:
            raise ChainError(
                f"cannot roll index back to height {height}; indexed tip "
                f"is {self.indexed_height}"
            )
        for stale_height in range(self.indexed_height, height, -1):
            for address in self._height_addresses[stale_height]:
                bucket = self._postings[address]
                while bucket and bucket[-1][0] == stale_height:
                    bucket.pop()
                    self._num_postings -= 1
                if not bucket:
                    del self._postings[address]
        del self._height_addresses[height + 1 :]
        self._next_height = height + 1

    # -- inspection --------------------------------------------------------

    @property
    def indexed_height(self) -> int:
        """Highest indexed height (``-1`` when empty)."""
        return self._next_height - 1

    @property
    def num_addresses(self) -> int:
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        return self._num_postings

    def __contains__(self, address: str) -> bool:
        return address in self._postings

    def occurrences(self, address: str) -> List[Tuple[int, int]]:
        """All ``(height, tx_index)`` pairs for ``address``, ascending."""
        return list(self._postings.get(address, ()))

    def tx_indices(self, address: str, height: int) -> List[int]:
        """Indices of the transactions in block ``height`` involving
        ``address``, in block order — the existence-resolution work list."""
        bucket = self._postings.get(address)
        if not bucket:
            return []
        lo = bisect_left(bucket, (height, -1))
        out: List[int] = []
        for entry_height, tx_index in bucket[lo:]:
            if entry_height != height:
                break
            out.append(tx_index)
        return out

    def count_at(self, address: str, height: int) -> int:
        """Number of transactions touching ``address`` in block ``height``
        — exactly the block SMT's committed count for the address."""
        return len(self.tx_indices(address, height))

    def appearance_counts(self, address: str) -> Dict[int, int]:
        """Per-height appearance counts over the whole chain."""
        counts: Dict[int, int] = {}
        for height, _tx_index in self._postings.get(address, ()):
            counts[height] = counts.get(height, 0) + 1
        return counts

    def heights(self, address: str) -> List[int]:
        """Distinct heights touching ``address``, ascending."""
        seen: List[int] = []
        for height, _tx_index in self._postings.get(address, ()):
            if not seen or seen[-1] != height:
                seen.append(height)
        return seen

    def touches_range(self, address: str, first: int, last: int) -> bool:
        """Does ``address`` appear anywhere in heights ``[first, last]``?

        Lets batch serving skip the per-segment resolution bookkeeping
        for address/segment pairs with no real appearances (false
        positives still surface through the Bloom checks, which this
        never short-circuits).
        """
        bucket = self._postings.get(address)
        if not bucket:
            return False
        lo = bisect_left(bucket, (first, -1))
        return lo < len(bucket) and bucket[lo][0] <= last

    def addresses(self) -> Iterable[str]:
        return self._postings.keys()

    def approx_size_bytes(self) -> int:
        """Rough in-memory footprint (postings only), for capacity math."""
        import sys

        total = sys.getsizeof(self._postings)
        for address, bucket in self._postings.items():
            total += sys.getsizeof(address) + sys.getsizeof(bucket)
            total += len(bucket) * 72  # tuple of two small ints, CPython
        return total

    def __repr__(self) -> str:
        return (
            f"AddressIndex(addresses={self.num_addresses}, "
            f"postings={self.num_postings}, tip={self.indexed_height})"
        )
