"""Bounded, concurrency-safe query caches and the locking primitives.

PR 1 memoized block resolutions and segment multiproofs in plain dicts on
:class:`~repro.query.builder.BuiltSystem`.  Under sustained traffic those
dicts grow without limit, and under concurrent traffic they race.  This
module supplies the serving-grade replacements:

* :class:`LRUCache` — a size-bounded, thread-safe LRU with hit / miss /
  eviction counters.  It exposes the same ``get`` / ``__setitem__``
  surface the prover already uses, so the fast path did not change.
* :class:`RWLock` — a write-preferring readers/writer lock with
  *reentrant* readers.  Queries (readers) run concurrently against an
  immutable chain prefix; ``append_block`` (the writer) gets exclusive
  access, so a proof is never assembled over a half-appended block.
* :class:`SingleFlight` — request coalescing: N concurrent calls with
  the same key perform the keyed work exactly once and share the result.
* :class:`ResponseCache` — serialized response bytes behind an LRU plus
  a single-flight front, keyed ``(address, range, tip)``.  Hot addresses
  are proven and serialized once per tip and then served as a memcpy.
* :class:`QueryCaches` — the per-system bundle (resolutions, segments)
  wired into :class:`~repro.query.builder.BuiltSystem`.

Invalidation rules (DESIGN.md §8): block resolutions and segment
multiproofs are **append-stable** — a block is immutable once appended
and a merged BMT span never changes — so those entries survive chain
growth and are only ever evicted by the LRU bound.  Response bytes embed
the answering tip, so every ``append_block`` drops them.  A *reorg*
(DESIGN.md §9) is the one event that invalidates append-stable entries:
:meth:`QueryCaches.on_reorg` evicts exactly the keys whose heights reach
above the fork, and the system's reorg listeners drop every per-node
response cache (a tip-height key would alias across equal-length forks).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, Optional


class CacheStats:
    """Cumulative counters of one cache (counters survive ``clear``)."""

    __slots__ = ("hits", "misses", "evictions", "size", "max_entries")

    def __init__(
        self,
        hits: int,
        misses: int,
        evictions: int,
        size: int,
        max_entries: int,
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.max_entries = max_entries

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> "dict[str, object]":
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.max_entries})"
        )


class LRUCache:
    """A thread-safe, size-bounded LRU mapping.

    Deliberately exposes only the dict surface the query path uses
    (``get``, item assignment, ``in``, ``len``, ``clear``) so it can
    drop in for the PR-1 memo dicts.  ``None`` is not a cacheable value:
    ``get`` returning ``None`` always means "absent", which is exactly
    how the prover's memo lookups are written.
    """

    __slots__ = ("_lock", "_entries", "_max_entries", "_hits", "_misses",
                 "_evictions")

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"LRU bound must be >= 1, got {max_entries}")
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        if value is None:
            raise ValueError("LRUCache cannot store None (means 'absent')")
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> "list[Hashable]":
        """Snapshot of the keys, oldest first (for tests/introspection)."""
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        """Drop every entry; cumulative counters are preserved."""
        with self._lock:
            self._entries.clear()

    def evict_if(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``.

        The selective-invalidation hook reorgs need: entries keyed below
        the fork height survive, everything above it goes.  Returns the
        number of entries evicted (also added to the eviction counter).
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            self._evictions += len(stale)
            return len(stale)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                self._hits,
                self._misses,
                self._evictions,
                len(self._entries),
                self._max_entries,
            )


class RWLock:
    """Write-preferring readers/writer lock with reentrant readers.

    * Any number of threads may hold the read side at once.
    * The write side is exclusive (and reentrant for its owner).
    * A thread already holding the read side may re-acquire it without
      blocking even while a writer waits — required because the query
      path nests (``answer_batch_query`` → ``answer_query``) and a
      writer arriving between the two acquisitions must not deadlock us.
    * New readers queue behind a waiting writer, so a steady stream of
      queries cannot starve ``append_block``.
    * Upgrading (write while holding read) is a programming error and
      raises ``RuntimeError`` instead of deadlocking.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writer_depth",
                 "_writers_waiting", "_local")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: "threading.Thread | None" = None
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.current_thread()
        depth = getattr(self._local, "read_depth", 0)
        if depth == 0:
            with self._cond:
                if self._writer is me:
                    # The writer reading its own writes: don't count it as
                    # a reader or release_write would wait on ourselves.
                    self._local.counted = False
                else:
                    while self._writer is not None or self._writers_waiting:
                        self._cond.wait()
                    self._readers += 1
                    self._local.counted = True
        self._local.read_depth = depth + 1

    def release_read(self) -> None:
        depth = getattr(self._local, "read_depth", 0)
        if depth <= 0:
            raise RuntimeError("release_read without acquire_read")
        self._local.read_depth = depth - 1
        if depth == 1 and getattr(self._local, "counted", False):
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.current_thread()
        with self._cond:
            if self._writer is me:
                self._writer_depth += 1
                return
            if getattr(self._local, "read_depth", 0) > 0:
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers > 0:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer is not threading.current_thread():
                raise RuntimeError("release_write by a non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class _Flight:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: "BaseException | None" = None


class SingleFlight:
    """Per-key request coalescing.

    ``do(key, fn)`` runs ``fn`` exactly once per key among concurrent
    callers: the first caller (the *leader*) computes, everyone else (the
    *followers*) blocks on the leader's result.  A leader's exception
    propagates to every follower of that flight.  Once a flight lands the
    key is retired, so a later call computes afresh (caching is the
    caller's job — see :class:`ResponseCache`).
    """

    __slots__ = ("_lock", "_flights", "flights", "coalesced")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: "Dict[Hashable, _Flight]" = {}
        #: Number of leader computations performed.
        self.flights = 0
        #: Number of callers served by somebody else's computation.
        self.coalesced = 0

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
                self.flights += 1
            else:
                leader = False
                self.coalesced += 1
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            flight.value = fn()
            return flight.value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()


class ResponseCache:
    """Serialized response bytes behind an LRU and a single-flight front.

    Keys are ``(address, first_height, requested_last, tip)``; the tip
    component makes an entry self-invalidating, and ``invalidate_all``
    (called on every ``append_block``) reclaims the memory eagerly.
    """

    # __weakref__ so FullNode can register weak append listeners.
    __slots__ = ("_lru", "_flight", "__weakref__")

    def __init__(self, max_entries: int = 1024) -> None:
        self._lru = LRUCache(max_entries)
        self._flight = SingleFlight()

    def get_or_build(self, key: Hashable, build: Callable[[], bytes]) -> bytes:
        value = self._lru.get(key)
        if value is not None:
            return value

        def miss() -> bytes:
            built = build()
            self._lru[key] = built
            return built

        return self._flight.do(key, miss)

    def invalidate_all(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def stats(self) -> "dict[str, object]":
        report = self._lru.stats().as_dict()
        report["flights"] = self._flight.flights
        report["coalesced"] = self._flight.coalesced
        return report


#: Default bounds: sized for the benchmark chains (1024 blocks x a few
#: hot addresses) while keeping worst-case memory far below the chain
#: itself.  Callers with other traffic shapes pass their own QueryCaches.
DEFAULT_MAX_RESOLUTIONS = 65_536
DEFAULT_MAX_SEGMENTS = 16_384


class QueryCaches:
    """The per-system cache bundle carried by ``BuiltSystem``.

    ``resolutions`` and ``segments`` subsume PR 1's unbounded memo dicts;
    both hold append-stable values, so chain growth never invalidates
    them.  Response-byte caches live on each :class:`FullNode` (two nodes
    wrapping one system may answer differently, e.g. the adversarial
    test doubles) and register themselves via the system's append
    listeners for tip invalidation.
    """

    __slots__ = ("resolutions", "segments")

    def __init__(
        self,
        max_resolutions: int = DEFAULT_MAX_RESOLUTIONS,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ) -> None:
        self.resolutions = LRUCache(max_resolutions)
        self.segments = LRUCache(max_segments)

    def clear(self) -> None:
        self.resolutions.clear()
        self.segments.clear()

    def on_reorg(self, fork_height: int) -> "dict[str, int]":
        """Selective invalidation after a rollback to ``fork_height``.

        Blocks at or below the fork are byte-identical on both branches,
        so their memos stay valid; everything above must go:

        * resolutions are keyed ``(address, height)`` — evict
          ``height > fork``;
        * segment multiproofs are keyed ``(address, anchor, start, end,
          clipped)`` — a tree whose span reaches past the fork covers
          replaced blocks, so evict ``end > fork``.

        Response-byte caches are *not* handled here: they live per node
        and are dropped wholesale through the system's reorg listeners
        (their tip-height key would alias across forks of equal length).
        """
        return {
            "resolutions": self.resolutions.evict_if(
                lambda key: key[1] > fork_height
            ),
            "segments": self.segments.evict_if(
                lambda key: key[3] > fork_height
            ),
        }

    def stats(self) -> "dict[str, dict]":
        return {
            "resolutions": self.resolutions.stats().as_dict(),
            "segments": self.segments.stats().as_dict(),
        }
