"""Aggregated batch encoding: cross-fragment node deduplication.

The plain :meth:`BatchQueryResult.serialize` writes every proof fragment
independently, so material shared across fragments ships repeatedly:
sibling hashes of SMT/Merkle branches that answer the same block for
several addresses, BMT child hashes along overlapping frontiers, Bloom
filters of endpoint nodes two addresses both descend through, and raw
transactions that involve more than one queried address.  vChain
(SIGMOD 2019) shows that merging shared authentication-path nodes across
a batch collapses proof size; this module is LVQ's version of that idea
at the *encoding* layer, where it needs no new commitments and no new
verification logic.

The aggregated frame is::

    [varint table_len]
    [var_bytes blob] * table_len          -- first-use order
    [body]

The body is the plain batch serialization with every *blob slot* — a
32-byte hash, a Bloom-filter image, a transaction payload, an integral
block body, an address string — replaced by ``varint k``: ``k = 0``
means the blob follows inline (raw for fixed-length slots, var_bytes for
variable-length ones), ``k >= 1`` means "table entry ``k-1``".  Only
blobs that occur at least twice enter the table, so a batch with nothing
shared costs one extra byte total.

Verification is unchanged by construction: :func:`decode_aggregated_batch`
rebuilds a :class:`BatchQueryResult` whose plain serialization is
byte-for-byte identical to the original's, and the verifier only ever
sees that object.  The plain path is retained as the equivalence oracle
(``tests/query/test_aggregate.py``), exactly as PR 1 kept the naive
prover.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bloom.filter import BloomFilter
from repro.chain.transaction import Transaction
from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.crypto.hashing import HASH_SIZE
from repro.errors import EncodingError, ProofError
from repro.merkle.bmt import (
    _TAG_CLEAN_INTERNAL,
    _TAG_CLEAN_LEAF,
    _TAG_FAILED_LEAF,
    _TAG_INTERNAL,
    _TAG_STUB_INTERNAL,
    _TAG_STUB_LEAF,
    BmtMultiProof,
    _ProofNode,
)
from repro.merkle.sorted_tree import SmtBranch, SmtInexistenceProof, SmtLeaf
from repro.merkle.tree import MerkleBranch
from repro.query.batch import BatchQueryResult
from repro.query.config import SystemConfig
from repro.query.fragments import (
    _ANSWER_EMPTY,
    _RES_EXISTENCE,
    _RES_FPM,
    _RES_INTEGRAL,
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    SegmentProof,
    TxWithBranch,
)
from repro.query.result import QueryResult

#: Blobs shorter than this never enter the table — a back-reference plus
#: the table entry's length prefix would cost as much as shipping them.
_MIN_SHARED_LEN = 4
#: Sanity cap on the node-table length; far above any real batch.
_MAX_TABLE = 1_000_000


# ---------------------------------------------------------------------------
# encoder sinks / decoder source


class _CountSink:
    """Pass 1: count how often each dedupable blob occurs."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[bytes, int] = {}

    def raw(self, data: bytes) -> None:
        pass

    def varint(self, value: int) -> None:
        pass

    def fixed_blob(self, data: bytes) -> None:
        self._note(data)

    def var_blob(self, data: bytes) -> None:
        self._note(data)

    def _note(self, data: bytes) -> None:
        if len(data) >= _MIN_SHARED_LEN:
            self.counts[data] = self.counts.get(data, 0) + 1


class _EmitSink:
    """Pass 2: emit the body, back-referencing table blobs."""

    __slots__ = ("parts", "_table")

    def __init__(self, table: Dict[bytes, int]) -> None:
        self.parts: List[bytes] = []
        self._table = table

    def raw(self, data: bytes) -> None:
        self.parts.append(data)

    def varint(self, value: int) -> None:
        self.parts.append(write_varint(value))

    def fixed_blob(self, data: bytes) -> None:
        index = self._table.get(data)
        if index is None:
            self.parts.append(b"\x00")
            self.parts.append(data)
        else:
            self.parts.append(write_varint(index + 1))

    def var_blob(self, data: bytes) -> None:
        index = self._table.get(data)
        if index is None:
            self.parts.append(b"\x00")
            self.parts.append(write_var_bytes(data))
        else:
            self.parts.append(write_varint(index + 1))


class _Source:
    """Decoder cursor resolving back-references against the blob table."""

    __slots__ = ("_reader", "_table")

    def __init__(self, reader: ByteReader, table: List[bytes]) -> None:
        self._reader = reader
        self._table = table

    def raw(self, length: int) -> bytes:
        return self._reader.bytes(length)

    def varint(self) -> int:
        return self._reader.varint()

    def fixed_blob(self, length: int) -> bytes:
        k = self._reader.varint()
        if k == 0:
            return self._reader.bytes(length)
        data = self._lookup(k)
        if len(data) != length:
            raise EncodingError(
                f"blob reference {k} carries {len(data)} bytes where "
                f"{length} are required"
            )
        return data

    def var_blob(self) -> bytes:
        k = self._reader.varint()
        if k == 0:
            return self._reader.var_bytes()
        return self._lookup(k)

    def _lookup(self, k: int) -> bytes:
        if k > len(self._table):
            raise EncodingError(
                f"dangling blob reference {k} (table has "
                f"{len(self._table)} entries)"
            )
        return self._table[k - 1]


# ---------------------------------------------------------------------------
# structure walkers (encoder side)


def _walk_smt_branch(branch: SmtBranch, sink) -> None:
    sink.var_blob(branch.leaf.address.encode("utf-8"))
    sink.varint(branch.leaf.count)
    sink.varint(branch.leaf_index)
    sink.varint(len(branch.siblings))
    for sibling in branch.siblings:
        sink.fixed_blob(sibling)


def _walk_merkle_branch(branch: MerkleBranch, sink) -> None:
    sink.fixed_blob(branch.leaf_hash)
    sink.varint(branch.leaf_index)
    sink.varint(len(branch.siblings))
    for sibling in branch.siblings:
        sink.fixed_blob(sibling)


def _walk_resolution(resolution, sink) -> None:
    sink.raw(bytes([resolution.tag]))
    if isinstance(resolution, ExistenceResolution):
        sink.raw(b"\x01" if resolution.smt_branch is not None else b"\x00")
        if resolution.smt_branch is not None:
            _walk_smt_branch(resolution.smt_branch, sink)
        sink.varint(len(resolution.entries))
        for entry in resolution.entries:
            sink.var_blob(entry.transaction.serialize())
            _walk_merkle_branch(entry.branch, sink)
    elif isinstance(resolution, FpmResolution):
        proof = resolution.proof
        flags = (1 if proof.predecessor else 0) | (2 if proof.successor else 0)
        sink.raw(bytes([flags]))
        if proof.predecessor is not None:
            _walk_smt_branch(proof.predecessor, sink)
        if proof.successor is not None:
            _walk_smt_branch(proof.successor, sink)
    elif isinstance(resolution, IntegralBlockResolution):
        sink.var_blob(resolution.body)
    else:  # pragma: no cover - fragment constructors reject unknown types
        raise ProofError(f"unknown resolution type {type(resolution).__name__}")


def _walk_proof_node(node: _ProofNode, sink) -> None:
    sink.raw(bytes([node.tag]))
    if node.tag == _TAG_INTERNAL:
        assert node.left is not None and node.right is not None
        _walk_proof_node(node.left, sink)
        _walk_proof_node(node.right, sink)
        return
    assert node.bf is not None
    if node.tag == _TAG_CLEAN_INTERNAL:
        assert node.child_hashes is not None
        sink.fixed_blob(node.child_hashes[0])
        sink.fixed_blob(node.child_hashes[1])
    elif node.tag == _TAG_STUB_INTERNAL:
        assert node.stub_hash is not None
        sink.fixed_blob(node.stub_hash)
    sink.fixed_blob(node.bf.to_bytes())


def _walk_segment(segment: SegmentProof, sink) -> None:
    sink.varint(segment.anchor)
    sink.varint(segment.start)
    sink.varint(segment.end)
    _walk_proof_node(segment.multiproof._root, sink)
    sink.varint(len(segment.resolutions))
    for height in sorted(segment.resolutions):
        sink.varint(height)
        _walk_resolution(segment.resolutions[height], sink)


def _walk_batch(batch: BatchQueryResult, config: SystemConfig, sink) -> None:
    sink.varint(len(batch.addresses))
    for address in batch.addresses:
        sink.var_blob(address.encode("utf-8"))
    sink.varint(batch.tip_height)
    sink.varint(batch.first_height)
    sink.varint(batch.last_height)
    if config.uses_bmt:
        assert batch.per_address_segments is not None
        for segments in batch.per_address_segments:
            sink.varint(len(segments))
            for segment in segments:
                _walk_segment(segment, sink)
        return
    assert batch.per_address_answers is not None
    if config.ships_block_filters:
        if batch.shared_filters is None or len(batch.shared_filters) != (
            batch.num_blocks
        ):
            raise ProofError("batch must ship one filter per block")
        for bf in batch.shared_filters:
            sink.fixed_blob(bf.to_bytes())
    for answers in batch.per_address_answers:
        for resolution in answers:
            if resolution is None:
                sink.raw(bytes([_ANSWER_EMPTY]))
            else:
                _walk_resolution(resolution, sink)


# ---------------------------------------------------------------------------
# structure readers (decoder side)


def _utf8(raw: bytes) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EncodingError(f"not UTF-8: {exc}") from exc


def _read_smt_branch(src: _Source) -> SmtBranch:
    address = _utf8(src.var_blob())
    count = src.varint()
    # Mirror SmtLeaf.deserialize: bypass the constructor's sentinel-space
    # check so honest sentinel leaves (and the oracle) round-trip exactly.
    leaf = SmtLeaf.__new__(SmtLeaf)
    leaf.address = address
    leaf.count = count
    leaf_index = src.varint()
    depth = src.varint()
    if depth > 64:
        raise EncodingError(f"implausible SMT branch depth {depth}")
    siblings = [src.fixed_blob(HASH_SIZE) for _ in range(depth)]
    return SmtBranch(leaf, leaf_index, siblings)


def _read_merkle_branch(src: _Source) -> MerkleBranch:
    leaf_hash = src.fixed_blob(HASH_SIZE)
    leaf_index = src.varint()
    depth = src.varint()
    if depth > 64:
        raise EncodingError(f"implausible branch depth {depth}")
    siblings = [src.fixed_blob(HASH_SIZE) for _ in range(depth)]
    return MerkleBranch(leaf_hash, leaf_index, siblings)


def _read_resolution_body(tag: int, src: _Source):
    if tag == _RES_EXISTENCE:
        has_smt = src.raw(1)[0]
        if has_smt not in (0, 1):
            raise EncodingError(f"bad SMT flag {has_smt}")
        smt_branch = _read_smt_branch(src) if has_smt else None
        count = src.varint()
        if count == 0 or count > 1_000_000:
            raise EncodingError(f"implausible entry count {count}")
        entries = []
        for _ in range(count):
            transaction = Transaction.from_bytes(src.var_blob())
            entries.append(TxWithBranch(transaction, _read_merkle_branch(src)))
        return ExistenceResolution(smt_branch, entries)
    if tag == _RES_FPM:
        flags = src.raw(1)[0]
        if flags not in (1, 2, 3):
            raise EncodingError(f"bad SMT inexistence flags {flags}")
        predecessor = _read_smt_branch(src) if flags & 1 else None
        successor = _read_smt_branch(src) if flags & 2 else None
        return FpmResolution(SmtInexistenceProof(predecessor, successor))
    if tag == _RES_INTEGRAL:
        return IntegralBlockResolution(src.var_blob())
    raise EncodingError(f"unknown resolution tag {tag}")


def _read_proof_node(
    src: _Source, bf_bytes: int, num_hashes: int, depth: int
) -> _ProofNode:
    if depth > 64:
        raise EncodingError("BMT multiproof nests implausibly deep")
    tag = src.raw(1)[0]
    if tag == _TAG_INTERNAL:
        left = _read_proof_node(src, bf_bytes, num_hashes, depth + 1)
        right = _read_proof_node(src, bf_bytes, num_hashes, depth + 1)
        return _ProofNode(_TAG_INTERNAL, left=left, right=right)
    child_hashes = None
    stub_hash = None
    if tag == _TAG_CLEAN_INTERNAL:
        child_hashes = (src.fixed_blob(HASH_SIZE), src.fixed_blob(HASH_SIZE))
    elif tag == _TAG_STUB_INTERNAL:
        stub_hash = src.fixed_blob(HASH_SIZE)
    elif tag not in (_TAG_CLEAN_LEAF, _TAG_FAILED_LEAF, _TAG_STUB_LEAF):
        raise EncodingError(f"unknown BMT multiproof tag {tag}")
    bf = BloomFilter.from_bytes(src.fixed_blob(bf_bytes), num_hashes)
    return _ProofNode(tag, bf=bf, child_hashes=child_hashes, stub_hash=stub_hash)


def _read_segment(src: _Source, config: SystemConfig) -> SegmentProof:
    anchor = src.varint()
    start = src.varint()
    end = src.varint()
    multiproof = BmtMultiProof(
        _read_proof_node(src, config.bf_bytes, config.num_hashes, 0)
    )
    count = src.varint()
    if count > end - start + 1:
        raise EncodingError(
            f"{count} resolutions for a {end - start + 1}-block segment"
        )
    resolutions: Dict[int, object] = {}
    for _ in range(count):
        height = src.varint()
        if height in resolutions:
            raise EncodingError(f"duplicate resolution height {height}")
        tag = src.raw(1)[0]
        resolutions[height] = _read_resolution_body(tag, src)
    return SegmentProof(anchor, start, end, multiproof, resolutions)


def _read_batch(src: _Source, config: SystemConfig) -> BatchQueryResult:
    count = src.varint()
    if count == 0 or count > 10_000:
        raise EncodingError(f"implausible batch address count {count}")
    addresses = [_utf8(src.var_blob()) for _ in range(count)]
    tip_height = src.varint()
    first_height = src.varint()
    last_height = src.varint()
    if not 1 <= first_height <= last_height <= tip_height:
        raise EncodingError(f"bad batch range [{first_height},{last_height}]")
    num_blocks = last_height - first_height + 1

    if config.uses_bmt:
        per_address_segments = []
        for _ in range(count):
            segment_count = src.varint()
            if segment_count > num_blocks:
                raise EncodingError("more segments than blocks")
            per_address_segments.append(
                [_read_segment(src, config) for _ in range(segment_count)]
            )
        return BatchQueryResult(
            config.kind,
            addresses,
            tip_height,
            first_height,
            last_height,
            per_address_segments=per_address_segments,
        )

    shared_filters = None
    if config.ships_block_filters:
        shared_filters = [
            BloomFilter.from_bytes(
                src.fixed_blob(config.bf_bytes), config.num_hashes
            )
            for _ in range(num_blocks)
        ]
    per_address_answers: List[List[object]] = []
    for _ in range(count):
        answers: List[object] = []
        for _height in range(num_blocks):
            tag = src.raw(1)[0]
            if tag == _ANSWER_EMPTY:
                answers.append(None)
            else:
                answers.append(_read_resolution_body(tag, src))
        per_address_answers.append(answers)
    return BatchQueryResult(
        config.kind,
        addresses,
        tip_height,
        first_height,
        last_height,
        shared_filters=shared_filters,
        per_address_answers=per_address_answers,
    )


# ---------------------------------------------------------------------------
# public API


def encode_aggregated_batch(
    batch: BatchQueryResult, config: SystemConfig
) -> bytes:
    """Serialize ``batch`` with cross-fragment blob deduplication."""
    if config.kind is not batch.kind:
        raise ProofError(
            f"batch built for {batch.kind.value} aggregated with a "
            f"{config.kind.value} config"
        )
    counter = _CountSink()
    _walk_batch(batch, config, counter)
    table: Dict[bytes, int] = {}
    for data, occurrences in counter.counts.items():
        if occurrences >= 2:
            table[data] = len(table)
    if len(table) > _MAX_TABLE:  # pragma: no cover - needs a absurd batch
        raise EncodingError(f"blob table overflows: {len(table)} entries")
    emit = _EmitSink(table)
    _walk_batch(batch, config, emit)
    parts = [write_varint(len(table))]
    parts.extend(write_var_bytes(data) for data in table)
    parts.extend(emit.parts)
    return b"".join(parts)


def decode_aggregated_batch(
    payload: bytes, config: SystemConfig
) -> BatchQueryResult:
    """Inverse of :func:`encode_aggregated_batch`.

    Malformed input — dangling back-references, wrong-length blobs,
    truncation, trailing bytes, any structural violation — raises
    :class:`EncodingError`; the verifier then never sees the batch.
    """
    reader = ByteReader(payload)
    count = reader.varint()
    if count > _MAX_TABLE:
        raise EncodingError(f"implausible blob table length {count}")
    table = [reader.var_bytes() for _ in range(count)]
    src = _Source(reader, table)
    try:
        batch = _read_batch(src, config)
    except ProofError as exc:
        raise EncodingError(str(exc)) from exc
    reader.finish()
    return batch


def aggregated_size_bytes(batch: BatchQueryResult, config: SystemConfig) -> int:
    return len(encode_aggregated_batch(batch, config))


def batch_of_result(result: QueryResult) -> BatchQueryResult:
    """View a single-address :class:`QueryResult` as a batch of one.

    This is how per-query tooling (``SizeBreakdown``, the CLI) reports
    aggregated wire sizes without a separate single-result encoder.
    """
    if result.segments is not None:
        return BatchQueryResult(
            result.kind,
            [result.address],
            result.tip_height,
            result.first_height,
            result.last_height,
            per_address_segments=[result.segments],
        )
    assert result.blocks is not None
    filters = None
    if result.blocks and result.blocks[0].bf is not None:
        filters = [answer.bf for answer in result.blocks]
    return BatchQueryResult(
        result.kind,
        [result.address],
        result.tip_height,
        result.first_height,
        result.last_height,
        shared_filters=filters,
        per_address_answers=[[answer.resolution for answer in result.blocks]],
    )
