"""Light-node-side verification (§V, §VI).

``verify_result`` accepts nothing on faith: it holds only the header list
(the light node's storage) and the chain's :class:`SystemConfig`, and it
re-derives every expectation — the covering segments, the checked bit
positions, every Merkle/SMT/BMT root — before accepting a single
transaction into the history.

Error discipline:

* :class:`CorrectnessError` — the result contains data that is not on
  chain (a branch that does not meet its root, a transaction that does
  not involve the address, a filter that does not match its commitment);
* :class:`CompletenessError` — the result omits something it must prove
  (an uncovered block range, a missing resolution, fewer transactions
  than the SMT count, a non-adjacent predecessor/successor pair).

Both derive from :class:`VerificationError` for callers that only care
about accept/reject.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bloom.filter import PositionCache
from repro.chain.address import address_item
from repro.chain.block import (
    Block,
    BlockHeader,
    BloomExtension,
    BloomHashExtension,
    BloomHashSmtExtension,
    BmtExtension,
    LvqExtension,
)
from repro.chain.segments import covering_spans
from repro.chain.transaction import Transaction
from repro.chain.utxo import balance_from_history
from repro.errors import (
    CompletenessError,
    CorrectnessError,
    VerificationError,
)
from repro.merkle.tree import MerkleTree
from repro.query.config import SystemConfig, SystemKind, bf_commitment
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
)
from repro.query.result import QueryResult


class VerifiedHistory:
    """The accepted outcome of a query: a provably complete history."""

    __slots__ = ("address", "transactions", "num_endpoints")

    def __init__(
        self,
        address: str,
        transactions: List[Tuple[int, Transaction]],
        num_endpoints: Optional[int],
    ) -> None:
        self.address = address
        #: ``(height, transaction)`` pairs, ascending by height.
        self.transactions = transactions
        #: BMT endpoint count (``None`` on non-BMT systems) — Fig 15/16.
        self.num_endpoints = num_endpoints

    def balance(self) -> int:
        """Equation 1 over the verified history."""
        return balance_from_history(
            self.address, (tx for _height, tx in self.transactions)
        )

    def heights(self) -> List[int]:
        return sorted({height for height, _tx in self.transactions})

    def counts_by_height(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for height, _tx in self.transactions:
            counts[height] = counts.get(height, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"VerifiedHistory({self.address[:12]}…, "
            f"txs={len(self.transactions)}, blocks={len(self.heights())})"
        )


def verify_result(
    result: QueryResult,
    headers: Sequence[BlockHeader],
    config: SystemConfig,
    expected_address: Optional[str] = None,
    expected_range: "Optional[Tuple[int, int]]" = None,
) -> VerifiedHistory:
    """Verify ``result`` against trusted ``headers``; raise on any flaw.

    ``expected_range`` pins the height range the caller asked for; when
    given, a result answering a different slice is rejected before any
    proof is examined (so a prover cannot silently narrow the question).
    """
    if result.kind is not config.kind:
        raise VerificationError(
            f"result claims system {result.kind.value}, chain runs "
            f"{config.kind.value}"
        )
    if expected_address is not None and result.address != expected_address:
        raise VerificationError(
            f"result answers {result.address!r}, asked about "
            f"{expected_address!r}"
        )
    tip_height = len(headers) - 1
    if tip_height < 1:
        raise VerificationError("need at least one block beyond genesis")
    if result.tip_height != tip_height:
        raise CompletenessError(
            f"result covers up to height {result.tip_height}, local chain "
            f"tip is {tip_height}"
        )
    if expected_range is not None:
        if (result.first_height, result.last_height) != expected_range:
            raise CompletenessError(
                f"asked about heights {expected_range}, result answers "
                f"[{result.first_height},{result.last_height}]"
            )
    if not 1 <= result.first_height <= result.last_height <= tip_height:
        raise VerificationError(
            f"result range [{result.first_height},{result.last_height}] "
            f"is not a valid slice of heights 1..{tip_height}"
        )
    if config.uses_bmt:
        return _verify_segments(result, headers, config)
    return _verify_per_block(result, headers, config)


# ---------------------------------------------------------------------------
# BMT systems


def _verify_segments(
    result: QueryResult, headers: Sequence[BlockHeader], config: SystemConfig
) -> VerifiedHistory:
    assert config.segment_len is not None and result.segments is not None
    item = address_item(result.address)
    cache = PositionCache(item)
    first, last = result.first_height, result.last_height
    expected = [
        span
        for span in covering_spans(len(headers) - 1, config.segment_len)
        if not (span[2] < first or span[1] > last)
    ]
    actual = [(seg.anchor, seg.start, seg.end) for seg in result.segments]
    if actual != expected:
        raise CompletenessError(
            f"segment coverage mismatch: expected {expected}, got {actual}"
        )

    transactions: List[Tuple[int, Transaction]] = []
    num_endpoints = 0
    for segment in result.segments:
        bmt_root = _bmt_root_of(headers[segment.anchor], segment.anchor)
        clipped = (max(segment.start, first), min(segment.end, last))
        try:
            verified = segment.multiproof.verify(
                bmt_root,
                item,
                segment.start,
                segment.num_blocks,
                config.bf_bits,
                config.num_hashes,
                query_range=clipped,
                positions=cache.positions(config.num_hashes, config.bf_bits),
            )
        except VerificationError as exc:
            raise CorrectnessError(
                f"segment [{segment.start},{segment.end}]: {exc}"
            ) from exc
        num_endpoints += verified.num_endpoints

        failed = sorted(verified.failed_heights)
        supplied = sorted(segment.resolutions)
        if failed != supplied:
            raise CompletenessError(
                f"segment [{segment.start},{segment.end}]: filter checks "
                f"failed at heights {failed} but resolutions cover {supplied}"
            )
        for height in failed:
            transactions.extend(
                _verify_resolution(
                    segment.resolutions[height],
                    height,
                    headers[height],
                    config,
                    result.address,
                )
            )
    transactions.sort(key=lambda pair: pair[0])
    return VerifiedHistory(result.address, transactions, num_endpoints)


# ---------------------------------------------------------------------------
# per-block systems


def _verify_per_block(
    result: QueryResult, headers: Sequence[BlockHeader], config: SystemConfig
) -> VerifiedHistory:
    assert result.blocks is not None
    cache = PositionCache(address_item(result.address))
    first, last = result.first_height, result.last_height
    if len(result.blocks) != last - first + 1:
        raise CompletenessError(
            f"expected one answer per block (heights {first}..{last}), "
            f"got {len(result.blocks)}"
        )

    transactions: List[Tuple[int, Transaction]] = []
    for offset, answer in enumerate(result.blocks):
        height = offset + first
        header = headers[height]
        bf = _authenticated_filter(answer.bf, header, config, height)
        if not cache.check_fails(bf):
            if answer.resolution is not None:
                raise VerificationError(
                    f"height {height}: filter check succeeds, yet the "
                    "answer carries block-level evidence"
                )
            continue
        if answer.resolution is None:
            raise CompletenessError(
                f"height {height}: filter check failed but the full node "
                "supplied no evidence"
            )
        transactions.extend(
            _verify_resolution(
                answer.resolution, height, header, config, result.address
            )
        )
    transactions.sort(key=lambda pair: pair[0])
    return VerifiedHistory(result.address, transactions, None)


def _authenticated_filter(shipped, header, config: SystemConfig, height: int):
    """The per-block filter, authenticated against the header."""
    if config.kind is SystemKind.STRAWMAN_HEADER_BF:
        if shipped is not None:
            raise VerificationError(
                f"height {height}: the filter lives in the header; the "
                "answer must not ship one"
            )
        extension = header.extension
        if not isinstance(extension, BloomExtension):
            raise VerificationError(
                f"height {height}: header lacks the strawman BF extension"
            )
        bloom = extension.bloom
        if bloom.size_bits != config.bf_bits:
            raise VerificationError(
                f"height {height}: header filter has {bloom.size_bits} bits, "
                f"config says {config.bf_bits}"
            )
        # Headers store raw bits; the hash count is a chain parameter.
        bloom.num_hashes = config.num_hashes
        return bloom

    if shipped is None:
        raise CompletenessError(
            f"height {height}: this system requires the filter in the answer"
        )
    extension = header.extension
    if isinstance(extension, BloomHashExtension):
        committed = extension.bloom_hash
    elif isinstance(extension, BloomHashSmtExtension):
        committed = extension.bloom_hash
    else:
        raise VerificationError(
            f"height {height}: header carries no filter commitment"
        )
    if bf_commitment(shipped) != committed:
        raise CorrectnessError(
            f"height {height}: shipped filter does not match the header "
            "commitment"
        )
    return shipped


# ---------------------------------------------------------------------------
# block-level resolutions


def _verify_resolution(
    resolution,
    height: int,
    header: BlockHeader,
    config: SystemConfig,
    address: str,
) -> List[Tuple[int, Transaction]]:
    if isinstance(resolution, ExistenceResolution):
        return _verify_existence(resolution, height, header, config, address)
    if isinstance(resolution, FpmResolution):
        _verify_fpm(resolution, height, header, config, address)
        return []
    if isinstance(resolution, IntegralBlockResolution):
        return _verify_integral(resolution, height, header, config, address)
    raise VerificationError(
        f"height {height}: unknown resolution {type(resolution).__name__}"
    )


def _smt_root_of(header: BlockHeader, height: int) -> bytes:
    extension = header.extension
    if isinstance(extension, LvqExtension):
        return extension.smt_root
    if isinstance(extension, BloomHashSmtExtension):
        return extension.smt_root
    raise VerificationError(f"height {height}: header commits to no SMT")


def _bmt_root_of(header: BlockHeader, height: int) -> bytes:
    extension = header.extension
    if isinstance(extension, LvqExtension):
        return extension.bmt_root
    if isinstance(extension, BmtExtension):
        return extension.bmt_root
    raise VerificationError(f"height {height}: header commits to no BMT")


def _verify_existence(
    resolution: ExistenceResolution,
    height: int,
    header: BlockHeader,
    config: SystemConfig,
    address: str,
) -> List[Tuple[int, Transaction]]:
    if config.kind is SystemKind.LVQ_NO_SMT:
        raise CompletenessError(
            f"height {height}: without an SMT, Merkle branches cannot prove "
            "completeness; an integral block is required"
        )
    if config.uses_smt:
        branch = resolution.smt_branch
        if branch is None:
            raise CompletenessError(
                f"height {height}: existence evidence lacks the SMT count "
                "branch"
            )
        if not branch.verify(_smt_root_of(header, height)):
            raise CorrectnessError(
                f"height {height}: SMT branch does not match the header root"
            )
        if branch.leaf.address != address:
            raise CorrectnessError(
                f"height {height}: SMT branch authenticates "
                f"{branch.leaf.address!r}, not {address!r}"
            )
        if branch.leaf.count != len(resolution.entries):
            raise CompletenessError(
                f"height {height}: SMT commits to {branch.leaf.count} "
                f"transactions, answer exhibits {len(resolution.entries)}"
            )
    elif resolution.smt_branch is not None:
        raise VerificationError(
            f"height {height}: this system has no SMT, yet the answer "
            "carries an SMT branch"
        )

    seen_indices = set()
    accepted = []
    for entry in resolution.entries:
        if entry.branch.leaf_index in seen_indices:
            raise CorrectnessError(
                f"height {height}: duplicate Merkle leaf "
                f"{entry.branch.leaf_index} in existence evidence"
            )
        seen_indices.add(entry.branch.leaf_index)
        if entry.branch.leaf_hash != entry.transaction.txid():
            raise CorrectnessError(
                f"height {height}: Merkle branch leaf does not hash the "
                "supplied transaction"
            )
        if not entry.branch.verify(header.merkle_root):
            raise CorrectnessError(
                f"height {height}: Merkle branch does not match the header "
                "root"
            )
        if not entry.transaction.involves(address):
            raise CorrectnessError(
                f"height {height}: supplied transaction does not involve "
                f"{address!r}"
            )
        accepted.append((height, entry.transaction))
    return accepted


def _verify_fpm(
    resolution: FpmResolution,
    height: int,
    header: BlockHeader,
    config: SystemConfig,
    address: str,
) -> None:
    if not config.uses_smt:
        raise VerificationError(
            f"height {height}: this system has no SMT to refute false "
            "positives with"
        )
    try:
        resolution.proof.verify(_smt_root_of(header, height), address)
    except VerificationError as exc:
        raise CompletenessError(f"height {height}: {exc}") from exc


def _verify_integral(
    resolution: IntegralBlockResolution,
    height: int,
    header: BlockHeader,
    config: SystemConfig,
    address: str,
) -> List[Tuple[int, Transaction]]:
    if config.uses_smt:
        raise VerificationError(
            f"height {height}: SMT systems never fall back to integral "
            "blocks"
        )
    transactions = Block.body_from_bytes(resolution.body)
    rebuilt = MerkleTree([tx.txid() for tx in transactions])
    if rebuilt.root != header.merkle_root:
        raise CorrectnessError(
            f"height {height}: integral block does not match the header "
            "Merkle root"
        )
    return [
        (height, transaction)
        for transaction in transactions
        if transaction.involves(address)
    ]
