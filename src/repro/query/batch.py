"""Batch queries: one verifiable answer for several addresses.

On the hash-committed non-BMT systems (strawman, LVQ-no-BMT) the
dominant cost is shipping every block's filter; a batch ships each
filter **once** and shares it across all queried addresses, so the
marginal cost of an extra address is just its resolutions.  On BMT
systems each address needs its own multiproof (its checked bit positions
differ), so a batch is the concatenation of per-address segment proofs —
still one message, no filter sharing to exploit.

Verification amortizes the same way: each shared filter is matched
against its header commitment once, then every address's Eq-4 logic runs
against the already-authenticated filter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bloom.filter import BloomFilter, PositionCache
from repro.chain.address import address_item
from repro.chain.block import BlockHeader
from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.errors import (
    CompletenessError,
    EncodingError,
    ProofError,
    QueryError,
    VerificationError,
)
from repro.query.builder import BuiltSystem
from repro.query.config import SystemConfig, bf_commitment
from repro.query.fragments import SegmentProof, _serialize_resolution
from repro.query.prover import _resolve_block, answer_query
from repro.query.result import QueryResult
from repro.query.verifier import (
    VerifiedHistory,
    _verify_resolution,
    verify_result,
)

_ANSWER_EMPTY = 0xFF


class BatchQueryResult:
    """Wire answer for a multi-address query."""

    __slots__ = (
        "kind",
        "addresses",
        "tip_height",
        "first_height",
        "last_height",
        "shared_filters",
        "per_address_answers",
        "per_address_segments",
    )

    def __init__(
        self,
        kind,
        addresses: List[str],
        tip_height: int,
        first_height: int,
        last_height: int,
        shared_filters: Optional[List[BloomFilter]] = None,
        per_address_answers: Optional[List[List[object]]] = None,
        per_address_segments: Optional[List[List[SegmentProof]]] = None,
    ) -> None:
        if not addresses:
            raise ProofError("batch query needs at least one address")
        if len(set(addresses)) != len(addresses):
            raise ProofError("batch addresses must be distinct")
        if (per_address_answers is None) == (per_address_segments is None):
            raise ProofError(
                "a batch carries either per-block answers or segment proofs"
            )
        if not 1 <= first_height <= last_height <= tip_height:
            raise ProofError(
                f"bad query range [{first_height},{last_height}] for tip "
                f"{tip_height}"
            )
        self.kind = kind
        self.addresses = addresses
        self.tip_height = tip_height
        self.first_height = first_height
        self.last_height = last_height
        self.shared_filters = shared_filters
        self.per_address_answers = per_address_answers
        self.per_address_segments = per_address_segments

    @property
    def num_blocks(self) -> int:
        return self.last_height - self.first_height + 1

    # -- serialization -----------------------------------------------------

    def serialize(self, config: SystemConfig) -> bytes:
        parts = [write_varint(len(self.addresses))]
        parts.extend(
            write_var_bytes(address.encode("utf-8"))
            for address in self.addresses
        )
        parts.append(write_varint(self.tip_height))
        parts.append(write_varint(self.first_height))
        parts.append(write_varint(self.last_height))
        if config.uses_bmt:
            assert self.per_address_segments is not None
            for segments in self.per_address_segments:
                parts.append(write_varint(len(segments)))
                parts.extend(segment.serialize() for segment in segments)
            return b"".join(parts)

        assert self.per_address_answers is not None
        if config.ships_block_filters:
            if self.shared_filters is None or len(self.shared_filters) != (
                self.num_blocks
            ):
                raise ProofError("batch must ship one filter per block")
            parts.extend(bf.to_bytes() for bf in self.shared_filters)
        for answers in self.per_address_answers:
            for resolution in answers:
                if resolution is None:
                    parts.append(bytes([_ANSWER_EMPTY]))
                else:
                    parts.append(_serialize_resolution(resolution))
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls, payload: bytes, config: SystemConfig
    ) -> "BatchQueryResult":
        reader = ByteReader(payload)
        count = reader.varint()
        if count == 0 or count > 10_000:
            raise EncodingError(f"implausible batch address count {count}")
        addresses = []
        for _ in range(count):
            try:
                addresses.append(reader.var_bytes().decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise EncodingError(f"batch address not UTF-8: {exc}") from exc
        tip_height = reader.varint()
        first_height = reader.varint()
        last_height = reader.varint()
        if not 1 <= first_height <= last_height <= tip_height:
            raise EncodingError(
                f"bad batch range [{first_height},{last_height}]"
            )
        num_blocks = last_height - first_height + 1

        if config.uses_bmt:
            per_address_segments = []
            for _ in range(count):
                segment_count = reader.varint()
                if segment_count > num_blocks:
                    raise EncodingError("more segments than blocks")
                per_address_segments.append(
                    [
                        SegmentProof.deserialize(reader, config)
                        for _ in range(segment_count)
                    ]
                )
            reader.finish()
            return cls(
                config.kind,
                addresses,
                tip_height,
                first_height,
                last_height,
                per_address_segments=per_address_segments,
            )

        shared_filters = None
        if config.ships_block_filters:
            shared_filters = [
                BloomFilter.from_bytes(
                    reader.bytes(config.bf_bytes), config.num_hashes
                )
                for _ in range(num_blocks)
            ]
        per_address_answers: List[List[object]] = []
        for _ in range(count):
            answers: List[object] = []
            for _height in range(num_blocks):
                tag = reader.bytes(1)[0]
                if tag == _ANSWER_EMPTY:
                    answers.append(None)
                else:
                    # Re-wind one byte by dispatching on the tag directly.
                    answers.append(_deserialize_resolution_from_tag(tag, reader))
            per_address_answers.append(answers)
        reader.finish()
        return cls(
            config.kind,
            addresses,
            tip_height,
            first_height,
            last_height,
            shared_filters=shared_filters,
            per_address_answers=per_address_answers,
        )

    def size_bytes(self, config: SystemConfig) -> int:
        return len(self.serialize(config))


def _deserialize_resolution_from_tag(tag: int, reader: ByteReader):
    from repro.query.fragments import _RESOLUTION_BY_TAG

    cls = _RESOLUTION_BY_TAG.get(tag)
    if cls is None:
        raise EncodingError(f"unknown batch resolution tag {tag}")
    return cls.deserialize(reader)


# ---------------------------------------------------------------------------
# prover side


def answer_batch_query(
    system: BuiltSystem,
    addresses: Sequence[str],
    first_height: int = 1,
    last_height: "int | None" = None,
) -> BatchQueryResult:
    """The honest full node's shared answer for several addresses.

    Runs under the system's read lock (reentrantly shared with the
    nested per-address ``answer_query`` calls), so the whole batch is
    answered against one consistent tip.
    """
    if not addresses:
        raise QueryError("batch query needs at least one address")
    if any(not address for address in addresses):
        raise QueryError("empty address in batch query")
    with system.lock.read():
        return _answer_batch_locked(system, addresses, first_height, last_height)


def _answer_batch_locked(
    system: BuiltSystem,
    addresses: Sequence[str],
    first_height: int,
    last_height: "int | None",
) -> "BatchQueryResult":
    if last_height is None:
        last_height = system.tip_height
    config = system.config

    if config.uses_bmt:
        per_address_segments = []
        for address in addresses:
            result = answer_query(system, address, first_height, last_height)
            assert result.segments is not None
            per_address_segments.append(result.segments)
        return BatchQueryResult(
            config.kind,
            list(addresses),
            system.tip_height,
            first_height,
            last_height,
            per_address_segments=per_address_segments,
        )

    if not 1 <= first_height <= last_height <= system.tip_height:
        raise QueryError(
            f"bad query range [{first_height},{last_height}] for tip "
            f"{system.tip_height}"
        )
    shared_filters = [
        system.filters[height]
        for height in range(first_height, last_height + 1)
    ]
    per_address_answers: List[List[object]] = []
    for address in addresses:
        cache = PositionCache(address_item(address))
        answers: List[object] = []
        for offset, bf in enumerate(shared_filters):
            height = first_height + offset
            if not cache.check_fails(bf):
                answers.append(None)
            else:
                answers.append(_resolve_block(system, height, address))
        per_address_answers.append(answers)
    return BatchQueryResult(
        config.kind,
        list(addresses),
        system.tip_height,
        first_height,
        last_height,
        shared_filters=shared_filters if config.ships_block_filters else [],
        per_address_answers=per_address_answers,
    )


# ---------------------------------------------------------------------------
# verifier side


def verify_batch_result(
    batch: BatchQueryResult,
    headers: Sequence[BlockHeader],
    config: SystemConfig,
    expected_addresses: Optional[Sequence[str]] = None,
    expected_range: Optional[Tuple[int, int]] = None,
) -> Dict[str, VerifiedHistory]:
    """Verify a batch answer; returns one verified history per address."""
    if batch.kind is not config.kind:
        raise VerificationError(
            f"batch claims system {batch.kind.value}, chain runs "
            f"{config.kind.value}"
        )
    if expected_addresses is not None and list(expected_addresses) != (
        batch.addresses
    ):
        raise VerificationError("batch answers a different address list")
    tip_height = len(headers) - 1
    if batch.tip_height != tip_height:
        raise CompletenessError(
            f"batch covers up to height {batch.tip_height}, local tip is "
            f"{tip_height}"
        )
    if expected_range is not None and expected_range != (
        batch.first_height,
        batch.last_height,
    ):
        raise CompletenessError(
            f"asked about heights {expected_range}, batch answers "
            f"[{batch.first_height},{batch.last_height}]"
        )

    if config.uses_bmt:
        assert batch.per_address_segments is not None
        if len(batch.per_address_segments) != len(batch.addresses):
            raise CompletenessError("segment lists do not match addresses")
        histories = {}
        for address, segments in zip(
            batch.addresses, batch.per_address_segments
        ):
            result = QueryResult(
                config.kind,
                address,
                batch.tip_height,
                segments=segments,
                first_height=batch.first_height,
                last_height=batch.last_height,
            )
            histories[address] = verify_result(result, headers, config, address)
        return histories

    return _verify_shared_filter_batch(batch, headers, config)


def _verify_shared_filter_batch(
    batch: BatchQueryResult,
    headers: Sequence[BlockHeader],
    config: SystemConfig,
) -> Dict[str, VerifiedHistory]:
    assert batch.per_address_answers is not None
    if len(batch.per_address_answers) != len(batch.addresses):
        raise CompletenessError("answer lists do not match addresses")
    for answers in batch.per_address_answers:
        if len(answers) != batch.num_blocks:
            raise CompletenessError(
                f"expected {batch.num_blocks} per-block answers, got "
                f"{len(answers)}"
            )

    # Authenticate every filter once (the amortized step).
    filters = _authenticated_batch_filters(batch, headers, config)

    histories: Dict[str, VerifiedHistory] = {}
    for address, answers in zip(batch.addresses, batch.per_address_answers):
        cache = PositionCache(address_item(address))
        transactions = []
        for offset, resolution in enumerate(answers):
            height = batch.first_height + offset
            bf = filters[offset]
            if not cache.check_fails(bf):
                if resolution is not None:
                    raise VerificationError(
                        f"height {height}: filter check succeeds for "
                        f"{address!r}, yet evidence was supplied"
                    )
                continue
            if resolution is None:
                raise CompletenessError(
                    f"height {height}: filter check failed for {address!r} "
                    "but no evidence was supplied"
                )
            transactions.extend(
                _verify_resolution(
                    resolution, height, headers[height], config, address
                )
            )
        transactions.sort(key=lambda pair: pair[0])
        histories[address] = VerifiedHistory(address, transactions, None)
    return histories


def _authenticated_batch_filters(
    batch: BatchQueryResult,
    headers: Sequence[BlockHeader],
    config: SystemConfig,
) -> List[BloomFilter]:
    from repro.chain.block import (
        BloomExtension,
        BloomHashExtension,
        BloomHashSmtExtension,
    )
    from repro.query.config import SystemKind

    filters: List[BloomFilter] = []
    for offset in range(batch.num_blocks):
        height = batch.first_height + offset
        header = headers[height]
        if config.kind is SystemKind.STRAWMAN_HEADER_BF:
            extension = header.extension
            if not isinstance(extension, BloomExtension):
                raise VerificationError(
                    f"height {height}: header lacks the strawman filter"
                )
            bloom = extension.bloom
            bloom.num_hashes = config.num_hashes
            filters.append(bloom)
            continue
        if batch.shared_filters is None or offset >= len(batch.shared_filters):
            raise CompletenessError(
                f"height {height}: batch is missing the shared filter"
            )
        shipped = batch.shared_filters[offset]
        extension = header.extension
        if isinstance(extension, (BloomHashExtension, BloomHashSmtExtension)):
            committed = extension.bloom_hash
        else:
            raise VerificationError(
                f"height {height}: header carries no filter commitment"
            )
        if bf_commitment(shipped) != committed:
            raise VerificationError(
                f"height {height}: shared filter does not match the header "
                "commitment"
            )
        filters.append(shipped)
    return filters
