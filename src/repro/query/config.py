"""System configurations for the four evaluated prototypes (§VII-B).

A :class:`SystemConfig` fixes the consensus-level parameters every node of
a chain must agree on: which commitments headers carry, the Bloom filter
geometry, and (for BMT systems) the segment length ``M``.  The same
config object drives chain building, proof generation, proof
verification, and wire (de)serialization, so the two sides of the
protocol can never disagree about layouts.
"""

from __future__ import annotations

import enum

from repro.bloom.filter import BloomFilter
from repro.crypto.hashing import tagged_hash
from repro.errors import QueryError

#: Tag for the header's Bloom-filter commitment in hash-only systems.
_BF_COMMIT_TAG = "lvq/bf-commit"


def bf_commitment(bf: BloomFilter) -> bytes:
    """The 32-byte header commitment to a per-block filter."""
    return tagged_hash(_BF_COMMIT_TAG, bf.to_bytes())


class SystemKind(enum.Enum):
    """The evaluated prototypes plus the §IV-A original strawman."""

    #: §IV-A literal design: the whole BF lives in the header.  Kept for
    #: the Challenge-1 storage benchmark; query-wise identical to
    #: STRAWMAN except the filter does not ship with results.
    STRAWMAN_HEADER_BF = "strawman-header-bf"
    #: §VII-B baseline ("strawman" in the figures): header stores H(BF).
    STRAWMAN = "strawman"
    #: Strawman + SMT (ablation: SMT without BMT).
    LVQ_NO_BMT = "lvq-no-bmt"
    #: BMT without SMT (ablation: integral blocks on failed leaf checks).
    LVQ_NO_SMT = "lvq-no-smt"
    #: The full design.
    LVQ = "lvq"


_KIND_BY_VALUE = {kind.value: kind for kind in SystemKind}


class SystemConfig:
    """Consensus parameters of one prototype chain."""

    __slots__ = ("kind", "bf_bytes", "num_hashes", "segment_len")

    def __init__(
        self,
        kind: SystemKind,
        bf_bytes: int,
        num_hashes: int = 3,
        segment_len: "int | None" = None,
    ) -> None:
        if bf_bytes <= 0:
            raise QueryError(f"BF size must be positive, got {bf_bytes} bytes")
        if num_hashes <= 0:
            raise QueryError(f"need at least one hash function, got {num_hashes}")
        self.kind = kind
        self.bf_bytes = bf_bytes
        self.num_hashes = num_hashes
        if self.uses_bmt:
            if segment_len is None or segment_len <= 0:
                raise QueryError(f"{kind.value} needs a segment length")
            if segment_len & (segment_len - 1):
                raise QueryError(
                    f"segment length must be a power of two, got {segment_len}"
                )
            self.segment_len = segment_len
        else:
            if segment_len is not None:
                raise QueryError(f"{kind.value} does not use segments")
            self.segment_len = None

    # -- capability flags ----------------------------------------------------

    @property
    def uses_bmt(self) -> bool:
        return self.kind in (SystemKind.LVQ, SystemKind.LVQ_NO_SMT)

    @property
    def uses_smt(self) -> bool:
        return self.kind in (SystemKind.LVQ, SystemKind.LVQ_NO_BMT)

    @property
    def ships_block_filters(self) -> bool:
        """Do per-block filters travel with query results?

        True for hash-committed non-BMT systems: the light node holds only
        ``H(BF)`` so the prover must ship the filter itself.
        """
        return self.kind in (SystemKind.STRAWMAN, SystemKind.LVQ_NO_BMT)

    @property
    def bf_bits(self) -> int:
        return self.bf_bytes * 8

    @property
    def header_extension_kind(self) -> int:
        """The wire id of this system's header extension (for decoding)."""
        from repro.chain import block as _block

        return {
            SystemKind.STRAWMAN_HEADER_BF: _block.BloomExtension.kind,
            SystemKind.STRAWMAN: _block.BloomHashExtension.kind,
            SystemKind.LVQ_NO_BMT: _block.BloomHashSmtExtension.kind,
            SystemKind.LVQ_NO_SMT: _block.BmtExtension.kind,
            SystemKind.LVQ: _block.LvqExtension.kind,
        }[self.kind]

    @property
    def header_bloom_bytes(self) -> int:
        """Filter bytes embedded in each header (0 unless the §IV-A
        original strawman, which stores the whole filter)."""
        if self.kind is SystemKind.STRAWMAN_HEADER_BF:
            return self.bf_bytes
        return 0

    # -- presets matching §VII-B ----------------------------------------------

    @classmethod
    def strawman(cls, bf_bytes: int, num_hashes: int = 3) -> "SystemConfig":
        return cls(SystemKind.STRAWMAN, bf_bytes, num_hashes)

    @classmethod
    def strawman_header_bf(
        cls, bf_bytes: int, num_hashes: int = 3
    ) -> "SystemConfig":
        return cls(SystemKind.STRAWMAN_HEADER_BF, bf_bytes, num_hashes)

    @classmethod
    def lvq_no_bmt(cls, bf_bytes: int, num_hashes: int = 3) -> "SystemConfig":
        return cls(SystemKind.LVQ_NO_BMT, bf_bytes, num_hashes)

    @classmethod
    def lvq_no_smt(
        cls, bf_bytes: int, segment_len: int, num_hashes: int = 3
    ) -> "SystemConfig":
        return cls(SystemKind.LVQ_NO_SMT, bf_bytes, num_hashes, segment_len)

    @classmethod
    def lvq(
        cls, bf_bytes: int, segment_len: int, num_hashes: int = 3
    ) -> "SystemConfig":
        return cls(SystemKind.LVQ, bf_bytes, num_hashes, segment_len)

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> "dict":
        """JSON-friendly form for manifests and config files."""
        payload = {
            "kind": self.kind.value,
            "bf_bytes": self.bf_bytes,
            "num_hashes": self.num_hashes,
        }
        if self.segment_len is not None:
            payload["segment_len"] = self.segment_len
        return payload

    @classmethod
    def from_dict(cls, payload: "dict") -> "SystemConfig":
        try:
            kind = kind_from_value(payload["kind"])
            return cls(
                kind,
                int(payload["bf_bytes"]),
                int(payload["num_hashes"]),
                payload.get("segment_len"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed config payload: {exc}") from exc

    # -- misc ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemConfig):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.bf_bytes == other.bf_bytes
            and self.num_hashes == other.num_hashes
            and self.segment_len == other.segment_len
        )

    def __repr__(self) -> str:
        suffix = f", M={self.segment_len}" if self.segment_len else ""
        return (
            f"SystemConfig({self.kind.value}, bf={self.bf_bytes}B, "
            f"k={self.num_hashes}{suffix})"
        )


def kind_from_value(value: str) -> SystemKind:
    try:
        return _KIND_BY_VALUE[value]
    except KeyError:
        raise QueryError(f"unknown system kind {value!r}") from None
