"""Proof payloads carried by query results (Eq 4 fragments and successors).

Three *resolutions* can answer "what about block ``h``, whose filter check
failed?":

* :class:`ExistenceResolution` — the address really is in the block: the
  SMT count branch (on SMT systems) plus one ``(transaction, Merkle
  branch)`` pair per appearance (Fig 10);
* :class:`FpmResolution` — false positive: the SMT predecessor/successor
  pair (Fig 9);
* :class:`IntegralBlockResolution` — the whole serialized body (the
  strawman's "IB" fragment, and the only completeness-preserving answer
  on systems without an SMT).

Non-BMT systems answer with one :class:`PerBlockAnswer` per block
(shipping the block filter when the header stores only its hash); BMT
systems answer with one :class:`SegmentProof` per covering (sub-)segment.

Every class serializes byte-exactly; reported result sizes are always
``len(serialize())``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bloom.filter import BloomFilter
from repro.chain.transaction import Transaction
from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.errors import EncodingError, ProofError
from repro.merkle.bmt import BmtMultiProof
from repro.merkle.sorted_tree import SmtBranch, SmtInexistenceProof
from repro.merkle.tree import MerkleBranch
from repro.query.config import SystemConfig

_RES_EXISTENCE = 0
_RES_FPM = 1
_RES_INTEGRAL = 2
_ANSWER_EMPTY = 0xFF


class TxWithBranch:
    """One transaction plus the Merkle branch anchoring it in its block."""

    __slots__ = ("transaction", "branch")

    def __init__(self, transaction: Transaction, branch: MerkleBranch) -> None:
        self.transaction = transaction
        self.branch = branch

    def serialize(self) -> bytes:
        return write_var_bytes(self.transaction.serialize()) + self.branch.serialize()

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "TxWithBranch":
        transaction = Transaction.from_bytes(reader.var_bytes())
        branch = MerkleBranch.deserialize(reader)
        return cls(transaction, branch)

    def tx_bytes(self) -> int:
        payload = self.transaction.serialize()
        return len(write_var_bytes(payload))

    def branch_bytes(self) -> int:
        return self.branch.size_bytes()


class ExistenceResolution:
    """The address appears in the block; prove exactly how often."""

    __slots__ = ("smt_branch", "entries")

    tag = _RES_EXISTENCE

    def __init__(
        self, smt_branch: Optional[SmtBranch], entries: List[TxWithBranch]
    ) -> None:
        if not entries:
            raise ProofError("existence resolution needs at least one tx")
        self.smt_branch = smt_branch
        self.entries = entries

    def copy(self) -> "ExistenceResolution":
        """Fresh top-level containers over shared (immutable-by-contract)
        proof leaves — what the prover's memo hands to each caller so one
        caller's tampering can never leak into another's answer."""
        return ExistenceResolution(self.smt_branch, list(self.entries))

    def serialize(self) -> bytes:
        parts = [bytes([1 if self.smt_branch is not None else 0])]
        if self.smt_branch is not None:
            parts.append(self.smt_branch.serialize())
        parts.append(write_varint(len(self.entries)))
        parts.extend(entry.serialize() for entry in self.entries)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "ExistenceResolution":
        has_smt = reader.bytes(1)[0]
        if has_smt not in (0, 1):
            raise EncodingError(f"bad SMT flag {has_smt}")
        smt_branch = SmtBranch.deserialize(reader) if has_smt else None
        count = reader.varint()
        if count == 0 or count > 1_000_000:
            raise EncodingError(f"implausible entry count {count}")
        entries = [TxWithBranch.deserialize(reader) for _ in range(count)]
        return cls(smt_branch, entries)

    def smt_bytes(self) -> int:
        return self.smt_branch.size_bytes() if self.smt_branch else 0

    def mt_bytes(self) -> int:
        return sum(entry.branch_bytes() for entry in self.entries)

    def tx_bytes(self) -> int:
        return sum(entry.tx_bytes() for entry in self.entries)


class FpmResolution:
    """BF false positive, refuted by an SMT inexistence proof."""

    __slots__ = ("proof",)

    tag = _RES_FPM

    def __init__(self, proof: SmtInexistenceProof) -> None:
        self.proof = proof

    def copy(self) -> "FpmResolution":
        """Fresh wrapper over the shared inexistence proof (see
        :meth:`ExistenceResolution.copy`)."""
        return FpmResolution(self.proof)

    def serialize(self) -> bytes:
        return self.proof.serialize()

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "FpmResolution":
        return cls(SmtInexistenceProof.deserialize(reader))

    def smt_bytes(self) -> int:
        return self.proof.size_bytes()


class IntegralBlockResolution:
    """The whole block body — the heavyweight fallback ("IB")."""

    __slots__ = ("body", "_transactions")

    tag = _RES_INTEGRAL

    def __init__(self, body: bytes) -> None:
        if not body:
            raise ProofError("integral block body cannot be empty")
        self.body = body
        self._transactions: "Optional[List[Transaction]]" = None

    def copy(self) -> "IntegralBlockResolution":
        """Fresh wrapper over the shared (immutable) body bytes."""
        return IntegralBlockResolution(self.body)

    def transactions(self) -> List[Transaction]:
        if self._transactions is None:
            from repro.chain.block import Block

            self._transactions = Block.body_from_bytes(self.body)
        return self._transactions

    def serialize(self) -> bytes:
        return write_var_bytes(self.body)

    @classmethod
    def deserialize(cls, reader: ByteReader) -> "IntegralBlockResolution":
        return cls(reader.var_bytes())

    def ib_bytes(self) -> int:
        return len(write_var_bytes(self.body))


#: Union alias for type hints and isinstance checks.
BlockResolution = (ExistenceResolution, FpmResolution, IntegralBlockResolution)

_RESOLUTION_BY_TAG = {
    _RES_EXISTENCE: ExistenceResolution,
    _RES_FPM: FpmResolution,
    _RES_INTEGRAL: IntegralBlockResolution,
}


def _serialize_resolution(resolution) -> bytes:
    return bytes([resolution.tag]) + resolution.serialize()


def _deserialize_resolution(reader: ByteReader):
    tag = reader.bytes(1)[0]
    cls = _RESOLUTION_BY_TAG.get(tag)
    if cls is None:
        raise EncodingError(f"unknown resolution tag {tag}")
    return cls.deserialize(reader)


class PerBlockAnswer:
    """One block's answer on a non-BMT system (the strawman's fragment).

    ``bf`` ships only when the header stores a hash of the filter;
    ``resolution`` is ``None`` for the Eq-4 "∅" fragment (the filter
    check itself witnesses inexistence).
    """

    __slots__ = ("bf", "resolution")

    def __init__(self, bf: Optional[BloomFilter], resolution) -> None:
        if resolution is not None and not isinstance(resolution, BlockResolution):
            raise ProofError(f"bad resolution type {type(resolution).__name__}")
        self.bf = bf
        self.resolution = resolution

    def serialize(self, config: SystemConfig) -> bytes:
        parts = []
        if config.ships_block_filters:
            if self.bf is None:
                raise ProofError("this system must ship the block filter")
            parts.append(self.bf.to_bytes())
        elif self.bf is not None:
            raise ProofError("this system must not ship block filters")
        if self.resolution is None:
            parts.append(bytes([_ANSWER_EMPTY]))
        else:
            parts.append(_serialize_resolution(self.resolution))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader, config: SystemConfig) -> "PerBlockAnswer":
        bf = None
        if config.ships_block_filters:
            bf = BloomFilter.from_bytes(
                reader.bytes(config.bf_bytes), config.num_hashes
            )
        tag = reader.bytes(1)[0]
        if tag == _ANSWER_EMPTY:
            return cls(bf, None)
        resolution_cls = _RESOLUTION_BY_TAG.get(tag)
        if resolution_cls is None:
            raise EncodingError(f"unknown answer tag {tag}")
        return cls(bf, resolution_cls.deserialize(reader))


class SegmentProof:
    """One covering (sub-)segment's proof on a BMT system (Fig 11).

    ``multiproof`` is verified against the BMT root in the *anchor*
    block's header; ``resolutions`` maps each failed-leaf height to its
    block-level evidence.
    """

    __slots__ = ("anchor", "start", "end", "multiproof", "resolutions")

    def __init__(
        self,
        anchor: int,
        start: int,
        end: int,
        multiproof: BmtMultiProof,
        resolutions: "Dict[int, object]",
    ) -> None:
        if not start <= end or anchor != end:
            raise ProofError(
                f"segment anchor must be its last block: anchor={anchor}, "
                f"range=[{start},{end}]"
            )
        for height, resolution in resolutions.items():
            if not start <= height <= end:
                raise ProofError(
                    f"resolution height {height} outside [{start},{end}]"
                )
            if not isinstance(resolution, BlockResolution):
                raise ProofError(
                    f"bad resolution type {type(resolution).__name__}"
                )
        self.anchor = anchor
        self.start = start
        self.end = end
        self.multiproof = multiproof
        self.resolutions = dict(resolutions)

    @property
    def num_blocks(self) -> int:
        return self.end - self.start + 1

    def serialize(self) -> bytes:
        parts = [
            write_varint(self.anchor),
            write_varint(self.start),
            write_varint(self.end),
            self.multiproof.serialize(),
            write_varint(len(self.resolutions)),
        ]
        for height in sorted(self.resolutions):
            parts.append(write_varint(height))
            parts.append(_serialize_resolution(self.resolutions[height]))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, reader: ByteReader, config: SystemConfig) -> "SegmentProof":
        anchor = reader.varint()
        start = reader.varint()
        end = reader.varint()
        multiproof = BmtMultiProof.deserialize(
            reader, config.bf_bits, config.num_hashes
        )
        count = reader.varint()
        if count > end - start + 1:
            raise EncodingError(
                f"{count} resolutions for a {end - start + 1}-block segment"
            )
        resolutions: "Dict[int, object]" = {}
        for _ in range(count):
            height = reader.varint()
            if height in resolutions:
                raise EncodingError(f"duplicate resolution height {height}")
            resolutions[height] = _deserialize_resolution(reader)
        return cls(anchor, start, end, multiproof, resolutions)
