"""Chain assembly: wrap workload bodies in system-specific headers + indexes.

``build_system`` is the one place that constructs header commitments, so
the prover and the chain can never drift apart: the BFs, SMTs, MTs and the
BMT forest stored in :class:`BuiltSystem` are exactly the objects whose
roots the headers commit to.

Assembly is split into two phases so it can go parallel without changing
a single output byte:

1. **per-block indexing** (``_block_indexes``) — the txid Merkle tree,
   the address Bloom filter and the SMT depend only on that block's
   transactions, so blocks index independently;
2. **sequential stitching** — ``prev_hash`` linkage, BMT forest merging
   and the header extension are inherently ordered and stay in one
   thread.

``build_system(..., workers=N)`` runs phase 1 on a chunked thread or
process pool; the stitch replays the exact sequential logic, so the
parallel build is byte-identical to the sequential one (pinned by
``tests/query/test_parallel_build.py`` and the serving benchmark's
equivalence block).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

from repro.bloom.filter import BloomFilter
from repro.chain.address import address_item
from repro.chain.block import (
    Block,
    BlockHeader,
    BloomExtension,
    BloomHashExtension,
    BloomHashSmtExtension,
    BmtExtension,
    HeaderExtension,
    LvqExtension,
)
from repro.chain.blockchain import Blockchain
from repro.chain.segments import merge_span
from repro.chain.transaction import Transaction
from repro.crypto.hashing import HASH_SIZE
from repro.errors import ChainError, QueryError
from repro.merkle.bmt import BmtForest, BmtTree
from repro.merkle.sorted_tree import SortedMerkleTree
from repro.merkle.tree import MerkleTree
from repro.query.cache import QueryCaches, RWLock
from repro.query.config import SystemConfig, SystemKind, bf_commitment
from repro.query.index import AddressIndex


class BuiltSystem:
    """A chain plus the full-node-side indexes for one prototype system.

    Concurrency contract (DESIGN.md §8): readers (the query path) hold
    ``lock.read()``; the writers are :meth:`append_block` and the reorg
    pair :meth:`rollback_to` / :meth:`reorg`, all of which hold
    ``lock.write()``.  Everything a query touches — chain, filters,
    SMTs, Merkle trees, forest, inverted index — is immutable below the
    tip between writes, so readers running concurrently with each other
    are always safe; the lock fences them against a half-appended block
    or a half-switched fork.
    """

    __slots__ = (
        "config",
        "chain",
        "filters",
        "smts",
        "merkle_trees",
        "forest",
        "address_index",
        "caches",
        "lock",
        "_append_listeners",
        "_reorg_listeners",
    )

    def __init__(
        self,
        config: SystemConfig,
        chain: Blockchain,
        filters: List[BloomFilter],
        smts: List[Optional[SortedMerkleTree]],
        merkle_trees: List[MerkleTree],
        forest: Optional[BmtForest],
        address_index: Optional[AddressIndex] = None,
        caches: Optional[QueryCaches] = None,
    ) -> None:
        self.config = config
        self.chain = chain
        #: Per-height address Bloom filter (index = height).
        self.filters = filters
        #: Per-height SMT (``None`` entries on non-SMT systems).
        self.smts = smts
        #: Per-height transaction Merkle tree.
        self.merkle_trees = merkle_trees
        #: BMT subtree cache (``None`` on non-BMT systems).
        self.forest = forest
        #: Inverted ``address → (height, tx_index)`` postings — the
        #: prover's fast path (``None`` only for hand-built systems).
        self.address_index = address_index
        #: Bounded, thread-safe memo caches (resolutions + segment
        #: multiproofs).  Both hold append-stable values; see
        #: :mod:`repro.query.cache` for the invalidation rules.
        self.caches = caches if caches is not None else QueryCaches()
        #: Readers/writer lock fencing queries against ``append_block``.
        self.lock = RWLock()
        #: Tip-change callbacks (e.g. per-node response caches); fired
        #: after each append, while the write lock is still held.
        self._append_listeners: "List[Callable[[], None]]" = []
        #: Fork-switch callbacks, fired with the fork height after every
        #: rollback, while the write lock is still held.
        self._reorg_listeners: "List[Callable[[int], None]]" = []

    @property
    def resolution_cache(self):
        """Memoized block resolutions keyed ``(address, height)`` —
        bounded LRU; blocks are immutable once appended, so entries
        never go stale."""
        return self.caches.resolutions

    @property
    def segment_cache(self):
        """Memoized ``(multiproof, failed_heights)`` per segment, keyed
        ``(address, anchor, start, end, clipped_range)`` — bounded LRU.
        A BMT over a fixed block span never changes after it is merged,
        so the proof for that span cannot go stale; new blocks only add
        new spans (new keys).  The multiproof object is shared across
        answers — proofs are read-only to honest consumers, and the
        tampering tests deep-copy before attacking."""
        return self.caches.segments

    def clear_query_caches(self) -> None:
        """Drop memoized query state (for cold-cache benchmarking)."""
        self.caches.clear()
        for listener in self._append_listeners:
            listener()

    def add_append_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after every appended block.

        Used by serving-side caches whose entries are keyed by tip (the
        response-byte caches on :class:`~repro.node.full_node.FullNode`).
        """
        self._append_listeners.append(listener)

    def add_reorg_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired with the fork height after every
        rollback (and therefore at the start of every reorg).

        Append listeners only understand chain *growth*; anything keyed
        by tip height would silently alias across forks of equal length,
        so serving-side caches must register here too and drop their
        state when the chain shrinks.
        """
        self._reorg_listeners.append(listener)

    @property
    def tip_height(self) -> int:
        return self.chain.tip_height

    def headers(self) -> List[BlockHeader]:
        """What the corresponding light node stores."""
        return self.chain.headers()

    def bmt_tree(self, anchor_height: int) -> BmtTree:
        """The BMT committed by the header at ``anchor_height``."""
        if self.forest is None or self.config.segment_len is None:
            raise QueryError(f"{self.config.kind.value} has no BMTs")
        start, end = merge_span(anchor_height, self.config.segment_len)
        return self.forest.tree(start, end)

    def append_block(self, transactions: Sequence[Transaction]) -> None:
        """Extend the chain by one block (the full node's mining path).

        Computes the same per-block indexes and header commitments as
        :func:`build_system`, so a chain grown block-by-block is
        byte-identical to one built in a single pass.  Holds the write
        lock for the whole append, then notifies tip listeners.
        """
        with self.lock.write():
            height = len(self.chain)
            prev_hash = self.chain.header_at(height - 1).block_id()
            block, indexes = _assemble_block(
                self.config, height, prev_hash, list(transactions), self.forest
            )
            self.chain.append(block)
            self.filters.append(indexes.bf)
            self.smts.append(indexes.smt)
            self.merkle_trees.append(indexes.merkle_tree)
            if self.address_index is not None:
                self.address_index.add_block(height, block.transactions)
            for listener in self._append_listeners:
                listener()

    def rollback_to(self, height: int) -> int:
        """Pop every block above ``height`` (a fork switch's first half).

        Unwinds exactly the per-height state :meth:`append_block` adds —
        chain suffix, filters, SMTs, Merkle trees, forest spans reaching
        past the fork, inverted-index postings — and evicts the memo
        entries :meth:`~repro.query.cache.QueryCaches.on_reorg` marks
        stale, so the surviving state is byte-identical to a fresh
        :func:`build_system` of the truncated chain.  Holds the write
        lock throughout, then notifies reorg listeners (still under the
        lock, so no query can observe a half-switched fork or a stale
        cache entry).  Returns the number of blocks removed.
        """
        with self.lock.write():
            if not 0 <= height <= self.tip_height:
                raise ChainError(
                    f"cannot roll back to height {height}; tip is "
                    f"{self.tip_height}"
                )
            removed = self.tip_height - height
            if removed == 0:
                return 0
            self.chain.truncate(height)
            del self.filters[height + 1 :]
            del self.smts[height + 1 :]
            del self.merkle_trees[height + 1 :]
            if self.forest is not None:
                self.forest.rollback_to(height)
            if self.address_index is not None:
                self.address_index.rollback_to(height)
            self.caches.on_reorg(height)
            for listener in self._reorg_listeners:
                listener(height)
            return removed

    def reorg(
        self,
        fork_height: int,
        new_bodies: Sequence[Sequence[Transaction]],
    ) -> "tuple[int, int]":
        """Switch to a fork: pop blocks above ``fork_height``, then append
        ``new_bodies`` in order.

        One write-lock hold covers the whole switch, so concurrent
        queries see either the old fork or the new one — never a mix —
        and in-flight answers finish against the tip they started under.
        Returns ``(replaced, appended)``.
        """
        with self.lock.write():
            replaced = self.rollback_to(fork_height)
            for transactions in new_bodies:
                self.append_block(transactions)
            return replaced, len(new_bodies)


def _extension_for(
    config: SystemConfig,
    height: int,
    bf: BloomFilter,
    smt: Optional[SortedMerkleTree],
    forest: Optional[BmtForest],
) -> HeaderExtension:
    kind = config.kind
    if kind is SystemKind.STRAWMAN_HEADER_BF:
        return BloomExtension(bf)
    if kind is SystemKind.STRAWMAN:
        return BloomHashExtension(bf_commitment(bf))
    if kind is SystemKind.LVQ_NO_BMT:
        assert smt is not None
        return BloomHashSmtExtension(bf_commitment(bf), smt.root)
    # BMT systems: the genesis block (height 0) is outside the paper's
    # 1-indexed merge scheme; its header commits to a single-leaf tree of
    # its own filter so the extension layout stays uniform.
    assert forest is not None and config.segment_len is not None
    if height == 0:
        bmt_root = BmtTree.build([(0, bf)]).root.hash
    else:
        start, end = merge_span(height, config.segment_len)
        bmt_root = forest.node(start, end).hash
    if kind is SystemKind.LVQ_NO_SMT:
        return BmtExtension(bmt_root)
    assert smt is not None
    return LvqExtension(bmt_root, smt.root)


class _BlockIndexes:
    """Per-block full-node indexes produced alongside a block.

    Order-independent by construction: everything here derives from one
    block's transactions alone, which is what lets ``build_system``
    compute these on a pool.
    """

    __slots__ = ("bf", "smt", "merkle_tree")

    def __init__(
        self,
        bf: BloomFilter,
        smt: Optional[SortedMerkleTree],
        merkle_tree: MerkleTree,
    ) -> None:
        self.bf = bf
        self.smt = smt
        self.merkle_tree = merkle_tree


def _block_indexes(
    config: SystemConfig, transactions: Sequence[Transaction]
) -> _BlockIndexes:
    """Phase 1: the order-independent per-block indexes.

    One pass over ``transaction.addresses()`` feeds both the Bloom
    filter (unique addresses) and the SMT (appearance counts).
    """
    merkle_tree = MerkleTree([tx.txid() for tx in transactions])
    counts: "dict[str, int]" = {}
    for transaction in transactions:
        for address in transaction.addresses():
            counts[address] = counts.get(address, 0) + 1
    bf = BloomFilter.from_items(
        (address_item(address) for address in sorted(counts)),
        config.bf_bits,
        config.num_hashes,
    )
    smt = SortedMerkleTree.from_counts(counts) if config.uses_smt else None
    return _BlockIndexes(bf, smt, merkle_tree)


def _assemble_block(
    config: SystemConfig,
    height: int,
    prev_hash: bytes,
    transactions: List[Transaction],
    forest: Optional[BmtForest],
    indexes: Optional[_BlockIndexes] = None,
):
    """Build one block plus its indexes; registers its BF in the forest.

    ``indexes`` carries phase-1 output when it was precomputed on a
    pool; the sequential path just computes it inline.
    """
    if indexes is None:
        indexes = _block_indexes(config, transactions)
    if forest is not None and height >= 1:
        forest.add_block(height, indexes.bf)
    extension = _extension_for(config, height, indexes.bf, indexes.smt, forest)
    header = BlockHeader(
        prev_hash=prev_hash,
        merkle_root=indexes.merkle_tree.root,
        timestamp=1_230_000_000 + height * 600,  # ten-minute cadence
        extension=extension,
    )
    # Hand the freshly built tree to the block so Blockchain.append's
    # Merkle-root validation reuses it instead of re-hashing every txid.
    return Block(header, transactions, height, indexes.merkle_tree), indexes


def _index_chunk(
    config: SystemConfig, chunk: "List[List[Transaction]]"
) -> "List[_BlockIndexes]":
    """Pool task: phase-1 indexes for a contiguous run of bodies.

    Module-level (not a closure) so a process pool can pickle it.
    """
    return [_block_indexes(config, transactions) for transactions in chunk]


def _parallel_block_indexes(
    bodies: Sequence[Sequence[Transaction]],
    config: SystemConfig,
    workers: int,
    executor: str,
    chunk_size: Optional[int],
) -> "List[_BlockIndexes]":
    from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

    if executor not in ("thread", "process"):
        raise QueryError(
            f"unknown build executor {executor!r} (thread|process)"
        )
    if chunk_size is None:
        # ~4 chunks per worker keeps the pool busy through stragglers
        # without drowning in per-chunk dispatch overhead.
        chunk_size = max(1, len(bodies) // (workers * 4))
    chunks = [
        [list(transactions) for transactions in bodies[i:i + chunk_size]]
        for i in range(0, len(bodies), chunk_size)
    ]
    pool_cls = (
        ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    )
    with pool_cls(max_workers=workers) as pool:
        indexed_chunks = list(
            pool.map(_index_chunk, [config] * len(chunks), chunks)
        )
    return [indexes for chunk in indexed_chunks for indexes in chunk]


def build_system(
    bodies: Sequence[Sequence[Transaction]],
    config: SystemConfig,
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
    chunk_size: Optional[int] = None,
    caches: Optional[QueryCaches] = None,
) -> BuiltSystem:
    """Assemble a chain from workload ``bodies`` under ``config``.

    ``bodies[h]`` is the transaction list of height ``h``; index 0 is the
    genesis block.  Raises :class:`QueryError` on an empty workload.

    ``workers > 1`` computes the per-block indexes on a chunked pool
    (``executor`` selects threads or processes) and then stitches the
    ``prev_hash``/forest chain sequentially; the result is byte-identical
    to the single-threaded build.
    """
    if not bodies:
        raise QueryError("cannot build a chain from an empty workload")

    precomputed: "Optional[List[_BlockIndexes]]" = None
    if workers is not None and workers > 1:
        precomputed = _parallel_block_indexes(
            bodies, config, workers, executor, chunk_size
        )

    chain = Blockchain()
    filters: List[BloomFilter] = []
    smts: List[Optional[SortedMerkleTree]] = []
    merkle_trees: List[MerkleTree] = []
    forest = BmtForest() if config.uses_bmt else None
    address_index = AddressIndex()

    prev_hash = b"\x00" * HASH_SIZE
    for height, transactions in enumerate(bodies):
        block, indexes = _assemble_block(
            config,
            height,
            prev_hash,
            list(transactions),
            forest,
            indexes=precomputed[height] if precomputed is not None else None,
        )
        chain.append(block)
        prev_hash = block.header.block_id()
        filters.append(indexes.bf)
        smts.append(indexes.smt)
        merkle_trees.append(indexes.merkle_tree)
        address_index.add_block(height, block.transactions)

    return BuiltSystem(
        config,
        chain,
        filters,
        smts,
        merkle_trees,
        forest,
        address_index,
        caches=caches,
    )


def build_system_parallel(
    bodies: Sequence[Sequence[Transaction]],
    config: SystemConfig,
    *,
    workers: Optional[int] = None,
    executor: str = "thread",
    chunk_size: Optional[int] = None,
) -> BuiltSystem:
    """:func:`build_system` with the pool on by default (all cores)."""
    if workers is None:
        workers = max(2, os.cpu_count() or 2)
    return build_system(
        bodies,
        config,
        workers=workers,
        executor=executor,
        chunk_size=chunk_size,
    )
