"""Chain assembly: wrap workload bodies in system-specific headers + indexes.

``build_system`` is the one place that constructs header commitments, so
the prover and the chain can never drift apart: the BFs, SMTs, MTs and the
BMT forest stored in :class:`BuiltSystem` are exactly the objects whose
roots the headers commit to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bloom.filter import BloomFilter
from repro.chain.address import address_item
from repro.chain.block import (
    Block,
    BlockHeader,
    BloomExtension,
    BloomHashExtension,
    BloomHashSmtExtension,
    BmtExtension,
    HeaderExtension,
    LvqExtension,
)
from repro.chain.blockchain import Blockchain
from repro.chain.segments import merge_span
from repro.chain.transaction import Transaction
from repro.crypto.hashing import HASH_SIZE
from repro.errors import QueryError
from repro.merkle.bmt import BmtForest, BmtTree
from repro.merkle.sorted_tree import SortedMerkleTree
from repro.merkle.tree import MerkleTree
from repro.query.config import SystemConfig, SystemKind, bf_commitment
from repro.query.index import AddressIndex


class BuiltSystem:
    """A chain plus the full-node-side indexes for one prototype system."""

    __slots__ = (
        "config",
        "chain",
        "filters",
        "smts",
        "merkle_trees",
        "forest",
        "address_index",
        "resolution_cache",
        "segment_cache",
    )

    def __init__(
        self,
        config: SystemConfig,
        chain: Blockchain,
        filters: List[BloomFilter],
        smts: List[Optional[SortedMerkleTree]],
        merkle_trees: List[MerkleTree],
        forest: Optional[BmtForest],
        address_index: Optional[AddressIndex] = None,
    ) -> None:
        self.config = config
        self.chain = chain
        #: Per-height address Bloom filter (index = height).
        self.filters = filters
        #: Per-height SMT (``None`` entries on non-SMT systems).
        self.smts = smts
        #: Per-height transaction Merkle tree.
        self.merkle_trees = merkle_trees
        #: BMT subtree cache (``None`` on non-BMT systems).
        self.forest = forest
        #: Inverted ``address → (height, tx_index)`` postings — the
        #: prover's fast path (``None`` only for hand-built systems).
        self.address_index = address_index
        #: Memoized block resolutions keyed ``(address, height)``; safe
        #: because blocks are immutable once appended.
        self.resolution_cache: "dict[tuple[str, int], object]" = {}
        #: Memoized ``(multiproof, failed_heights)`` per segment, keyed
        #: ``(address, anchor, start, end, clipped_range)``.  A BMT over
        #: a fixed block span never changes after it is merged, so the
        #: proof for that span cannot go stale; new blocks only add new
        #: spans (new keys).  The multiproof object is shared across
        #: answers — proofs are read-only to honest consumers, and the
        #: tampering tests deep-copy before attacking.
        self.segment_cache: "dict[tuple, object]" = {}

    def clear_query_caches(self) -> None:
        """Drop memoized query state (for cold-cache benchmarking)."""
        self.resolution_cache.clear()
        self.segment_cache.clear()

    @property
    def tip_height(self) -> int:
        return self.chain.tip_height

    def headers(self) -> List[BlockHeader]:
        """What the corresponding light node stores."""
        return self.chain.headers()

    def bmt_tree(self, anchor_height: int) -> BmtTree:
        """The BMT committed by the header at ``anchor_height``."""
        if self.forest is None or self.config.segment_len is None:
            raise QueryError(f"{self.config.kind.value} has no BMTs")
        start, end = merge_span(anchor_height, self.config.segment_len)
        return self.forest.tree(start, end)

    def append_block(self, transactions: Sequence[Transaction]) -> None:
        """Extend the chain by one block (the full node's mining path).

        Computes the same per-block indexes and header commitments as
        :func:`build_system`, so a chain grown block-by-block is
        byte-identical to one built in a single pass.
        """
        height = len(self.chain)
        prev_hash = self.chain.header_at(height - 1).block_id()
        block, indexes = _assemble_block(
            self.config, height, prev_hash, list(transactions), self.forest
        )
        self.chain.append(block)
        self.filters.append(indexes.bf)
        self.smts.append(indexes.smt)
        self.merkle_trees.append(indexes.merkle_tree)
        if self.address_index is not None:
            self.address_index.add_block(height, block.transactions)


def _block_filter(
    transactions: Sequence[Transaction], config: SystemConfig
) -> BloomFilter:
    """The per-block address filter (every unique address, once)."""
    addresses = set()
    for transaction in transactions:
        addresses.update(transaction.addresses())
    return BloomFilter.from_items(
        (address_item(address) for address in sorted(addresses)),
        config.bf_bits,
        config.num_hashes,
    )


def _extension_for(
    config: SystemConfig,
    height: int,
    bf: BloomFilter,
    smt: Optional[SortedMerkleTree],
    forest: Optional[BmtForest],
) -> HeaderExtension:
    kind = config.kind
    if kind is SystemKind.STRAWMAN_HEADER_BF:
        return BloomExtension(bf)
    if kind is SystemKind.STRAWMAN:
        return BloomHashExtension(bf_commitment(bf))
    if kind is SystemKind.LVQ_NO_BMT:
        assert smt is not None
        return BloomHashSmtExtension(bf_commitment(bf), smt.root)
    # BMT systems: the genesis block (height 0) is outside the paper's
    # 1-indexed merge scheme; its header commits to a single-leaf tree of
    # its own filter so the extension layout stays uniform.
    assert forest is not None and config.segment_len is not None
    if height == 0:
        bmt_root = BmtTree.build([(0, bf)]).root.hash
    else:
        start, end = merge_span(height, config.segment_len)
        bmt_root = forest.node(start, end).hash
    if kind is SystemKind.LVQ_NO_SMT:
        return BmtExtension(bmt_root)
    assert smt is not None
    return LvqExtension(bmt_root, smt.root)


class _BlockIndexes:
    """Per-block full-node indexes produced alongside a block."""

    __slots__ = ("bf", "smt", "merkle_tree")

    def __init__(
        self,
        bf: BloomFilter,
        smt: Optional[SortedMerkleTree],
        merkle_tree: MerkleTree,
    ) -> None:
        self.bf = bf
        self.smt = smt
        self.merkle_tree = merkle_tree


def _assemble_block(
    config: SystemConfig,
    height: int,
    prev_hash: bytes,
    transactions: List[Transaction],
    forest: Optional[BmtForest],
):
    """Build one block plus its indexes; registers its BF in the forest."""
    merkle_tree = MerkleTree([tx.txid() for tx in transactions])
    bf = _block_filter(transactions, config)
    smt: Optional[SortedMerkleTree] = None
    if config.uses_smt:
        counts: "dict[str, int]" = {}
        for transaction in transactions:
            for address in transaction.addresses():
                counts[address] = counts.get(address, 0) + 1
        smt = SortedMerkleTree.from_counts(counts)
    if forest is not None and height >= 1:
        forest.add_block(height, bf)
    extension = _extension_for(config, height, bf, smt, forest)
    header = BlockHeader(
        prev_hash=prev_hash,
        merkle_root=merkle_tree.root,
        timestamp=1_230_000_000 + height * 600,  # ten-minute cadence
        extension=extension,
    )
    # Hand the freshly built tree to the block so Blockchain.append's
    # Merkle-root validation reuses it instead of re-hashing every txid.
    return Block(header, transactions, height, merkle_tree), _BlockIndexes(
        bf, smt, merkle_tree
    )


def build_system(
    bodies: Sequence[Sequence[Transaction]], config: SystemConfig
) -> BuiltSystem:
    """Assemble a chain from workload ``bodies`` under ``config``.

    ``bodies[h]`` is the transaction list of height ``h``; index 0 is the
    genesis block.  Raises :class:`QueryError` on an empty workload.
    """
    if not bodies:
        raise QueryError("cannot build a chain from an empty workload")

    chain = Blockchain()
    filters: List[BloomFilter] = []
    smts: List[Optional[SortedMerkleTree]] = []
    merkle_trees: List[MerkleTree] = []
    forest = BmtForest() if config.uses_bmt else None
    address_index = AddressIndex()

    prev_hash = b"\x00" * HASH_SIZE
    for height, transactions in enumerate(bodies):
        block, indexes = _assemble_block(
            config, height, prev_hash, list(transactions), forest
        )
        chain.append(block)
        prev_hash = block.header.block_id()
        filters.append(indexes.bf)
        smts.append(indexes.smt)
        merkle_trees.append(indexes.merkle_tree)
        address_index.add_block(height, block.transactions)

    return BuiltSystem(
        config, chain, filters, smts, merkle_trees, forest, address_index
    )
