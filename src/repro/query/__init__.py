"""The paper's contribution: verifiable transaction-history queries.

Four prototype systems (§VII-B) share one code path, differing only in
their :class:`SystemConfig`:

* ``strawman`` — per-block BF hash in the header; the filter plus an Eq-4
  fragment ship with every block's answer;
* ``lvq_no_bmt`` — strawman plus per-block SMTs (count proofs and FPM
  resolution without integral blocks);
* ``lvq_no_smt`` — BMT merging without SMTs (integral blocks whenever a
  leaf check fails);
* ``lvq`` — the full design.

``build_system`` turns workload bodies into a chain with the right
headers and full-node indexes; ``answer_query`` (prover, full-node side)
produces a :class:`QueryResult`; ``verify_result`` (light-node side)
checks correctness *and* completeness against headers only.
"""

from repro.query.cache import (
    LRUCache,
    QueryCaches,
    ResponseCache,
    RWLock,
    SingleFlight,
)
from repro.query.config import SystemConfig, SystemKind, bf_commitment
from repro.query.builder import BuiltSystem, build_system, build_system_parallel
from repro.query.fragments import (
    BlockResolution,
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    PerBlockAnswer,
    SegmentProof,
    TxWithBranch,
)
from repro.query.result import QueryResult, SizeBreakdown
from repro.query.index import AddressIndex
from repro.query.prover import answer_query
from repro.query.naive import answer_batch_query_naive, answer_query_naive
from repro.query.verifier import VerifiedHistory, verify_result
from repro.query.batch import (
    BatchQueryResult,
    answer_batch_query,
    verify_batch_result,
)

__all__ = [
    "AddressIndex",
    "answer_query_naive",
    "answer_batch_query_naive",
    "SystemConfig",
    "SystemKind",
    "bf_commitment",
    "BuiltSystem",
    "build_system",
    "build_system_parallel",
    "LRUCache",
    "QueryCaches",
    "ResponseCache",
    "RWLock",
    "SingleFlight",
    "BlockResolution",
    "ExistenceResolution",
    "FpmResolution",
    "IntegralBlockResolution",
    "PerBlockAnswer",
    "SegmentProof",
    "TxWithBranch",
    "QueryResult",
    "SizeBreakdown",
    "answer_query",
    "VerifiedHistory",
    "verify_result",
    "BatchQueryResult",
    "answer_batch_query",
    "verify_batch_result",
]
