"""The pre-fast-path reference prover (the benchmark's oracle).

This module preserves, verbatim, the original O(chain) proof-generation
algorithms that :mod:`repro.query.prover` used before the query-serving
fast path landed:

* BMT segments are traversed **twice** — once by ``find_endpoints`` to
  discover failed leaves, once by ``multiproof`` to build the shipped
  proof;
* checked-bit positions are re-derived from SHA-256 at every use site;
* every failed filter check is resolved by linearly scanning **all**
  transactions of the block with :meth:`Transaction.involves`;
* nothing is memoized across queries.

It exists so the fast path has a trustworthy yardstick: the equivalence
tests and ``benchmarks/bench_throughput.py`` assert that
:func:`answer_query_naive` and :func:`repro.query.prover.answer_query`
produce **byte-identical** serialized results on every system kind, and
the benchmark reports the speedup between them.  Do not "optimize" this
module — its slowness is its purpose.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.chain.address import address_item
from repro.chain.block import Block
from repro.chain.segments import covering_spans
from repro.errors import QueryError
from repro.merkle.bmt import EndpointKind
from repro.query.batch import BatchQueryResult
from repro.query.builder import BuiltSystem
from repro.query.config import SystemKind
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    PerBlockAnswer,
    SegmentProof,
    TxWithBranch,
)
from repro.query.result import QueryResult


def answer_query_naive(
    system: BuiltSystem,
    address: str,
    first_height: int = 1,
    last_height: "int | None" = None,
) -> QueryResult:
    """The original, index-free honest answer for ``address``."""
    if system.tip_height < 1:
        raise QueryError("chain has no queryable blocks (only genesis)")
    if last_height is None:
        last_height = system.tip_height
    if not 1 <= first_height <= last_height <= system.tip_height:
        raise QueryError(
            f"bad query range [{first_height},{last_height}] for tip "
            f"{system.tip_height}"
        )
    if system.config.uses_bmt:
        return _answer_with_segments_naive(
            system, address, first_height, last_height
        )
    return _answer_per_block_naive(system, address, first_height, last_height)


def _answer_with_segments_naive(
    system: BuiltSystem, address: str, first: int, last: int
) -> QueryResult:
    config = system.config
    assert config.segment_len is not None and system.forest is not None
    item = address_item(address)
    segments: List[SegmentProof] = []
    for anchor, start, end in covering_spans(system.tip_height, config.segment_len):
        if end < first or start > last:
            continue  # segment entirely outside the queried range
        clipped = (max(start, first), min(end, last))
        tree = system.forest.tree(start, end)
        multiproof = tree.multiproof(item, query_range=clipped)
        resolutions: Dict[int, object] = {}
        for endpoint in tree.find_endpoints(item):
            if endpoint.kind is EndpointKind.LEAF_FAILED:
                height = endpoint.node.start
                if clipped[0] <= height <= clipped[1]:
                    resolutions[height] = _resolve_block_naive(
                        system, height, address
                    )
        segments.append(SegmentProof(anchor, start, end, multiproof, resolutions))
    return QueryResult(
        config.kind,
        address,
        system.tip_height,
        segments=segments,
        first_height=first,
        last_height=last,
    )


def _answer_per_block_naive(
    system: BuiltSystem, address: str, first: int, last: int
) -> QueryResult:
    config = system.config
    item = address_item(address)
    answers: List[PerBlockAnswer] = []
    for height in range(first, last + 1):
        bf = system.filters[height]
        shipped = bf if config.ships_block_filters else None
        if not bf.might_contain(item):
            answers.append(PerBlockAnswer(shipped, None))  # Eq 4: ∅
            continue
        answers.append(
            PerBlockAnswer(shipped, _resolve_block_naive(system, height, address))
        )
    return QueryResult(
        config.kind,
        address,
        system.tip_height,
        blocks=answers,
        first_height=first,
        last_height=last,
    )


def _resolve_block_naive(system: BuiltSystem, height: int, address: str):
    """Original block-level evidence: whole-block scans, no caching."""
    config = system.config
    block = system.chain.block_at(height)

    if not config.uses_smt:
        if config.kind is SystemKind.LVQ_NO_SMT:
            return IntegralBlockResolution(block.body_bytes())
        entries = _existence_entries_naive(system, block, address)
        if entries:
            return ExistenceResolution(None, entries)
        return IntegralBlockResolution(block.body_bytes())

    smt = system.smts[height]
    assert smt is not None
    if address in smt:
        entries = _existence_entries_naive(system, block, address)
        return ExistenceResolution(smt.prove_existence(address), entries)
    return FpmResolution(smt.prove_inexistence(address))


def _existence_entries_naive(
    system: BuiltSystem, block: Block, address: str
) -> List[TxWithBranch]:
    """The O(block) scan the inverted address index replaces."""
    merkle_tree = system.merkle_trees[block.height]
    return [
        TxWithBranch(transaction, merkle_tree.branch(index))
        for index, transaction in enumerate(block.transactions)
        if transaction.involves(address)
    ]


def answer_batch_query_naive(
    system: BuiltSystem,
    addresses: Sequence[str],
    first_height: int = 1,
    last_height: "int | None" = None,
) -> BatchQueryResult:
    """The original shared answer for several addresses."""
    if not addresses:
        raise QueryError("batch query needs at least one address")
    if last_height is None:
        last_height = system.tip_height
    config = system.config

    if config.uses_bmt:
        per_address_segments = []
        for address in addresses:
            result = answer_query_naive(
                system, address, first_height, last_height
            )
            assert result.segments is not None
            per_address_segments.append(result.segments)
        return BatchQueryResult(
            config.kind,
            list(addresses),
            system.tip_height,
            first_height,
            last_height,
            per_address_segments=per_address_segments,
        )

    if not 1 <= first_height <= last_height <= system.tip_height:
        raise QueryError(
            f"bad query range [{first_height},{last_height}] for tip "
            f"{system.tip_height}"
        )
    shared_filters = [
        system.filters[height]
        for height in range(first_height, last_height + 1)
    ]
    per_address_answers: List[List[object]] = []
    for address in addresses:
        item = address_item(address)
        answers: List[object] = []
        for offset, bf in enumerate(shared_filters):
            height = first_height + offset
            if not bf.might_contain(item):
                answers.append(None)
            else:
                answers.append(_resolve_block_naive(system, height, address))
        per_address_answers.append(answers)
    return BatchQueryResult(
        config.kind,
        list(addresses),
        system.tip_height,
        first_height,
        last_height,
        shared_filters=shared_filters if config.ships_block_filters else [],
        per_address_answers=per_address_answers,
    )
