"""Adversarial full nodes for the security analysis (§VI).

The paper's security claim is that a light node accepts a history only if
it is correct *and* complete.  These wrappers implement the natural
attacks — omit a transaction, forge a count, hide a block range, swap a
filter, truncate the answer — and the test suite asserts that every one
of them makes :func:`repro.query.verifier.verify_result` raise.

Each attack is a function ``QueryResult -> QueryResult`` (mutating a deep
enough copy); :class:`MaliciousFullNode` applies one to every honest
answer.  Attacks silently do nothing when the result has no material to
attack (e.g. omitting a transaction from an empty history) — tests guard
against that with ``attack_applies``.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional

from repro.node.full_node import FullNode
from repro.query.builder import BuiltSystem
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
)
from repro.query.result import QueryResult

Attack = Callable[[QueryResult], QueryResult]


class MaliciousFullNode(FullNode):
    """A full node that applies an attack to every honest answer."""

    def __init__(self, system: BuiltSystem, attack: Attack) -> None:
        super().__init__(system)
        self._attack = attack
        #: Set after each query: did the attack actually change anything?
        self.last_attack_applied: Optional[bool] = None

    def answer(
        self,
        address: str,
        first_height: int = 1,
        last_height: "int | None" = None,
    ) -> QueryResult:
        honest = super().answer(address, first_height, last_height)
        reference = honest.serialize(self.system.config)
        attacked = self._attack(copy.deepcopy(honest))
        self.last_attack_applied = (
            attacked.serialize(self.system.config) != reference
        )
        return attacked

    def answer_batch(
        self,
        addresses,
        first_height: int = 1,
        last_height: "int | None" = None,
    ):
        """Attack every per-address portion of a batch answer.

        BMT batches carry per-address segment lists, which map directly
        onto the single-query attack surface.  Shared-filter batches have
        no per-address wrapper for most attacks to grab onto, so they are
        served honestly (the single-query path still exercises those
        attacks on such systems).
        """
        honest = super().answer_batch(addresses, first_height, last_height)
        if honest.per_address_segments is None:
            self.last_attack_applied = False
            return honest
        applied = False
        config = self.system.config
        for index, address in enumerate(honest.addresses):
            wrapped = QueryResult(
                config.kind,
                address,
                honest.tip_height,
                segments=honest.per_address_segments[index],
                first_height=honest.first_height,
                last_height=honest.last_height,
            )
            reference = wrapped.serialize(config)
            attacked = self._attack(copy.deepcopy(wrapped))
            if attacked.serialize(config) != reference:
                applied = True
                if attacked.segments is not None:
                    honest.per_address_segments[index] = attacked.segments
        self.last_attack_applied = applied
        return honest


# ---------------------------------------------------------------------------
# helpers


def _existence_resolutions(result: QueryResult) -> List[ExistenceResolution]:
    found: List[ExistenceResolution] = []
    for resolution in _all_resolutions(result):
        if isinstance(resolution, ExistenceResolution):
            found.append(resolution)
    return found


def _all_resolutions(result: QueryResult):
    if result.segments is not None:
        for segment in result.segments:
            yield from segment.resolutions.values()
    else:
        assert result.blocks is not None
        for answer in result.blocks:
            if answer.resolution is not None:
                yield answer.resolution


# ---------------------------------------------------------------------------
# attacks on completeness


def omit_one_transaction(result: QueryResult) -> QueryResult:
    """Drop one transaction from the first multi-entry existence proof.

    Against SMT systems this leaves the entry count below the committed
    SMT count; the strawman cannot catch it (Challenge 3) and the test
    suite demonstrates exactly that gap.
    """
    for resolution in _existence_resolutions(result):
        if len(resolution.entries) >= 2:
            resolution.entries.pop()
            return result
    return result


def drop_block_resolution(result: QueryResult) -> QueryResult:
    """Pretend a block with activity had none: delete one resolution."""
    if result.segments is not None:
        for segment in result.segments:
            if segment.resolutions:
                height = sorted(segment.resolutions)[0]
                del segment.resolutions[height]
                return result
        return result
    assert result.blocks is not None
    for answer in result.blocks:
        if answer.resolution is not None:
            answer.resolution = None
            return result
    return result


def truncate_blocks(result: QueryResult) -> QueryResult:
    """Answer for a shorter chain than the light node knows about."""
    if result.blocks is not None and len(result.blocks) > 1:
        result.blocks.pop()
    elif result.segments is not None and len(result.segments) > 1:
        result.segments.pop()
    return result


def swap_existence_for_fpm(result: QueryResult) -> QueryResult:
    """Claim an address with on-chain activity is a false positive.

    The forged SMT inexistence proof reuses the *existence* branch's
    neighbours, which cannot be adjacent around a present leaf — the
    verifier must reject the pair.
    """
    if result.segments is None:
        return result
    for segment in result.segments:
        for height, resolution in list(segment.resolutions.items()):
            if isinstance(resolution, ExistenceResolution) and (
                resolution.smt_branch is not None
            ):
                from repro.merkle.sorted_tree import SmtInexistenceProof

                branch = resolution.smt_branch
                forged = SmtInexistenceProof(branch, None)
                segment.resolutions[height] = FpmResolution(forged)
                return result
    return result


# ---------------------------------------------------------------------------
# attacks on correctness


def forge_transaction_value(result: QueryResult) -> QueryResult:
    """Inflate an output value inside a proven transaction."""
    from repro.chain.transaction import Transaction, TxOutput

    for resolution in _existence_resolutions(result):
        entry = resolution.entries[0]
        outputs = [
            TxOutput(out.address, out.value + 1_000_000)
            for out in entry.transaction.outputs
        ]
        entry.transaction = Transaction(
            entry.transaction.inputs, outputs, entry.transaction.version
        )
        return result
    return result


def duplicate_transaction_entry(result: QueryResult) -> QueryResult:
    """Pad an existence proof by repeating one (tx, branch) pair."""
    for resolution in _existence_resolutions(result):
        resolution.entries.append(resolution.entries[0])
        return result
    return result


def tamper_bmt_filter(result: QueryResult) -> QueryResult:
    """Clear a bit in a clean BMT endpoint's filter (fake inexistence)."""
    if result.segments is None:
        return result
    for segment in result.segments:
        stack = [segment.multiproof._root]
        while stack:
            node = stack.pop()
            if node.tag == 0:  # internal
                stack.extend((node.left, node.right))
                continue
            bf = node.bf
            for index in range(bf.size_bits):
                if bf.bits.get(index):
                    bf.bits.clear(index)
                    return result
    return result


def swap_block_filter(result: QueryResult) -> QueryResult:
    """Ship a different (emptier) filter than the header commits to."""
    from repro.bloom.filter import BloomFilter

    if result.blocks is None:
        return result
    for answer in result.blocks:
        if answer.bf is not None and answer.bf.bits.popcount() > 0:
            answer.bf = BloomFilter(answer.bf.size_bits, answer.bf.num_hashes)
            answer.resolution = None
            return result
    return result


def corrupt_integral_block(result: QueryResult) -> QueryResult:
    """Remove one transaction from an integral-block body."""
    from repro.crypto.encoding import write_varint

    for resolution in _all_resolutions(result):
        if isinstance(resolution, IntegralBlockResolution):
            transactions = resolution.transactions()
            if len(transactions) < 2:
                continue
            kept = transactions[:-1]
            parts = [write_varint(len(kept))]
            parts.extend(tx.serialize() for tx in kept)
            resolution.body = b"".join(parts)
            resolution._transactions = None
            return result
    return result


def swap_resolutions_between_blocks(result: QueryResult) -> QueryResult:
    """Serve block A's (valid!) evidence as the answer for block B.

    Every branch still verifies against *some* root — just not the root
    of the block it is presented for, so per-block commitment binding is
    what must catch it.
    """
    if result.segments is not None:
        items = [
            (segment, height)
            for segment in result.segments
            for height in sorted(segment.resolutions)
        ]
        if len(items) >= 2:
            (seg_a, height_a), (seg_b, height_b) = items[0], items[-1]
            seg_a.resolutions[height_a], seg_b.resolutions[height_b] = (
                seg_b.resolutions[height_b],
                seg_a.resolutions[height_a],
            )
        return result
    assert result.blocks is not None
    resolved = [a for a in result.blocks if a.resolution is not None]
    if len(resolved) >= 2:
        resolved[0].resolution, resolved[-1].resolution = (
            resolved[-1].resolution,
            resolved[0].resolution,
        )
    return result


def misclassify_failed_endpoint(result: QueryResult) -> QueryResult:
    """Relabel a failed BMT leaf as a clean endpoint (hide its block).

    The filter bits themselves refute the claim — every checked position
    is set — so the verifier's endpoint-semantics check must fire even
    though all hashes still match.
    """
    if result.segments is None:
        return result
    for segment in result.segments:
        stack = [segment.multiproof._root]
        while stack:
            node = stack.pop()
            if node.tag == 0:
                stack.extend((node.left, node.right))
            elif node.tag == 3:  # failed leaf
                node.tag = 1  # claim it is clean
                # Drop the now-unexplained resolution as a liar would.
                if segment.resolutions:
                    height = sorted(segment.resolutions)[0]
                    del segment.resolutions[height]
                return result
    return result


def narrow_answered_range(result: QueryResult) -> QueryResult:
    """Answer a narrower height range than the client asked about.

    The answer is internally consistent; only the client's comparison of
    the answered range against its own request can reject it.
    """
    if result.last_height <= result.first_height:
        return result
    if result.blocks is not None:
        result.blocks.pop()
        result.last_height -= 1
        return result
    # Segment answers: drop the last segment and shrink the claimed range
    # to just before it.
    assert result.segments is not None
    if len(result.segments) < 2:
        return result
    dropped = result.segments.pop()
    result.last_height = dropped.start - 1
    return result


def duplicate_segment(result: QueryResult) -> QueryResult:
    """Pad the answer with a second copy of a segment proof."""
    if result.segments is not None and result.segments:
        result.segments.append(result.segments[0])
    return result


# ---------------------------------------------------------------------------
# composition with the fault layer


def compose_attacks(*attacks: Attack) -> Attack:
    """One attack applying several in sequence (layered adversary).

    Used by the chaos suite to pair content attacks with link faults:
    ``MaliciousFullNode(system, compose_attacks(a, b))`` behind a
    :class:`repro.node.faults.FaultyTransport` exercises a peer that lies
    *and* whose link mangles the lie further.
    """

    def composed(result: QueryResult) -> QueryResult:
        for attack in attacks:
            result = attack(result)
        return result

    composed.__name__ = "+".join(
        getattr(attack, "__name__", "attack") for attack in attacks
    )
    return composed


def intermittent(attack: Attack, period: int) -> Attack:
    """Apply ``attack`` only every ``period``-th call (reputation farming).

    A peer that answers honestly most of the time defeats naive "ban on
    first failure" clients slowly; a sound verifier still rejects each
    dishonest answer the moment it appears, which is what the session
    quarantine tests pin down.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    calls = {"n": 0}

    def sometimes(result: QueryResult) -> QueryResult:
        calls["n"] += 1
        if calls["n"] % period == 0:
            return attack(result)
        return result

    sometimes.__name__ = f"intermittent_{getattr(attack, '__name__', 'attack')}"
    return sometimes


#: Name → attack, for parametrized tests and the security example.
ALL_ATTACKS = {
    "omit_one_transaction": omit_one_transaction,
    "drop_block_resolution": drop_block_resolution,
    "truncate_blocks": truncate_blocks,
    "swap_existence_for_fpm": swap_existence_for_fpm,
    "forge_transaction_value": forge_transaction_value,
    "duplicate_transaction_entry": duplicate_transaction_entry,
    "tamper_bmt_filter": tamper_bmt_filter,
    "swap_block_filter": swap_block_filter,
    "corrupt_integral_block": corrupt_integral_block,
    "swap_resolutions_between_blocks": swap_resolutions_between_blocks,
    "misclassify_failed_endpoint": misclassify_failed_endpoint,
    "narrow_answered_range": narrow_answered_range,
    "duplicate_segment": duplicate_segment,
}
