"""Full-node-side proof generation (§V) — the query-serving fast path.

``answer_query`` builds the complete, honest answer for one address under
the system's config.  The structure mirrors §V exactly:

* BMT systems produce one :class:`SegmentProof` per covering
  (sub-)segment (complete segments first, then the Table-II binary
  decomposition of the last partial segment); each segment carries the
  merged multiproof and a block-level resolution for every failed leaf;
* non-BMT systems walk the chain block by block, shipping the filter
  (when the header holds only its hash) plus the Eq-4 fragment.

Three prover-side optimizations make this the *fast* path (the original
algorithms live on as the oracle in :mod:`repro.query.naive`, and the
equivalence tests pin both to byte-identical output):

1. **Single-pass proof generation** — ``BmtTree.multiproof`` collects
   the failed-leaf heights during its own descent, eliminating the
   duplicate ``find_endpoints`` traversal per segment;
2. **Position caching** — the item's checked-bit positions are derived
   once per (query, geometry) via :class:`PositionCache` and threaded
   through every tree descent and per-block check;
3. **Inverted address index** — block-level resolutions fetch the
   involved transactions from :class:`repro.query.index.AddressIndex`
   instead of scanning every transaction in the block, and resolved
   blocks are memoized on the system (blocks are immutable, so a
   resolution never goes stale; ``BuiltSystem.clear_query_caches``
   drops the memo for cold-cache measurements).

Dishonest behaviours for the security tests live in
:mod:`repro.query.adversary`, not here.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bloom.filter import PositionCache
from repro.chain.address import address_item
from repro.chain.block import Block
from repro.chain.segments import covering_spans
from repro.errors import QueryError
from repro.query.builder import BuiltSystem
from repro.query.config import SystemKind
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    PerBlockAnswer,
    SegmentProof,
    TxWithBranch,
)
from repro.query.result import QueryResult


def answer_query(
    system: BuiltSystem,
    address: str,
    first_height: int = 1,
    last_height: "int | None" = None,
) -> QueryResult:
    """The honest full node's complete answer for ``address``.

    ``first_height``/``last_height`` restrict the query to a height range
    (defaults: the whole chain) — the range-query extension.  On BMT
    systems, segments partially overlapping the range ship restricted
    multiproofs whose out-of-range subtrees are ``(hash, bf)`` stubs.

    The whole answer is produced under the system's read lock, so the
    tip observed here cannot advance mid-proof: concurrent queries run
    in parallel, but ``append_block`` waits until every in-flight
    answer is complete (and vice versa).
    """
    with system.lock.read():
        if system.tip_height < 1:
            raise QueryError("chain has no queryable blocks (only genesis)")
        if last_height is None:
            last_height = system.tip_height
        if not 1 <= first_height <= last_height <= system.tip_height:
            raise QueryError(
                f"bad query range [{first_height},{last_height}] for tip "
                f"{system.tip_height}"
            )
        if system.config.uses_bmt:
            return _answer_with_segments(
                system, address, first_height, last_height
            )
        return _answer_per_block(system, address, first_height, last_height)


# ---------------------------------------------------------------------------
# BMT path (LVQ and LVQ-no-SMT)


def _answer_with_segments(
    system: BuiltSystem, address: str, first: int, last: int
) -> QueryResult:
    config = system.config
    assert config.segment_len is not None and system.forest is not None
    item = address_item(address)
    cache = PositionCache(item)
    segments: List[SegmentProof] = []
    for anchor, start, end in covering_spans(system.tip_height, config.segment_len):
        if end < first or start > last:
            continue  # segment entirely outside the queried range
        clipped = (max(start, first), min(end, last))
        # A BMT over a fixed span is immutable once merged, so its
        # multiproof for a given clipped range is memoizable forever.
        seg_key = (address, anchor, start, end, clipped)
        cached = system.segment_cache.get(seg_key)
        if cached is None:
            tree = system.forest.tree(start, end)
            positions = cache.positions(
                tree.root.bf.num_hashes, tree.root.bf.size_bits
            )
            # Single pass: the in-range failed-leaf heights fall out of
            # the multiproof's own descent, left to right.
            failed: List[int] = []
            multiproof = tree.multiproof(
                item,
                query_range=clipped,
                positions=positions,
                failed_heights=failed,
            )
            cached = (multiproof, failed)
            system.segment_cache[seg_key] = cached
        multiproof, failed = cached
        resolutions: Dict[int, object] = {
            height: _resolve_block(system, height, address)
            for height in failed
        }
        segments.append(SegmentProof(anchor, start, end, multiproof, resolutions))
    return QueryResult(
        config.kind,
        address,
        system.tip_height,
        segments=segments,
        first_height=first,
        last_height=last,
    )


# ---------------------------------------------------------------------------
# per-block path (strawman and LVQ-no-BMT)


def _answer_per_block(
    system: BuiltSystem, address: str, first: int, last: int
) -> QueryResult:
    config = system.config
    item = address_item(address)
    cache = PositionCache(item)
    answers: List[PerBlockAnswer] = []
    for height in range(first, last + 1):
        bf = system.filters[height]
        shipped = bf if config.ships_block_filters else None
        if not cache.check_fails(bf):
            answers.append(PerBlockAnswer(shipped, None))  # Eq 4: ∅
            continue
        answers.append(PerBlockAnswer(shipped, _resolve_block(system, height, address)))
    return QueryResult(
        config.kind,
        address,
        system.tip_height,
        blocks=answers,
        first_height=first,
        last_height=last,
    )


# ---------------------------------------------------------------------------
# block-level resolutions


def _resolve_block(system: BuiltSystem, height: int, address: str):
    """Evidence for a block whose filter check failed for ``address``.

    Resolutions are memoized per ``(address, height)``: blocks are
    immutable once appended, so the evidence for a block never changes.
    Repeat queries for hot addresses (and overlapping range queries) hit
    the memo instead of re-proving.  Every call returns a fresh top-level
    resolution object (``copy()``) so callers that tamper with their
    answer — the adversary tests do — cannot poison the memo.
    """
    cache = system.resolution_cache
    key = (address, height)
    resolution = cache.get(key)
    if resolution is None:
        resolution = _build_resolution(system, height, address)
        cache[key] = resolution
    return resolution.copy()


def _build_resolution(system: BuiltSystem, height: int, address: str):
    config = system.config
    block = system.chain.block_at(height)

    if not config.uses_smt:
        if config.kind is SystemKind.LVQ_NO_SMT:
            # No per-block count commitment exists, so completeness can
            # only be proven by shipping the whole body (DESIGN.md §5).
            return IntegralBlockResolution(block.body_bytes())
        # Strawman Eq 4: Merkle branches when present, IB on an FPM.  The
        # branches cannot pin the appearance count — Challenge 3's gap.
        entries = _existence_entries(system, block, address)
        if entries:
            return ExistenceResolution(None, entries)
        return IntegralBlockResolution(block.body_bytes())

    smt = system.smts[height]
    assert smt is not None
    if address in smt:
        entries = _existence_entries(system, block, address)
        return ExistenceResolution(smt.prove_existence(address), entries)
    return FpmResolution(smt.prove_inexistence(address))


def _existence_entries(
    system: BuiltSystem, block: Block, address: str
) -> List[TxWithBranch]:
    """``(transaction, Merkle branch)`` pairs for every appearance.

    With an inverted index on the system this is O(appearances); the
    brute-force scan remains only as a fallback for hand-built systems
    constructed without an index.
    """
    merkle_tree = system.merkle_trees[block.height]
    index = system.address_index
    if index is not None and index.indexed_height >= block.height:
        return [
            TxWithBranch(block.transactions[i], merkle_tree.branch(i))
            for i in index.tx_indices(address, block.height)
        ]
    return [
        TxWithBranch(transaction, merkle_tree.branch(i))
        for i, transaction in enumerate(block.transactions)
        if transaction.involves(address)
    ]
