"""Full-node-side proof generation (§V).

``answer_query`` builds the complete, honest answer for one address under
the system's config.  The structure mirrors §V exactly:

* BMT systems produce one :class:`SegmentProof` per covering
  (sub-)segment (complete segments first, then the Table-II binary
  decomposition of the last partial segment); each segment carries the
  merged multiproof and a block-level resolution for every failed leaf;
* non-BMT systems walk the chain block by block, shipping the filter
  (when the header holds only its hash) plus the Eq-4 fragment.

Dishonest behaviours for the security tests live in
:mod:`repro.query.adversary`, not here.
"""

from __future__ import annotations

from typing import Dict, List

from repro.chain.address import address_item
from repro.chain.block import Block
from repro.chain.segments import covering_spans
from repro.errors import QueryError
from repro.merkle.bmt import EndpointKind
from repro.query.builder import BuiltSystem
from repro.query.config import SystemKind
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    PerBlockAnswer,
    SegmentProof,
    TxWithBranch,
)
from repro.query.result import QueryResult


def answer_query(
    system: BuiltSystem,
    address: str,
    first_height: int = 1,
    last_height: "int | None" = None,
) -> QueryResult:
    """The honest full node's complete answer for ``address``.

    ``first_height``/``last_height`` restrict the query to a height range
    (defaults: the whole chain) — the range-query extension.  On BMT
    systems, segments partially overlapping the range ship restricted
    multiproofs whose out-of-range subtrees are ``(hash, bf)`` stubs.
    """
    if system.tip_height < 1:
        raise QueryError("chain has no queryable blocks (only genesis)")
    if last_height is None:
        last_height = system.tip_height
    if not 1 <= first_height <= last_height <= system.tip_height:
        raise QueryError(
            f"bad query range [{first_height},{last_height}] for tip "
            f"{system.tip_height}"
        )
    if system.config.uses_bmt:
        return _answer_with_segments(system, address, first_height, last_height)
    return _answer_per_block(system, address, first_height, last_height)


# ---------------------------------------------------------------------------
# BMT path (LVQ and LVQ-no-SMT)


def _answer_with_segments(
    system: BuiltSystem, address: str, first: int, last: int
) -> QueryResult:
    config = system.config
    assert config.segment_len is not None and system.forest is not None
    item = address_item(address)
    segments: List[SegmentProof] = []
    for anchor, start, end in covering_spans(system.tip_height, config.segment_len):
        if end < first or start > last:
            continue  # segment entirely outside the queried range
        clipped = (max(start, first), min(end, last))
        tree = system.forest.tree(start, end)
        multiproof = tree.multiproof(item, query_range=clipped)
        resolutions: Dict[int, object] = {}
        for endpoint in tree.find_endpoints(item):
            if endpoint.kind is EndpointKind.LEAF_FAILED:
                height = endpoint.node.start
                if clipped[0] <= height <= clipped[1]:
                    resolutions[height] = _resolve_block(
                        system, height, address
                    )
        segments.append(SegmentProof(anchor, start, end, multiproof, resolutions))
    return QueryResult(
        config.kind,
        address,
        system.tip_height,
        segments=segments,
        first_height=first,
        last_height=last,
    )


# ---------------------------------------------------------------------------
# per-block path (strawman and LVQ-no-BMT)


def _answer_per_block(
    system: BuiltSystem, address: str, first: int, last: int
) -> QueryResult:
    config = system.config
    item = address_item(address)
    answers: List[PerBlockAnswer] = []
    for height in range(first, last + 1):
        bf = system.filters[height]
        shipped = bf if config.ships_block_filters else None
        if not bf.might_contain(item):
            answers.append(PerBlockAnswer(shipped, None))  # Eq 4: ∅
            continue
        answers.append(PerBlockAnswer(shipped, _resolve_block(system, height, address)))
    return QueryResult(
        config.kind,
        address,
        system.tip_height,
        blocks=answers,
        first_height=first,
        last_height=last,
    )


# ---------------------------------------------------------------------------
# block-level resolutions


def _resolve_block(system: BuiltSystem, height: int, address: str):
    """Evidence for a block whose filter check failed for ``address``."""
    config = system.config
    block = system.chain.block_at(height)

    if not config.uses_smt:
        if config.kind is SystemKind.LVQ_NO_SMT:
            # No per-block count commitment exists, so completeness can
            # only be proven by shipping the whole body (DESIGN.md §5).
            return IntegralBlockResolution(block.body_bytes())
        # Strawman Eq 4: Merkle branches when present, IB on an FPM.  The
        # branches cannot pin the appearance count — Challenge 3's gap.
        entries = _existence_entries(system, block, address)
        if entries:
            return ExistenceResolution(None, entries)
        return IntegralBlockResolution(block.body_bytes())

    smt = system.smts[height]
    assert smt is not None
    if address in smt:
        entries = _existence_entries(system, block, address)
        return ExistenceResolution(smt.prove_existence(address), entries)
    return FpmResolution(smt.prove_inexistence(address))


def _existence_entries(
    system: BuiltSystem, block: Block, address: str
) -> List[TxWithBranch]:
    merkle_tree = system.merkle_trees[block.height]
    return [
        TxWithBranch(transaction, merkle_tree.branch(index))
        for index, transaction in enumerate(block.transactions)
        if transaction.involves(address)
    ]
