"""Query results and their size accounting.

A :class:`QueryResult` is the complete wire answer a full node returns for
one address.  The evaluation section of the paper measures exactly one
thing — the size of this object — so :meth:`QueryResult.size_bytes` is the
library's headline metric, and :meth:`QueryResult.breakdown` splits it
into the categories Fig 14 plots (BMT branches vs everything else).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint
from repro.errors import EncodingError, ProofError
from repro.query.config import SystemConfig, SystemKind
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    PerBlockAnswer,
    SegmentProof,
)


class SizeBreakdown:
    """Bytes of a result attributed to each proof component."""

    __slots__ = (
        "bf_bytes",
        "bmt_bytes",
        "smt_bytes",
        "mt_bytes",
        "tx_bytes",
        "ib_bytes",
        "framing_bytes",
        "total_bytes",
        "aggregated_bytes",
        "compressed_bytes",
    )

    def __init__(self) -> None:
        self.bf_bytes = 0  # per-block filters shipped by non-BMT systems
        self.bmt_bytes = 0  # BMT multiproofs (filters + hashes inside them)
        self.smt_bytes = 0  # SMT existence branches + inexistence pairs
        self.mt_bytes = 0  # transaction Merkle branches
        self.tx_bytes = 0  # raw transactions in existence resolutions
        self.ib_bytes = 0  # integral block bodies
        self.framing_bytes = 0  # tags, varints, message header
        self.total_bytes = 0
        self.aggregated_bytes = 0  # §8.1 blob-table re-encoding of the result
        self.compressed_bytes = 0  # aggregated frame after per-frame zlib

    def bmt_ratio(self) -> float:
        """Fraction of the result occupied by BMT branches (Fig 14)."""
        if self.total_bytes == 0:
            return 0.0
        return self.bmt_bytes / self.total_bytes

    def as_dict(self) -> Dict[str, int]:
        return {
            "bf": self.bf_bytes,
            "bmt": self.bmt_bytes,
            "smt": self.smt_bytes,
            "mt": self.mt_bytes,
            "tx": self.tx_bytes,
            "ib": self.ib_bytes,
            "framing": self.framing_bytes,
            "total": self.total_bytes,
            "aggregated": self.aggregated_bytes,
            "compressed": self.compressed_bytes,
        }

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SizeBreakdown({fields})"


class QueryResult:
    """Everything a full node returns for one address query.

    ``first_height``/``last_height`` bound the queried slice of the chain
    (defaults: the whole chain, heights ``1..tip_height``) — the §V
    protocol plus the range-query extension documented in DESIGN.md.
    """

    __slots__ = (
        "kind",
        "address",
        "tip_height",
        "first_height",
        "last_height",
        "segments",
        "blocks",
    )

    def __init__(
        self,
        kind: SystemKind,
        address: str,
        tip_height: int,
        segments: Optional[List[SegmentProof]] = None,
        blocks: Optional[List[PerBlockAnswer]] = None,
        first_height: int = 1,
        last_height: Optional[int] = None,
    ) -> None:
        if (segments is None) == (blocks is None):
            raise ProofError(
                "a result carries either segment proofs or per-block answers"
            )
        if last_height is None:
            last_height = tip_height
        if not 1 <= first_height <= last_height <= tip_height:
            raise ProofError(
                f"bad query range [{first_height},{last_height}] for tip "
                f"{tip_height}"
            )
        self.kind = kind
        self.address = address
        self.tip_height = tip_height
        self.first_height = first_height
        self.last_height = last_height
        self.segments = segments
        self.blocks = blocks

    @property
    def is_full_range(self) -> bool:
        return self.first_height == 1 and self.last_height == self.tip_height

    # -- statistics ----------------------------------------------------------

    def num_endpoints(self) -> int:
        """Total BMT endpoint nodes across all segments (Fig 15/16)."""
        if self.segments is None:
            raise ProofError(f"{self.kind.value} results have no BMT endpoints")
        return sum(seg.multiproof.num_endpoints() for seg in self.segments)

    def size_bytes(self, config: SystemConfig) -> int:
        return len(self.serialize(config))

    def breakdown(self, config: SystemConfig) -> SizeBreakdown:
        """Attribute every byte of the serialized result to a component."""
        sizes = SizeBreakdown()
        sizes.total_bytes = self.size_bytes(config)
        if self.segments is not None:
            for segment in self.segments:
                sizes.bmt_bytes += segment.multiproof.size_bytes()
                for resolution in segment.resolutions.values():
                    _account_resolution(resolution, sizes)
        else:
            assert self.blocks is not None
            for answer in self.blocks:
                if answer.bf is not None:
                    sizes.bf_bytes += answer.bf.size_bytes
                if answer.resolution is not None:
                    _account_resolution(answer.resolution, sizes)
        attributed = (
            sizes.bf_bytes
            + sizes.bmt_bytes
            + sizes.smt_bytes
            + sizes.mt_bytes
            + sizes.tx_bytes
            + sizes.ib_bytes
        )
        sizes.framing_bytes = sizes.total_bytes - attributed
        # Wire sizes: the §8.1 aggregated re-encoding of this result and
        # that frame after per-frame compression.  Lazy imports break the
        # result → aggregate → batch → result cycle.
        from repro.node.transport import compress_frame
        from repro.query.aggregate import batch_of_result, encode_aggregated_batch

        aggregated = encode_aggregated_batch(batch_of_result(self), config)
        sizes.aggregated_bytes = len(aggregated)
        sizes.compressed_bytes = len(compress_frame(aggregated))
        return sizes

    # -- serialization ---------------------------------------------------------

    def serialize(self, config: SystemConfig) -> bytes:
        if config.kind is not self.kind:
            raise ProofError(
                f"result built for {self.kind.value} serialized with a "
                f"{config.kind.value} config"
            )
        parts = [
            write_var_bytes(self.address.encode("utf-8")),
            write_varint(self.tip_height),
            write_varint(self.first_height),
            write_varint(self.last_height),
        ]
        if self.segments is not None:
            parts.append(write_varint(len(self.segments)))
            parts.extend(segment.serialize() for segment in self.segments)
        else:
            assert self.blocks is not None
            parts.append(write_varint(len(self.blocks)))
            parts.extend(answer.serialize(config) for answer in self.blocks)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes, config: SystemConfig) -> "QueryResult":
        reader = ByteReader(payload)
        try:
            address = reader.var_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EncodingError(f"result address is not UTF-8: {exc}") from exc
        tip_height = reader.varint()
        first_height = reader.varint()
        last_height = reader.varint()
        count = reader.varint()
        if count > 10_000_000:
            raise EncodingError(f"implausible element count {count}")
        segments = None
        blocks = None
        if config.uses_bmt:
            segments = [
                SegmentProof.deserialize(reader, config) for _ in range(count)
            ]
        else:
            blocks = [
                PerBlockAnswer.deserialize(reader, config) for _ in range(count)
            ]
        reader.finish()
        try:
            return cls(
                config.kind,
                address,
                tip_height,
                segments,
                blocks,
                first_height,
                last_height,
            )
        except ProofError as exc:
            raise EncodingError(str(exc)) from exc

    def __repr__(self) -> str:
        if self.segments is not None:
            shape = f"{len(self.segments)} segments"
        else:
            assert self.blocks is not None
            shape = f"{len(self.blocks)} blocks"
        return f"QueryResult({self.kind.value}, {self.address[:12]}…, {shape})"


def _account_resolution(resolution, sizes: SizeBreakdown) -> None:
    if isinstance(resolution, ExistenceResolution):
        sizes.smt_bytes += resolution.smt_bytes()
        sizes.mt_bytes += resolution.mt_bytes()
        sizes.tx_bytes += resolution.tx_bytes()
    elif isinstance(resolution, FpmResolution):
        sizes.smt_bytes += resolution.smt_bytes()
    elif isinstance(resolution, IntegralBlockResolution):
        sizes.ib_bytes += resolution.ib_bytes()
    else:  # pragma: no cover - constructor already rejects unknown types
        raise ProofError(f"unknown resolution type {type(resolution).__name__}")
