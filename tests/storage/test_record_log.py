"""Frame-level tests for the append-only record log."""

import struct

import pytest

from repro.errors import ChainError
from repro.storage.record_log import (
    FRAME_OVERHEAD,
    MAX_PAYLOAD_BYTES,
    RECORD_BLOCK,
    RECORD_ROLLBACK,
    block_record,
    encode_record,
    replay_records,
    rollback_record,
    walk_records,
)


def _frames(*payloads):
    return b"".join(encode_record(RECORD_BLOCK, p) for p in payloads)


class TestFraming:
    def test_roundtrip(self):
        raw = _frames(b"alpha", b"", b"x" * 300)
        records, bad, reason = walk_records(raw)
        assert bad is None and reason is None
        assert [r.payload for r in records] == [b"alpha", b"", b"x" * 300]
        assert records[0].offset == 0
        assert records[0].end_offset == FRAME_OVERHEAD + 5
        assert records[-1].end_offset == len(raw)

    def test_empty_log(self):
        records, bad, _ = walk_records(b"")
        assert records == [] and bad is None

    def test_truncated_header(self):
        raw = _frames(b"one") + b"\x01\x02"
        records, bad, reason = walk_records(raw)
        assert len(records) == 1
        assert bad == records[0].end_offset
        assert "header" in reason

    def test_truncated_body(self):
        full = encode_record(RECORD_BLOCK, b"payload")
        records, bad, reason = walk_records(full[:-1])
        assert records == [] and bad == 0 and "body" in reason

    def test_crc_flip_detected(self):
        raw = bytearray(_frames(b"one", b"two"))
        raw[FRAME_OVERHEAD - 1] ^= 0x40  # inside record 0's payload area
        records, bad, reason = walk_records(bytes(raw))
        assert bad == 0 and reason == "CRC mismatch"
        assert records == []

    def test_damage_only_breaks_suffix(self):
        first = encode_record(RECORD_BLOCK, b"keep")
        raw = bytearray(first + encode_record(RECORD_BLOCK, b"lose"))
        raw[len(first) + FRAME_OVERHEAD - 2] ^= 0xFF
        records, bad, _ = walk_records(bytes(raw))
        assert [r.payload for r in records] == [b"keep"]
        assert bad == len(first)

    def test_implausible_length_is_frame_damage(self):
        raw = struct.pack("<BI", RECORD_BLOCK, MAX_PAYLOAD_BYTES + 1)
        records, bad, reason = walk_records(raw + b"\x00" * 32)
        assert records == [] and bad == 0 and "implausible" in reason

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ChainError):
            encode_record(RECORD_BLOCK, b"\x00" * (MAX_PAYLOAD_BYTES + 1))

    def test_rollback_height_must_fit_u32(self):
        with pytest.raises(ChainError):
            rollback_record(1 << 32)
        with pytest.raises(ChainError):
            rollback_record(-1)


class TestReplay:
    def test_appends_accumulate(self):
        raw = block_record(b"b0", b"h0") + block_record(b"b1", b"h1")
        records, bad, _ = walk_records(raw)
        assert bad is None
        assert replay_records(records) == [(b"b0", b"h0"), (b"b1", b"h1")]

    def test_rollback_drops_suffix(self):
        raw = (
            block_record(b"b0", b"h0")
            + block_record(b"b1", b"h1")
            + block_record(b"b2", b"h2")
            + rollback_record(0)
            + block_record(b"b1'", b"h1'")
        )
        records, bad, _ = walk_records(raw)
        assert bad is None
        assert replay_records(records) == [(b"b0", b"h0"), (b"b1'", b"h1'")]

    def test_rollback_past_tip_is_corruption(self):
        raw = block_record(b"b0", b"h0") + rollback_record(5)
        records, _, _ = walk_records(raw)
        with pytest.raises(ChainError, match="rollback"):
            replay_records(records)

    def test_unknown_record_type_is_corruption(self):
        records, bad, _ = walk_records(encode_record(99, b"?"))
        assert bad is None  # the frame itself is intact
        with pytest.raises(ChainError, match="unknown record type"):
            replay_records(records)

    def test_malformed_block_payload_is_corruption(self):
        records, bad, _ = walk_records(encode_record(RECORD_BLOCK, b"\xff"))
        assert bad is None
        with pytest.raises(ChainError, match="corrupt block record"):
            replay_records(records)

    def test_malformed_rollback_payload_is_corruption(self):
        records, _, _ = walk_records(encode_record(RECORD_ROLLBACK, b"\x01"))
        with pytest.raises(ChainError, match="corrupt rollback record"):
            replay_records(records)
