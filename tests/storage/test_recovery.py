"""Crash-injection VFS unit tests and a kill-point harness smoke run.

The exhaustive sweep (``--step 1``, every fault point) runs in the CI
``recovery-smoke`` job; here a thinned matrix keeps the tier-1 suite
fast while still crossing every commit phase (record bytes, log fsync,
manifest tmp bytes, replace, dir sync).
"""

import pytest

from repro.storage.recovery_harness import build_schedule, run_harness
from repro.storage.vfs import CountingVfs, CrashPoint, CrashVfs, Vfs


class TestCountingVfs:
    def test_counts_bytes_and_ops(self, tmp_path):
        vfs = CountingVfs()
        with vfs.open(tmp_path / "f", "wb") as handle:
            handle.write(b"12345")
            vfs.fsync(handle)
        vfs.replace(tmp_path / "f", tmp_path / "g")
        vfs.fsync_dir(tmp_path)
        assert vfs.fault_points == 5 + 1 + 1 + 1

    def test_read_paths_uncharged(self, tmp_path):
        (tmp_path / "f").write_bytes(b"data")
        vfs = CountingVfs()
        with vfs.open(tmp_path / "f", "rb") as handle:
            assert handle.read() == b"data"
        assert vfs.fault_points == 0


class TestCrashVfs:
    def test_partial_write_lands(self, tmp_path):
        vfs = CrashVfs(crash_at=3)
        handle = vfs.open(tmp_path / "f", "wb")
        with pytest.raises(CrashPoint):
            handle.write(b"abcdef")
        assert (tmp_path / "f").read_bytes() == b"abc"

    def test_dead_vfs_refuses_everything(self, tmp_path):
        vfs = CrashVfs(crash_at=1)
        handle = vfs.open(tmp_path / "f", "wb")
        with pytest.raises(CrashPoint):
            handle.write(b"xy")
        assert vfs.dead
        with pytest.raises(CrashPoint):
            vfs.open(tmp_path / "g", "wb")
        with pytest.raises(CrashPoint):
            vfs.replace(tmp_path / "f", tmp_path / "g")

    def test_crash_on_fsync_skips_the_sync(self, tmp_path):
        vfs = CrashVfs(crash_at=4)
        handle = vfs.open(tmp_path / "f", "wb")
        handle.write(b"abc")  # 3 fault points, all land
        with pytest.raises(CrashPoint):
            vfs.fsync(handle)  # 4th point: dies before syncing

    def test_exact_boundary_crashes_on_next_op(self, tmp_path):
        vfs = CrashVfs(crash_at=3)
        handle = vfs.open(tmp_path / "f", "wb")
        handle.write(b"abc")  # exactly exhausts the budget
        with pytest.raises(CrashPoint):
            handle.write(b"d")
        assert (tmp_path / "f").read_bytes() == b"abc"

    def test_crash_point_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashVfs(crash_at=0)


class TestSchedule:
    def test_schedule_exercises_both_record_types(self):
        _system, ops, probes, _config = build_schedule(6, 2, seed=1)
        kinds = {kind for kind, _ in ops}
        assert kinds == {"append", "rollback"}
        assert probes

    def test_too_short_chain_rejected(self):
        with pytest.raises(ValueError):
            build_schedule(3, 2, seed=1)


class TestHarness:
    def test_thinned_sweep_zero_divergences(self, tmp_path):
        result = run_harness(
            num_blocks=5,
            txs_per_block=2,
            seed=11,
            step=211,
            workdir=tmp_path / "sweep",
        )
        assert result.ok, result.divergences[:3]
        assert result.crashes_tested >= 20
        assert result.fault_points > result.crashes_tested

    def test_harness_detects_a_broken_store(self, tmp_path, monkeypatch):
        """Sanity check that the harness *can* fail: break recovery and
        the sweep must report divergences instead of vacuous success."""
        import repro.storage.recovery_harness as rh

        real_open = rh.DurableStore.open.__func__

        def flaky_open(cls, directory, vfs=None):
            store = real_open(cls, directory, vfs)
            if "crash" in str(directory) and len(store.system.chain) > 1:
                store.system.rollback_to(0)  # corrupt the recovered state
            return store

        monkeypatch.setattr(
            rh.DurableStore, "open", classmethod(flaky_open)
        )
        result = run_harness(
            num_blocks=5,
            txs_per_block=2,
            seed=11,
            step=997,
            workdir=tmp_path / "sweep",
        )
        assert not result.ok
