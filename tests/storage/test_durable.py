"""The durable store: incremental commits, recovery, and fsck."""

import json

import pytest

from repro.errors import ChainError
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.storage import load_system
from repro.storage.durable import DurableStore, verify_store
from repro.storage.vfs import CrashPoint, CrashVfs
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

CONFIG = SystemConfig.lvq(bf_bytes=128, segment_len=4)


@pytest.fixture(scope="module")
def chains():
    main = generate_workload(
        WorkloadParams(
            num_blocks=10,
            txs_per_block=4,
            seed=71,
            probes=[ProbeProfile("P", 5, 4)],
        )
    )
    alt = generate_workload(
        WorkloadParams(
            num_blocks=10,
            txs_per_block=4,
            seed=72,
            probes=[ProbeProfile("P", 5, 4)],
        )
    )
    return main, alt


def _store_at(tmp_path, bodies, name="store"):
    system = build_system(bodies, CONFIG)
    return DurableStore.create(tmp_path / name, system)


def _headers(system):
    return [h.serialize() for h in system.headers()]


class TestRoundTrip:
    def test_create_open_identical(self, chains, tmp_path):
        main, _ = chains
        store = _store_at(tmp_path, main.bodies)
        reopened = DurableStore.open(tmp_path / "store")
        assert _headers(reopened.system) == _headers(store.system)
        address = main.probe_addresses["P"]
        assert answer_query(reopened.system, address).serialize(
            CONFIG
        ) == answer_query(store.system, address).serialize(CONFIG)

    def test_append_is_incremental(self, chains, tmp_path):
        main, _ = chains
        store = _store_at(tmp_path, main.bodies[:6])
        log = tmp_path / "store" / "chain.log"
        size_before = log.stat().st_size
        store.append_block(main.bodies[6])
        grown_by = log.stat().st_size - size_before
        # One framed record, not a rewrite of the whole chain.
        assert 0 < grown_by < size_before
        reopened = DurableStore.open(tmp_path / "store")
        assert _headers(reopened.system) == _headers(
            build_system(main.bodies[:7], CONFIG)
        )

    def test_rollback_appends_not_rewrites(self, chains, tmp_path):
        main, _ = chains
        store = _store_at(tmp_path, main.bodies)
        log = tmp_path / "store" / "chain.log"
        size_before = log.stat().st_size
        store.rollback_to(5)
        assert log.stat().st_size > size_before  # log only grows
        reopened = DurableStore.open(tmp_path / "store")
        assert _headers(reopened.system) == _headers(
            build_system(main.bodies[:6], CONFIG)
        )

    def test_reorg_roundtrip(self, chains, tmp_path):
        main, alt = chains
        store = _store_at(tmp_path, main.bodies)
        store.reorg(4, alt.bodies[5:9])
        reopened = DurableStore.open(tmp_path / "store")
        equivalent = build_system(main.bodies[:5] + alt.bodies[5:9], CONFIG)
        assert _headers(reopened.system) == _headers(equivalent)
        for address in set(main.probe_addresses.values()) | set(
            alt.probe_addresses.values()
        ):
            assert answer_query(reopened.system, address).serialize(
                CONFIG
            ) == answer_query(equivalent, address).serialize(CONFIG)

    def test_load_system_dispatches_format_2(self, chains, tmp_path):
        main, _ = chains
        store = _store_at(tmp_path, main.bodies)
        loaded = load_system(tmp_path / "store")
        assert _headers(loaded) == _headers(store.system)

    def test_create_refuses_overwrite(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies[:4])
        with pytest.raises(ChainError, match="refusing to overwrite"):
            DurableStore.create(
                tmp_path / "store", build_system(main.bodies[:4], CONFIG)
            )


class TestRecovery:
    def test_torn_tail_truncated(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        log = tmp_path / "store" / "chain.log"
        clean = log.read_bytes()
        log.write_bytes(clean + b"\x01\x00\x00")
        reopened = DurableStore.open(tmp_path / "store")
        assert log.read_bytes() == clean
        assert _headers(reopened.system) == _headers(
            build_system(main.bodies, CONFIG)
        )

    def test_adopts_fsynced_record_beyond_checkpoint(self, chains, tmp_path):
        """Crash between the log fsync and the manifest replace: the new
        record is durable, so recovery must adopt it, not drop it."""
        main, _ = chains
        store = _store_at(tmp_path, main.bodies[:6])
        manifest_before = (tmp_path / "store" / "manifest.json").read_bytes()
        store.append_block(main.bodies[6])
        # Simulate the crash by restoring the pre-append manifest.
        (tmp_path / "store" / "manifest.json").write_bytes(manifest_before)
        reopened = DurableStore.open(tmp_path / "store")
        assert len(reopened.system.chain) == 7
        # Recovery re-checkpointed: a second open is clean.
        manifest = json.loads(
            (tmp_path / "store" / "manifest.json").read_text()
        )
        assert manifest["blocks"] == 7

    def test_corruption_inside_committed_prefix_rejected(
        self, chains, tmp_path
    ):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        log = tmp_path / "store" / "chain.log"
        raw = bytearray(log.read_bytes())
        raw[7] ^= 0xFF
        log.write_bytes(bytes(raw))
        with pytest.raises(ChainError, match="committed prefix"):
            DurableStore.open(tmp_path / "store")

    def test_externally_truncated_log_rejected(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        log = tmp_path / "store" / "chain.log"
        log.write_bytes(log.read_bytes()[:50])
        with pytest.raises(ChainError, match="truncated"):
            DurableStore.open(tmp_path / "store")

    def test_partial_manifest_is_chain_error(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        manifest = tmp_path / "store" / "manifest.json"
        manifest.write_text(manifest.read_text()[:37])
        with pytest.raises(ChainError, match="corrupt chain manifest"):
            DurableStore.open(tmp_path / "store")

    def test_stray_manifest_tmp_is_harmless(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        (tmp_path / "store" / "manifest.json.tmp").write_text("{garbage")
        reopened = DurableStore.open(tmp_path / "store")
        assert _headers(reopened.system) == _headers(
            build_system(main.bodies, CONFIG)
        )

    def test_crash_mid_commit_recovers_cleanly(self, chains, tmp_path):
        main, _ = chains
        store = _store_at(tmp_path, main.bodies[:6])
        store.vfs = CrashVfs(crash_at=20)  # dies inside the record write
        with pytest.raises(CrashPoint):
            store.append_block(main.bodies[6])
        reopened = DurableStore.open(tmp_path / "store")
        assert len(reopened.system.chain) == 6
        report = verify_store(tmp_path / "store", deep=True)
        assert report.ok, report.detail


class TestVerifyStore:
    def test_clean(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        report = verify_store(tmp_path / "store", deep=True)
        assert report.ok
        assert report.blocks == len(main.bodies)
        assert report.torn_bytes == 0
        assert report.first_bad_offset is None

    def test_torn_tail_is_recoverable_not_corrupt(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        log = tmp_path / "store" / "chain.log"
        log.write_bytes(log.read_bytes() + b"\x02\x01")
        report = verify_store(tmp_path / "store")
        assert report.ok
        assert report.torn_bytes == 2

    def test_corruption_reports_first_bad_offset(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies)
        log = tmp_path / "store" / "chain.log"
        raw = bytearray(log.read_bytes())
        raw[3] ^= 0x01
        log.write_bytes(bytes(raw))
        report = verify_store(tmp_path / "store")
        assert not report.ok
        assert report.first_bad_offset == 0

    def test_header_tamper_caught_by_deep_check(self, chains, tmp_path):
        """A record whose header bytes disagree with its body survives the
        CRC walk (the frame is intact) — only the deep rebuild sees it."""
        main, _ = chains
        store = _store_at(tmp_path, main.bodies[:5])
        from repro.crypto.hashing import sha256d
        from repro.storage.record_log import block_record, walk_records

        tip = store.system.tip_height
        block = store.system.chain.block_at(tip)
        wrong_header = store.system.chain.header_at(tip - 1).serialize()
        frame = block_record(block.body_bytes(), wrong_header)
        log = tmp_path / "store" / "chain.log"
        raw = log.read_bytes()
        records, _, _ = walk_records(raw)
        patched = raw[: records[-1].offset] + frame
        log.write_bytes(patched)
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["log_bytes"] = len(patched)
        manifest["tip_id"] = sha256d(wrong_header).hex()
        manifest_path.write_text(json.dumps(manifest))
        # Shallow check only validates frames + checkpoint arithmetic...
        assert verify_store(tmp_path / "store").ok
        # ...while the deep rebuild compares every stored header byte.
        deep = verify_store(tmp_path / "store", deep=True)
        assert not deep.ok
        assert "does not match" in deep.detail
        with pytest.raises(ChainError, match="does not match"):
            DurableStore.open(tmp_path / "store")

    def test_missing_log(self, chains, tmp_path):
        main, _ = chains
        _store_at(tmp_path, main.bodies[:4])
        (tmp_path / "store" / "chain.log").unlink()
        report = verify_store(tmp_path / "store")
        assert not report.ok
        assert "missing chain log" in report.detail

    def test_wrong_format_manifest(self, tmp_path):
        (tmp_path / "store").mkdir()
        (tmp_path / "store" / "manifest.json").write_text(
            json.dumps({"format": 1})
        )
        report = verify_store(tmp_path / "store")
        assert not report.ok
