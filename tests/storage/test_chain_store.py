"""Tests for on-disk chain and header persistence."""

import json

import pytest

from repro.errors import ChainError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.query.verifier import verify_result
from repro.storage.chain_store import (
    load_headers,
    load_system,
    save_headers,
    save_system,
)
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


@pytest.fixture(scope="module")
def small_system():
    workload = generate_workload(
        WorkloadParams(
            num_blocks=16,
            txs_per_block=6,
            seed=5,
            probes=[ProbeProfile("P", 4, 3)],
        )
    )
    system = build_system(
        workload.bodies, SystemConfig.lvq(bf_bytes=160, segment_len=8)
    )
    return workload, system


class TestSystemRoundtrip:
    def test_save_load_identical(self, small_system, tmp_path):
        workload, system = small_system
        save_system(system, tmp_path / "chain")
        loaded = load_system(tmp_path / "chain")
        assert loaded.config == system.config
        assert loaded.tip_height == system.tip_height
        for original, restored in zip(system.headers(), loaded.headers()):
            assert original.serialize() == restored.serialize()

    def test_loaded_system_answers_queries(self, small_system, tmp_path):
        workload, system = small_system
        save_system(system, tmp_path / "chain")
        loaded = load_system(tmp_path / "chain")
        address = workload.probe_addresses["P"]
        result = answer_query(loaded, address)
        history = verify_result(
            result, loaded.headers(), loaded.config, address
        )
        assert len(history.transactions) == 4

    def test_loaded_system_can_grow(self, small_system, tmp_path):
        workload, system = small_system
        save_system(system, tmp_path / "chain")
        loaded = load_system(tmp_path / "chain")
        extra = workload.bodies[3]  # any valid body works structurally
        loaded.append_block(extra)
        assert loaded.tip_height == system.tip_height + 1

    def test_save_is_idempotent(self, small_system, tmp_path):
        _workload, system = small_system
        save_system(system, tmp_path / "chain")
        save_system(system, tmp_path / "chain")
        assert load_system(tmp_path / "chain").tip_height == system.tip_height


class TestCorruptionDetection:
    def _saved(self, small_system, tmp_path):
        _workload, system = small_system
        directory = tmp_path / "chain"
        save_system(system, directory)
        return directory

    def test_missing_manifest(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        (directory / "manifest.json").unlink()
        with pytest.raises(ChainError):
            load_system(directory)

    def test_corrupt_manifest(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(ChainError):
            load_system(directory)

    def test_unsupported_format(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["format"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ChainError):
            load_system(directory)

    def test_truncated_bodies(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        raw = (directory / "bodies.dat").read_bytes()
        (directory / "bodies.dat").write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ChainError):
            load_system(directory)

    def test_flipped_body_byte(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        raw = bytearray((directory / "bodies.dat").read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        (directory / "bodies.dat").write_bytes(bytes(raw))
        with pytest.raises(ChainError):
            load_system(directory)

    def test_header_body_mismatch(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        raw = bytearray((directory / "headers.dat").read_bytes())
        raw[-1] ^= 0x01
        (directory / "headers.dat").write_bytes(bytes(raw))
        with pytest.raises(ChainError):
            load_system(directory)

    def test_missing_bodies_file(self, small_system, tmp_path):
        directory = self._saved(small_system, tmp_path)
        (directory / "bodies.dat").unlink()
        with pytest.raises(ChainError):
            load_system(directory)

    def test_partial_manifest_is_chain_error(self, small_system, tmp_path):
        """Regression: a manifest cut mid-write must surface as the typed
        ChainError, never as a raw JSONDecodeError traceback."""
        directory = self._saved(small_system, tmp_path)
        raw = (directory / "manifest.json").read_text()
        for cut in (1, len(raw) // 3, len(raw) - 2):
            (directory / "manifest.json").write_text(raw[:cut])
            with pytest.raises(ChainError, match="corrupt chain manifest"):
                load_system(directory)

    def test_save_manifest_is_atomic(self, small_system, tmp_path):
        """save_system goes through a side file + rename: after a save no
        tmp file remains, and a stale tmp from a simulated earlier crash
        is simply replaced rather than trusted."""
        _workload, system = small_system
        directory = tmp_path / "chain"
        (tmp_path).mkdir(exist_ok=True)
        directory.mkdir()
        (directory / "manifest.json.tmp").write_text("{torn")
        save_system(system, directory)
        assert not (directory / "manifest.json.tmp").exists()
        loaded = load_system(directory)
        assert loaded.tip_height == system.tip_height


class TestHeaderFiles:
    def test_roundtrip(self, small_system, tmp_path):
        _workload, system = small_system
        path = tmp_path / "headers.dat"
        save_headers(system.headers(), path)
        loaded = load_headers(path, system.config)
        assert [h.serialize() for h in loaded] == [
            h.serialize() for h in system.headers()
        ]

    def test_light_node_from_file(self, small_system, tmp_path):
        workload, system = small_system
        path = tmp_path / "headers.dat"
        save_headers(system.headers(), path)
        light_node = LightNode(load_headers(path, system.config), system.config)
        full_node = FullNode(system)
        address = workload.probe_addresses["P"]
        history = light_node.query_history(full_node, address)
        assert len(history.transactions) == 4

    def test_unlinked_headers_rejected(self, small_system, tmp_path):
        _workload, system = small_system
        headers = system.headers()
        shuffled = [headers[0], headers[2], headers[1]]
        path = tmp_path / "broken.dat"
        save_headers(shuffled, path)
        with pytest.raises(ChainError):
            load_headers(path, system.config)
