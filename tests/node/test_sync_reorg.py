"""Reorg-aware sync: light-node edge cases and session-level recovery."""

import pytest

from repro.errors import StaleChainError, VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.session import PartialHistory, QuerySession
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

CONFIG = SystemConfig.lvq(bf_bytes=192, segment_len=8)


@pytest.fixture(scope="module")
def forked():
    main = generate_workload(
        WorkloadParams(
            num_blocks=14,
            txs_per_block=5,
            seed=61,
            probes=[ProbeProfile("P", 8, 5)],
        )
    )
    alt = generate_workload(
        WorkloadParams(
            num_blocks=20,
            txs_per_block=5,
            seed=62,
            probes=[ProbeProfile("P", 8, 5)],
        )
    )
    return main, alt


def _node(bodies):
    return FullNode(build_system(bodies, CONFIG))


class TestLightNodeEdgeCases:
    def test_equal_length_fork_refused_as_stale(self, forked):
        main, alt = forked
        ours = _node(main.bodies)
        light = LightNode.from_full_node(ours)
        same_length = _node(main.bodies[:10] + alt.bodies[10:14])
        before = list(light.headers)
        with pytest.raises(StaleChainError):
            light.sync_with_reorg(same_length)
        assert light.headers == before

    def test_stale_chain_error_is_verification_error(self):
        # Existing callers catching VerificationError must keep working.
        assert issubclass(StaleChainError, VerificationError)

    def test_genesis_mismatch_refused(self, forked):
        main, alt = forked
        light = LightNode.from_full_node(_node(main.bodies))
        # Same shape, but an extra transaction in genesis gives the
        # foreign chain a different height-0 block id — and it is longer
        # than ours, so only the genesis check can reject it.
        foreign_bodies = [alt.bodies[0] + [alt.bodies[1][0]]] + alt.bodies[1:]
        foreign = _node(foreign_bodies)
        with pytest.raises(VerificationError, match="genesis"):
            light.sync_with_reorg(foreign)

    def test_reorg_to_genesis_depth(self, forked):
        """A fork diverging at height 0 (every non-genesis block replaced)
        is adopted when longer — there is no checkpoint floor."""
        main, alt = forked
        light = LightNode.from_full_node(_node(main.bodies))
        old_tip = light.tip_height
        deep_fork = _node(main.bodies[:1] + alt.bodies[1:20])
        replaced, appended = light.sync_with_reorg(deep_fork)
        assert replaced == old_tip
        assert light.tip_height == deep_fork.tip_height

    def test_longer_fork_adopted(self, forked):
        main, alt = forked
        light = LightNode.from_full_node(_node(main.bodies))
        longer = _node(main.bodies[:10] + alt.bodies[10:20])
        replaced, appended = light.sync_with_reorg(longer)
        assert (replaced, appended) == (5, 10)
        assert (
            light.headers[-1].block_id()
            == longer.system.chain.header_at(longer.tip_height).block_id()
        )


class TestSessionReorg:
    def test_follows_longer_fork_and_requeries(self, forked):
        main, alt = forked
        node = _node(main.bodies)
        light = LightNode.from_full_node(node)
        session = QuerySession(light, [("n0", node)], track_queries=True)
        address = main.probe_addresses["P"]
        session.query(address)

        node.reorg(9, alt.bodies[10:18])
        replaced, appended = session.sync_with_reorg()
        assert (replaced, appended) == (5, 8)
        assert light.tip_height == node.tip_height
        report = session.last_reorg
        assert report["fork_height"] == 9
        fresh = session.query(address)
        requeried = report["requeried"][address]
        assert [
            (height, tx.txid()) for height, tx in requeried.transactions
        ] == [(height, tx.txid()) for height, tx in fresh.transactions]

    def test_query_outside_replaced_range_not_requeried(self, forked):
        main, alt = forked
        node = _node(main.bodies)
        light = LightNode.from_full_node(node)
        session = QuerySession(light, [("n0", node)], track_queries=True)
        address = main.probe_addresses["P"]
        session.query(address, first_height=1, last_height=5)

        node.reorg(9, alt.bodies[10:18])
        session.sync_with_reorg()
        assert session.last_reorg["requeried"] == {}

    def test_untracked_session_skips_requeries(self, forked):
        main, alt = forked
        node = _node(main.bodies)
        light = LightNode.from_full_node(node)
        session = QuerySession(light, [("n0", node)])
        address = main.probe_addresses["P"]
        session.query(address)
        node.reorg(9, alt.bodies[10:18])
        session.sync_with_reorg()
        assert session.last_reorg["requeried"] == {}

    def test_stale_peer_not_banned(self, forked):
        main, alt = forked
        ahead = _node(main.bodies[:10] + alt.bodies[10:20])
        behind = _node(main.bodies[:10] + alt.bodies[10:13])
        light = LightNode.from_full_node(_node(main.bodies))
        session = QuerySession(
            light, [("behind", behind), ("ahead", ahead)]
        )
        # Make the lagging peer rank first so it is actually attempted.
        session.peers[1].score = 0.5
        replaced, appended = session.sync_with_reorg()
        assert light.tip_height == ahead.tip_height
        assert not session.peers[0].banned
        assert session.peers[0].stats.verification_failures == 0

    def test_lying_peer_banned(self, forked):
        main, alt = forked
        node = _node(main.bodies)
        light = LightNode.from_full_node(node)
        # Foreign genesis = provable malice (see the edge-case test).
        liar = _node([alt.bodies[0] + [alt.bodies[1][0]]] + alt.bodies[1:])
        session = QuerySession(light, [("liar", liar), ("good", node)])
        session.peers[1].score = 0.5
        session.sync_with_reorg()
        assert session.peers[0].banned

    def test_plain_extension_still_works(self, forked):
        main, _alt = forked
        node = _node(main.bodies)
        light = LightNode(
            [h for h in node.system.headers()[:8]], CONFIG
        )
        session = QuerySession(light, [("n0", node)])
        replaced, appended = session.sync_with_reorg()
        assert (replaced, appended) == (0, 7)
        assert session.last_reorg is None


class TestPartialHistoryReorg:
    def test_replaced_suffix_becomes_uncovered(self):
        partial = PartialHistory(
            "addr", 1, 13, [(3, None), (11, None)], [(1, 13)], []
        )
        partial.apply_reorg(9)
        assert partial.covered_ranges == [(1, 9)]
        assert partial.uncovered_ranges == [(10, 13)]
        assert [height for height, _ in partial.transactions] == [3]
        assert not partial.is_complete

    def test_gap_and_suffix_both_reported(self):
        partial = PartialHistory(
            "addr", 1, 12, [], [(1, 3), (6, 12)], [(4, 5)]
        )
        partial.apply_reorg(8)
        assert partial.covered_ranges == [(1, 3), (6, 8)]
        assert partial.uncovered_ranges == [(4, 5), (9, 12)]

    def test_reorg_below_everything_voids_coverage(self):
        partial = PartialHistory("addr", 5, 9, [(6, None)], [(5, 9)], [])
        partial.apply_reorg(2)
        assert partial.covered_ranges == []
        assert partial.uncovered_ranges == [(5, 9)]
        assert partial.transactions == []

    def test_reorg_above_range_is_noop(self):
        partial = PartialHistory("addr", 1, 8, [(2, None)], [(1, 8)], [])
        partial.apply_reorg(8)
        assert partial.covered_ranges == [(1, 8)]
        assert partial.uncovered_ranges == []
        assert partial.is_complete
