"""Chaos soundness gate: faults × attacks × systems, never a wrong answer.

The paper's §V claim under the ROADMAP's operating envelope: whatever a
malicious peer does to a proof *and* whatever a hostile link does to its
bytes, a resilient client either returns a history identical to the
honest baseline or raises a typed :class:`ReproError` — never a wrong
history, never an untyped crash.

Two layers:

* a **seeded scenario matrix** (48 scenarios × 5 system kinds = 240,
  fixed seed) mixing honest/flaky/byzantine peers with randomized fault
  schedules, asserting the soundness invariant on every one and **100%
  availability** on the benign subset (drop/latency-only faults on a
  reachable honest peer — the schedules there are finite scripts, so
  success is structural, not probabilistic);
* a **hypothesis property test** (derandomized, CI-stable) drawing
  arbitrary fault-rule sets composed with arbitrary content attacks.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.node.faults import (
    ByzantineFlakyFullNode,
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
    FlakyFullNode,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.session import Peer, QuerySession, RetryPolicy
from repro.node.transport import LinkModel, SimulatedClock
from repro.query.adversary import (
    ALL_ATTACKS,
    MaliciousFullNode,
    compose_attacks,
    intermittent,
)
from repro.query.config import SystemKind

SCENARIOS_PER_SYSTEM = 48
MATRIX_SEED = 20200704  # ICDCS 2020; fixed for CI determinism

_ATTACK_NAMES = sorted(ALL_ATTACKS)
_PROBES = ("Addr1", "Addr2", "Addr3", "Addr4", "Addr5", "Addr6")

#: Attacks a system kind is *documented* to accept (the paper's Challenge 3:
#: strawman-family verifiers cannot count appearances, so a quiet omission
#: goes through — see ``tests/query/test_adversary.py``).  The chaos matrix
#: asserts "never a wrong answer" only over attacks the verifier under test
#: actually claims to catch; the known gap has its own explicit test.
_KNOWN_GAPS = {
    SystemKind.STRAWMAN: frozenset({"omit_one_transaction"}),
    SystemKind.STRAWMAN_HEADER_BF: frozenset({"omit_one_transaction"}),
}


def _catchable_attacks(kind):
    gaps = _KNOWN_GAPS.get(kind, frozenset())
    return [name for name in _ATTACK_NAMES if name not in gaps]

_baselines = {}


def _baseline(system, address, first, last):
    """The honest answer, computed once per (system, address, range)."""
    key = (system.config.kind, address, first, last)
    if key not in _baselines:
        light = LightNode(system.headers(), system.config)
        history = light.query_history(
            FullNode(system), address, first_height=first, last_height=last
        )
        _baselines[key] = [(h, t.txid()) for h, t in history.transactions]
    return _baselines[key]


def _history_key(history):
    return [(h, t.txid()) for h, t in history.transactions]


def _random_attack(rng, kind):
    names = _catchable_attacks(kind)
    name = rng.choice(names)
    attack = ALL_ATTACKS[name]
    roll = rng.random()
    if roll < 0.15:
        other = ALL_ATTACKS[rng.choice(names)]
        return compose_attacks(attack, other)
    if roll < 0.3:
        return intermittent(attack, rng.randrange(1, 4))
    return attack


def _random_schedule(rng):
    """A fully arbitrary (possibly mangling) fault schedule."""
    rules = []
    for _ in range(rng.randrange(0, 4)):
        kind = rng.choice(list(FaultKind))
        param = {
            FaultKind.DELAY: rng.uniform(0.1, 3.0),
            FaultKind.CORRUPT: rng.randrange(1, 6),
            FaultKind.TRUNCATE: None,
            FaultKind.CLOSE: None,
            FaultKind.DROP: None,
            FaultKind.DUPLICATE: None,
            FaultKind.REORDER: None,
        }[kind]
        rules.append(
            FaultRule(
                kind,
                direction=rng.choice(("both", "to_server", "to_client")),
                probability=rng.uniform(0.1, 0.6),
                param=param,
            )
        )
    return FaultSchedule(rules, seed=rng.randrange(1 << 30))


def _benign_schedule(rng):
    """Drop/latency-only, *finite* drops: can slow a peer, never starve it."""
    rules = []
    dropped = sorted(
        rng.sample(range(8), rng.randrange(0, 4))
    )  # at most 4 early messages ever dropped
    if dropped:
        rules.append(FaultRule(FaultKind.DROP, at_messages=dropped))
    if rng.random() < 0.7:
        rules.append(
            FaultRule(
                FaultKind.DELAY,
                probability=rng.uniform(0.2, 0.8),
                param=rng.uniform(0.05, 0.5),
            )
        )
    return FaultSchedule(rules, seed=rng.randrange(1 << 30))


def _make_scenario(system, index):
    """Deterministically build one chaos scenario from the matrix seed."""
    kind_position = list(SystemKind).index(system.config.kind)
    rng = random.Random(MATRIX_SEED + kind_position * 10_000 + index)
    clock = SimulatedClock()
    benign = index % 2 == 0  # half the matrix carries the availability gate

    def link_factory(schedule):
        link = (
            LinkModel.home_broadband() if rng.random() < 0.5 else None
        )
        return lambda: FaultyTransport(
            schedule=schedule, clock=clock, link=link
        )

    peers = []
    if benign:
        # Guaranteed-reachable honest peer: benign, finite faults only.
        peers.append(
            Peer(
                "honest0",
                FullNode(system),
                transport_factory=link_factory(_benign_schedule(rng)),
            )
        )
    num_extra = rng.randrange(0, 3) if benign else rng.randrange(1, 4)
    for extra in range(num_extra):
        style = rng.random()
        label = f"extra{extra}"
        if style < 0.3:
            node = MaliciousFullNode(system, _random_attack(rng, system.config.kind))
            peers.append(Peer(label, node))
        elif style < 0.5:
            node = ByzantineFlakyFullNode(
                system,
                _random_attack(rng, system.config.kind),
                failure_rate=rng.uniform(0.0, 0.5),
                attack_rate=rng.uniform(0.3, 1.0),
                seed=rng.randrange(1 << 30),
            )
            peers.append(Peer(label, node))
        elif style < 0.7:
            node = FlakyFullNode(
                system,
                failure_rate=rng.uniform(0.2, 0.9),
                seed=rng.randrange(1 << 30),
            )
            peers.append(Peer(label, node))
        else:
            peers.append(
                Peer(
                    label,
                    FullNode(system),
                    transport_factory=link_factory(_random_schedule(rng)),
                )
            )
    rng.shuffle(peers)

    address_name = rng.choice(_PROBES)
    tip = system.tip_height
    if rng.random() < 0.3 and tip > 4:
        first = rng.randrange(1, tip - 2)
        last = rng.randrange(first, tip + 1)
    else:
        first, last = 1, tip

    session = QuerySession(
        LightNode(system.headers(), system.config),
        peers,
        clock=clock,
        request_timeout=5.0,
        retry=RetryPolicy(
            max_rounds=6, base_delay=0.05, max_delay=1.0, jitter=0.25
        ),
        quarantine_base=0.05,
        seed=rng.randrange(1 << 30),
    )
    return session, address_name, first, last, benign


@pytest.mark.parametrize("index", range(SCENARIOS_PER_SYSTEM))
def test_chaos_soundness(any_system, probe_addresses, index):
    """THE gate: equal-to-baseline or typed error; benign ⇒ available."""
    session, address_name, first, last, benign = _make_scenario(
        any_system, index
    )
    address = probe_addresses[address_name]
    expected = _baseline(any_system, address, first, last)
    try:
        history = session.query(address, first_height=first, last_height=last)
    except ReproError:
        # Denied, with a typed error — allowed, unless this scenario
        # guarantees a reachable honest peer behind benign-only faults.
        assert not benign, (
            f"availability violated: benign scenario {index} on "
            f"{any_system.config.kind.value} failed"
        )
    except BaseException as error:  # noqa: BLE001 - the invariant itself
        pytest.fail(
            f"non-ReproError escaped under chaos: {type(error).__name__}: "
            f"{error}"
        )
    else:
        assert _history_key(history) == expected, (
            f"WRONG HISTORY under chaos on scenario {index} "
            f"({any_system.config.kind.value})"
        )


def test_chaos_matrix_size():
    """The acceptance criterion asks for >= 200 generated scenarios."""
    assert SCENARIOS_PER_SYSTEM * len(list(SystemKind)) >= 200


# ---------------------------------------------------------------------------
# hypothesis property layer


_fault_rule = st.builds(
    FaultRule,
    kind=st.sampled_from(list(FaultKind)),
    direction=st.sampled_from(["both", "to_server", "to_client"]),
    probability=st.floats(min_value=0.05, max_value=0.7),
    param=st.one_of(st.none(), st.floats(min_value=0.1, max_value=4.0)),
)


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rules=st.lists(_fault_rule, max_size=4),
    attack_name=st.sampled_from(_ATTACK_NAMES),
    schedule_seed=st.integers(min_value=0, max_value=2**20),
    use_liar_link=st.booleans(),
    address_name=st.sampled_from(_PROBES),
)
def test_chaos_property(
    lvq_system,
    probe_addresses,
    rules,
    attack_name,
    schedule_seed,
    use_liar_link,
    address_name,
):
    """∀ fault schedule ∘ attack: identical history or ReproError."""
    address = probe_addresses[address_name]
    expected = _baseline(
        lvq_system, address, 1, lvq_system.tip_height
    )
    clock = SimulatedClock()
    schedule = FaultSchedule(rules, seed=schedule_seed)
    liar = MaliciousFullNode(lvq_system, ALL_ATTACKS[attack_name])
    liar_peer = (
        Peer(
            "liar",
            liar,
            transport_factory=lambda: FaultyTransport(
                schedule=schedule, clock=clock
            ),
        )
        if use_liar_link
        else Peer("liar", liar)
    )
    honest_peer = (
        Peer("honest", FullNode(lvq_system))
        if use_liar_link
        else Peer(
            "honest",
            FullNode(lvq_system),
            transport_factory=lambda: FaultyTransport(
                schedule=schedule, clock=clock
            ),
        )
    )
    session = QuerySession(
        LightNode(lvq_system.headers(), lvq_system.config),
        [liar_peer, honest_peer],
        clock=clock,
        request_timeout=5.0,
        retry=RetryPolicy(max_rounds=3, base_delay=0.05, max_delay=0.5),
        quarantine_base=0.05,
        seed=schedule_seed,
    )
    try:
        history = session.query(address)
    except ReproError:
        pass  # denied, typed — allowed
    else:
        assert _history_key(history) == expected
