"""The worker-pool query server: dispatch, backpressure, stats, and the
queries-racing-appends stress test.

The stress test is the concurrency deliverable's acceptance check: many
client threads query (hot and distinct addresses) while another thread
extends the chain with ``append_block``; every answer must verify
against the header prefix of the tip it was answered at — i.e. an
answer is never assembled over a half-appended block — and must carry
exactly the ground-truth history for its range.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueryError, ServerOverloadedError
from repro.node.full_node import FullNode
from repro.node.messages import (
    BatchQueryRequest,
    HeadersRequest,
    HeadersResponse,
    QueryRequest,
    QueryResponse,
)
from repro.node.server import QueryServer
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.verifier import verify_result
from repro.workload.generator import WorkloadParams, generate_workload

NUM_BLOCKS = 22
BUILT_BLOCKS = 17  # bodies beyond this index are appended by tests
CONFIG = SystemConfig.lvq(bf_bytes=192, segment_len=8)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=6, seed=23)
    )


@pytest.fixture()
def system(workload):
    return build_system(workload.bodies[:BUILT_BLOCKS], CONFIG)


@pytest.fixture()
def server(system):
    with QueryServer(FullNode(system), num_workers=4, max_pending=32) as srv:
        yield srv


def _result_of(response_bytes: bytes):
    return QueryResponse.deserialize(response_bytes, CONFIG).result


class _GatedFullNode(FullNode):
    """Honest node whose query handling blocks until the gate opens."""

    def __init__(self, system, gate: threading.Event) -> None:
        super().__init__(system)
        self._gate = gate

    def handle_query(self, payload: bytes) -> bytes:
        self._gate.wait()
        return super().handle_query(payload)


class TestDispatchAndServe:
    def test_query_roundtrip_verifies(self, server, system, workload):
        address = workload.probe_addresses["Addr3"]
        result = _result_of(server.query(address))
        history = verify_result(result, system.headers(), CONFIG, address)
        expected = [
            (height, tx.txid())
            for height, tx in workload.history_of(address)
            if 1 <= height <= BUILT_BLOCKS - 1
        ]
        assert [
            (height, tx.txid()) for height, tx in history.transactions
        ] == expected

    def test_headers_frame_dispatches(self, server, system):
        response_bytes = server.submit(
            HeadersRequest(0).serialize()
        ).result(5)
        response = HeadersResponse.deserialize(
            response_bytes,
            CONFIG.header_extension_kind,
            CONFIG.header_bloom_bytes,
        )
        assert len(response.headers) == BUILT_BLOCKS

    def test_batch_frame_dispatches(self, server, workload):
        request = BatchQueryRequest(
            [workload.probe_addresses["Addr3"], workload.probe_addresses["Addr4"]]
        )
        response = server.submit(request.serialize()).result(5)
        assert response  # decoded/verified elsewhere; dispatch is the point

    def test_unknown_tag_and_empty_payload_rejected(self, server):
        with pytest.raises(QueryError):
            server.submit(b"")
        with pytest.raises(QueryError):
            server.submit(bytes([99]) + b"junk")

    def test_handler_errors_flow_through_future(self, server):
        future = server.submit(QueryRequest("absent", 5, 2).serialize())
        with pytest.raises(QueryError):
            future.result(5)
        assert server.stats()["failed"] >= 1

    def test_identical_queries_hit_response_cache(self, server, workload):
        address = workload.probe_addresses["Addr4"]
        first = server.query(address)
        second = server.query(address)
        assert first == second
        assert server.stats()["caches"]["responses"]["hits"] >= 1


class TestBatchValidation:
    """Satellite: the batch RPC validates addresses like the single path."""

    def test_empty_address_in_batch_rejected(self, system, workload):
        node = FullNode(system)
        payload = BatchQueryRequest(
            [workload.probe_addresses["Addr3"], ""]
        ).serialize()
        with pytest.raises(QueryError, match="empty address"):
            node.handle_batch_query(payload)

    def test_all_empty_batch_rejected(self, system):
        node = FullNode(system)
        payload = BatchQueryRequest([""]).serialize()
        with pytest.raises(QueryError, match="empty address"):
            node.handle_batch_query(payload)

    def test_answer_batch_query_rejects_empty_addresses(self, system):
        from repro.query.batch import answer_batch_query

        with pytest.raises(QueryError):
            answer_batch_query(system, [])
        with pytest.raises(QueryError, match="empty address"):
            answer_batch_query(system, ["addr", ""])


class TestBackpressure:
    def test_overload_rejects_with_typed_error(self, system, workload):
        gate = threading.Event()
        node = _GatedFullNode(system, gate)
        address = workload.probe_addresses["Addr3"]
        server = QueryServer(node, num_workers=1, max_pending=2)
        try:
            accepted = []
            overloaded = None
            for _ in range(6):
                try:
                    accepted.append(server.submit_query(address))
                except ServerOverloadedError as exc:
                    overloaded = exc
                    break
                time.sleep(0.02)  # let the worker pull the first item
            assert overloaded is not None, "queue bound never engaged"
            # capacity = 1 in flight + max_pending queued
            assert len(accepted) <= 3
            assert overloaded.max_pending == 2
            assert overloaded.details()["kind"] == "ServerOverloadedError"
            assert server.stats()["rejected"] == 1

            gate.set()  # drain: every accepted request must still finish
            for future in accepted:
                assert future.result(5)
        finally:
            gate.set()
            server.close()

    def test_rejection_is_immediate_not_blocking(self, system, workload):
        gate = threading.Event()
        server = QueryServer(
            _GatedFullNode(system, gate), num_workers=1, max_pending=1
        )
        address = workload.probe_addresses["Addr4"]
        try:
            with pytest.raises(ServerOverloadedError):
                start = time.perf_counter()
                for _ in range(4):
                    server.submit_query(address)
                    time.sleep(0.02)
            assert time.perf_counter() - start < 2.0
        finally:
            gate.set()
            server.close()


class TestLifecycle:
    def test_close_drains_backlog(self, system, workload):
        node = FullNode(system)
        server = QueryServer(node, num_workers=2, max_pending=16)
        futures = [
            server.submit_query(address)
            for address in workload.probe_addresses.values()
        ]
        server.close(drain=True)
        for future in futures:
            assert future.result(5)
        with pytest.raises(QueryError, match="closed"):
            server.submit_query("anything")

    def test_close_without_drain_fails_pending(self, system, workload):
        gate = threading.Event()
        server = QueryServer(
            _GatedFullNode(system, gate), num_workers=1, max_pending=8
        )
        address = workload.probe_addresses["Addr3"]
        futures = [server.submit_query(address) for _ in range(4)]
        time.sleep(0.05)  # worker blocks on the first request
        gate_opened_at = None
        server_closer = threading.Thread(
            target=lambda: server.close(drain=False)
        )
        server_closer.start()
        time.sleep(0.05)
        gate.set()
        server_closer.join(5)
        outcomes = []
        for future in futures:
            try:
                outcomes.append(("ok", future.result(5)))
            except QueryError as exc:
                outcomes.append(("err", str(exc)))
        assert any(kind == "err" for kind, _ in outcomes)

    def test_drain_reports_idle(self, server, workload):
        server.query(workload.probe_addresses["Addr4"])
        assert server.drain(timeout=5)

    def test_stats_shape(self, server, workload):
        server.query(workload.probe_addresses["Addr3"])
        stats = server.stats()
        assert stats["workers"] == 4
        assert stats["completed"] >= 1
        assert stats["in_flight"] == 0
        assert set(stats["latency"]) == {
            "count", "mean_ms", "p50_ms", "p99_ms", "max_ms",
        }
        assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"] >= 0
        assert "queue_wait" in stats and "service" in stats
        assert "responses" in stats["caches"]
        assert "segments" in stats["caches"]


class TestConcurrentServingStress:
    """Many clients query while the chain grows underneath them."""

    def test_queries_racing_appends_always_verify(self, workload):
        system = build_system(workload.bodies[:BUILT_BLOCKS], CONFIG)
        node = FullNode(system)
        # Ground truth over the *full* final chain, indexed by address.
        addresses = list(workload.probe_addresses.values())[2:] + [
            sorted(workload.bodies[3][0].addresses())[0],
            sorted(workload.bodies[7][0].addresses())[0],
        ]
        truth = {
            address: [
                (height, tx.txid())
                for height, tx in workload.history_of(address)
            ]
            for address in addresses
        }
        failures = []
        header_lock = threading.Lock()
        header_bytes = [h.serialize() for h in system.headers()]

        def appender():
            for body in workload.bodies[BUILT_BLOCKS:]:
                time.sleep(0.05)
                system.append_block(body)
                with header_lock:
                    del header_bytes[:]
                    header_bytes.extend(
                        h.serialize() for h in system.headers()
                    )

        def client(worker: int):
            # Each worker hammers a hot shared address and its own one.
            own = addresses[worker % len(addresses)]
            hot = addresses[0]
            for i in range(10):
                address = hot if i % 2 == 0 else own
                try:
                    result = _result_of(server.query(address, timeout=30))
                    # Headers the client "held at request time": the
                    # prefix of the final chain up to the answered tip —
                    # identical bytes, because the chain is append-only.
                    with header_lock:
                        known = len(header_bytes)
                    assert result.tip_height < max(known, BUILT_BLOCKS) + 5
                    headers = [
                        h
                        for h in system.chain.headers()[: result.tip_height + 1]
                    ]
                    history = verify_result(result, headers, CONFIG, address)
                    got = [
                        (height, tx.txid())
                        for height, tx in history.transactions
                    ]
                    expected = [
                        pair
                        for pair in truth[address]
                        if 1 <= pair[0] <= result.last_height
                    ]
                    if got != expected:
                        failures.append(
                            f"{address} at tip {result.tip_height}: "
                            f"{len(got)} txs != {len(expected)} expected"
                        )
                except Exception as exc:  # noqa: BLE001 — collect, don't die
                    failures.append(f"worker {worker}: {type(exc).__name__}: {exc}")

        with QueryServer(node, num_workers=6, max_pending=128) as server:
            grower = threading.Thread(target=appender)
            clients = [
                threading.Thread(target=client, args=(w,)) for w in range(6)
            ]
            grower.start()
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            grower.join()

        assert not failures, failures[:5]
        # bodies run 0..NUM_BLOCKS (genesis extra), so the final tip is
        # NUM_BLOCKS once every held-back body has been appended.
        assert system.tip_height == NUM_BLOCKS

    def test_coalescing_under_thundering_herd(self, workload):
        """N concurrent identical cold queries → exactly one proof build."""
        system = build_system(workload.bodies[:BUILT_BLOCKS], CONFIG)
        node = FullNode(system)
        address = workload.probe_addresses["Addr6"]
        with QueryServer(node, num_workers=8, max_pending=64) as server:
            futures = [server.submit_query(address) for _ in range(24)]
            payloads = {future.result(30) for future in futures}
        assert len(payloads) == 1
        stats = node.response_cache.stats()
        assert stats["flights"] == 1
        assert stats["coalesced"] + stats["hits"] == 23
