"""Tests for the multi-peer light client: one honest peer suffices."""

import pytest

from repro.errors import NoHonestPeerError, VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.adversary import (
    ALL_ATTACKS,
    MaliciousFullNode,
    drop_block_resolution,
    omit_one_transaction,
    truncate_blocks,
)


@pytest.fixture()
def light(lvq_system):
    return LightNode(lvq_system.headers(), lvq_system.config)


class TestQueryAny:
    def test_single_honest_peer(self, lvq_system, light, probe_addresses):
        history = light.query_history_any(
            [FullNode(lvq_system)], probe_addresses["Addr5"]
        )
        assert history.transactions

    def test_honest_peer_behind_liars(
        self, workload, lvq_system, light, probe_addresses
    ):
        """Two malicious peers first; the honest third one wins."""
        address = probe_addresses["Addr6"]
        peers = [
            MaliciousFullNode(lvq_system, omit_one_transaction),
            MaliciousFullNode(lvq_system, drop_block_resolution),
            FullNode(lvq_system),
        ]
        history = light.query_history_any(peers, address)
        truth = workload.history_of(address)
        assert [(h, t.txid()) for h, t in history.transactions] == [
            (h, t.txid()) for h, t in truth
        ]

    def test_all_malicious_raises_with_reasons(
        self, lvq_system, light, probe_addresses
    ):
        address = probe_addresses["Addr6"]
        peers = [
            MaliciousFullNode(lvq_system, omit_one_transaction),
            MaliciousFullNode(lvq_system, truncate_blocks),
        ]
        with pytest.raises(NoHonestPeerError) as excinfo:
            light.query_history_any(peers, address)
        assert set(excinfo.value.reasons) == {"peer0", "peer1"}
        for reason in excinfo.value.reasons.values():
            assert isinstance(reason, Exception)

    def test_no_peers_rejected(self, light, probe_addresses):
        with pytest.raises(VerificationError):
            light.query_history_any([], probe_addresses["Addr1"])

    def test_range_queries_supported(
        self, workload, lvq_system, light, probe_addresses
    ):
        address = probe_addresses["Addr5"]
        peers = [
            MaliciousFullNode(lvq_system, drop_block_resolution),
            FullNode(lvq_system),
        ]
        history = light.query_history_any(
            peers, address, first_height=10, last_height=30
        )
        truth = [
            (h, t.txid())
            for h, t in workload.history_of(address)
            if 10 <= h <= 30
        ]
        assert [(h, t.txid()) for h, t in history.transactions] == truth

    def test_every_attack_survivable_with_one_honest_peer(
        self, workload, lvq_system, light, probe_addresses
    ):
        address = probe_addresses["Addr6"]
        truth = [(h, t.txid()) for h, t in workload.history_of(address)]
        peers = [
            MaliciousFullNode(lvq_system, attack)
            for attack in ALL_ATTACKS.values()
        ] + [FullNode(lvq_system)]
        history = light.query_history_any(peers, address)
        assert [(h, t.txid()) for h, t in history.transactions] == truth
