"""Tests for the multi-peer light client: one honest peer suffices."""

import pytest

from repro.errors import NoHonestPeerError, VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.adversary import (
    ALL_ATTACKS,
    MaliciousFullNode,
    drop_block_resolution,
    omit_one_transaction,
    truncate_blocks,
)


@pytest.fixture()
def light(lvq_system):
    return LightNode(lvq_system.headers(), lvq_system.config)


class TestQueryAny:
    def test_single_honest_peer(self, lvq_system, light, probe_addresses):
        history = light.query_history_any(
            [FullNode(lvq_system)], probe_addresses["Addr5"]
        )
        assert history.transactions

    def test_honest_peer_behind_liars(
        self, workload, lvq_system, light, probe_addresses
    ):
        """Two malicious peers first; the honest third one wins."""
        address = probe_addresses["Addr6"]
        peers = [
            MaliciousFullNode(lvq_system, omit_one_transaction),
            MaliciousFullNode(lvq_system, drop_block_resolution),
            FullNode(lvq_system),
        ]
        history = light.query_history_any(peers, address)
        truth = workload.history_of(address)
        assert [(h, t.txid()) for h, t in history.transactions] == [
            (h, t.txid()) for h, t in truth
        ]

    def test_all_malicious_raises_with_reasons(
        self, lvq_system, light, probe_addresses
    ):
        address = probe_addresses["Addr6"]
        peers = [
            MaliciousFullNode(lvq_system, omit_one_transaction),
            MaliciousFullNode(lvq_system, truncate_blocks),
        ]
        with pytest.raises(NoHonestPeerError) as excinfo:
            light.query_history_any(peers, address)
        assert set(excinfo.value.reasons) == {"peer0", "peer1"}
        for reason in excinfo.value.reasons.values():
            assert isinstance(reason, Exception)

    def test_no_peers_rejected(self, light, probe_addresses):
        with pytest.raises(VerificationError):
            light.query_history_any([], probe_addresses["Addr1"])

    def test_range_queries_supported(
        self, workload, lvq_system, light, probe_addresses
    ):
        address = probe_addresses["Addr5"]
        peers = [
            MaliciousFullNode(lvq_system, drop_block_resolution),
            FullNode(lvq_system),
        ]
        history = light.query_history_any(
            peers, address, first_height=10, last_height=30
        )
        truth = [
            (h, t.txid())
            for h, t in workload.history_of(address)
            if 10 <= h <= 30
        ]
        assert [(h, t.txid()) for h, t in history.transactions] == truth

    def test_every_attack_survivable_with_one_honest_peer(
        self, workload, lvq_system, light, probe_addresses
    ):
        address = probe_addresses["Addr6"]
        truth = [(h, t.txid()) for h, t in workload.history_of(address)]
        peers = [
            MaliciousFullNode(lvq_system, attack)
            for attack in ALL_ATTACKS.values()
        ] + [FullNode(lvq_system)]
        history = light.query_history_any(peers, address)
        assert [(h, t.txid()) for h, t in history.transactions] == truth


class TestMultiPeerReport:
    def test_winner_and_stats_reported(self, lvq_system, light, probe_addresses):
        """Per-peer transports and labels: the report names the winner
        and keeps byte accounting for losers too."""
        from repro.node.transport import InProcessTransport

        address = probe_addresses["Addr5"]
        peers = [
            MaliciousFullNode(lvq_system, omit_one_transaction),
            FullNode(lvq_system),
        ]
        transports = [InProcessTransport(), InProcessTransport()]
        history = light.query_history_any(
            peers,
            address,
            transports=transports,
            labels=["liar", "honest"],
        )
        assert history.transactions
        report = light.last_query_report
        assert report.winner == "honest"
        assert set(report.stats) == {"liar", "honest"}
        # The liar's traffic is no longer thrown away.
        assert report.stats["liar"].total_bytes > 0
        assert report.stats["honest"].total_bytes > 0
        assert report.total_stats().total_bytes == sum(
            t.stats.total_bytes for t in transports
        )
        assert set(report.reasons) == {"liar"}

    def test_labels_in_failure_reasons(self, lvq_system, light, probe_addresses):
        peers = [
            MaliciousFullNode(lvq_system, omit_one_transaction),
            MaliciousFullNode(lvq_system, truncate_blocks),
        ]
        with pytest.raises(NoHonestPeerError) as excinfo:
            light.query_history_any(
                peers, probe_addresses["Addr6"], labels=["alpha", "beta"]
            )
        assert set(excinfo.value.reasons) == {"alpha", "beta"}
        report = light.last_query_report
        assert report.winner is None
        assert set(report.stats) == {"alpha", "beta"}

    def test_mismatched_transports_rejected(
        self, lvq_system, light, probe_addresses
    ):
        from repro.node.transport import InProcessTransport

        with pytest.raises(VerificationError):
            light.query_history_any(
                [FullNode(lvq_system)],
                probe_addresses["Addr5"],
                transports=[InProcessTransport(), InProcessTransport()],
            )
        with pytest.raises(VerificationError):
            light.query_history_any(
                [FullNode(lvq_system)],
                probe_addresses["Addr5"],
                labels=["a", "b"],
            )

    def test_faulty_peer_link_falls_through(
        self, lvq_system, light, probe_addresses
    ):
        """A dead link on the first peer is just another rejection
        reason; the second peer answers."""
        from repro.node.transport import InProcessTransport

        peers = [FullNode(lvq_system), FullNode(lvq_system)]
        transports = [
            InProcessTransport(byte_budget=10),  # dies on the request
            InProcessTransport(),
        ]
        history = light.query_history_any(
            peers, probe_addresses["Addr5"], transports=transports
        )
        assert history.transactions
        report = light.last_query_report
        assert report.winner == "peer1"
        assert "peer0" in report.reasons
