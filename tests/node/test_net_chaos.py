"""Chaos over real sockets: the §V gate must survive actual TCP.

Three escalating layers:

* **socket-layer fault behaviors** — each :class:`SocketFaultInjector`
  fault kind (reset, mid-frame stall, partial write + FIN, corruption,
  swallowing, duplication, reordering), injected between a real client
  and a real server, must surface as the *typed* error the in-process
  chaos machinery produces — never a wrong answer, never a raw crash;
* **the PR 2 chaos matrix over loopback TCP** — the *same* seeded
  scenarios as ``test_chaos.py`` (same :func:`_make_scenario`, same
  ``FaultyTransport`` wrappers and schedules), with every peer's node
  swapped for a :class:`RemoteFullNode` talking to a real
  :class:`NetServer`.  FaultyTransport composes with the socket
  transport: it mangles request bytes *before* they cross the wire and
  response bytes *after* they return, so both chaos layers are active
  at once.  The soundness invariant and the benign-subset availability
  gate must hold unchanged;
* **kill-the-server-mid-request** — a server is hard-killed (RST to
  every live connection) under concurrent client load and then
  restarted on the same port; every answer any client accepts must
  equal the honest baseline (100% of survivors verify, zero
  accepted-but-unverified), and clients must recover after the restart.

A stride of the matrix runs by default to keep tier-1 fast; set
``LVQ_NET_CHAOS_FULL=1`` (the CI network-smoke job does) for all
scenarios.
"""

import os
import random
import threading
import time

import pytest

from test_chaos import (
    SCENARIOS_PER_SYSTEM,
    _baseline,
    _history_key,
    _make_scenario,
)

from repro.errors import (
    EncodingError,
    ReproError,
    RequestTimeoutError,
    TransportError,
)
from repro.node.faults import FaultKind, FaultRule, FaultSchedule
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import QueryRequest
from repro.node.net import EventLoopThread, NetServer, SocketFaultInjector
from repro.node.netclient import ConnectionPool, RemoteFullNode
from repro.node.session import Peer, QuerySession, RetryPolicy

_FULL_MATRIX = os.environ.get("LVQ_NET_CHAOS_FULL") == "1"
#: Stride 3 keeps a third of the matrix in tier-1 while hitting both the
#: benign (even-index) and adversarial (odd-index) halves.
_MATRIX_INDICES = (
    range(SCENARIOS_PER_SYSTEM)
    if _FULL_MATRIX
    else range(0, SCENARIOS_PER_SYSTEM, 3)
)


@pytest.fixture(scope="module")
def loop_thread():
    thread = EventLoopThread("test-net-chaos-loop")
    yield thread
    thread.stop()


@pytest.fixture()
def lvq_full_node(lvq_system):
    return FullNode(lvq_system)


def _schedule(kind, param=None, direction="both", at=(0,)):
    return FaultSchedule(
        [FaultRule(kind, direction=direction, at_messages=at, param=param)],
        seed=11,
    )


def _query_through_injector(
    lvq_system, full_node, address, schedule, loop_thread, request_timeout=1.0
):
    """One verified query routed client → injector → server."""
    light = LightNode.from_full_node(full_node)
    with NetServer(full_node, loop_thread=loop_thread) as server:
        with SocketFaultInjector(
            server.address, schedule, loop_thread=loop_thread
        ) as injector:
            remote = RemoteFullNode(
                injector.address,
                size=1,
                request_timeout=request_timeout,
                backoff_base=0.01,
                backoff_max=0.05,
            )
            try:
                return light.query_history(remote, address)
            finally:
                remote.close()


class TestSocketFaultBehaviors:
    """Each fault kind at the socket layer ⇒ the right typed outcome."""

    def test_delay_is_survivable(
        self, lvq_system, lvq_full_node, probe_addresses, loop_thread
    ):
        history = _query_through_injector(
            lvq_system,
            lvq_full_node,
            probe_addresses["Addr4"],
            _schedule(FaultKind.DELAY, param=5.0),  # 50ms real stall
            loop_thread,
            request_timeout=5.0,
        )
        assert _history_key(history) == _baseline(
            lvq_system, probe_addresses["Addr4"], 1, lvq_system.tip_height
        )

    def test_drop_times_out(
        self, lvq_system, lvq_full_node, probe_addresses, loop_thread
    ):
        with pytest.raises(RequestTimeoutError):
            _query_through_injector(
                lvq_system,
                lvq_full_node,
                probe_addresses["Addr4"],
                _schedule(FaultKind.DROP, at=(0, 1, 2, 3)),
                loop_thread,
                request_timeout=0.3,
            )

    def test_reset_is_a_transport_error(
        self, lvq_system, lvq_full_node, probe_addresses, loop_thread
    ):
        with pytest.raises(TransportError) as caught:
            _query_through_injector(
                lvq_system,
                lvq_full_node,
                probe_addresses["Addr4"],
                _schedule(FaultKind.CLOSE, param=3, at=(0, 1, 2, 3)),
                loop_thread,
            )
        assert not isinstance(caught.value, RequestTimeoutError)

    def test_truncation_is_typed(
        self, lvq_system, lvq_full_node, probe_addresses, loop_thread
    ):
        # Header claims the full frame, a prefix arrives, then FIN: the
        # client must fail *typed* (EOF mid-frame), not hang or crash.
        with pytest.raises((TransportError, EncodingError)):
            _query_through_injector(
                lvq_system,
                lvq_full_node,
                probe_addresses["Addr4"],
                _schedule(
                    FaultKind.TRUNCATE,
                    param=5,
                    direction="to_client",
                    at=(0, 1, 2, 3),
                ),
                loop_thread,
            )

    def test_corruption_never_yields_a_wrong_answer(
        self, lvq_system, lvq_full_node, probe_addresses, loop_thread
    ):
        address = probe_addresses["Addr5"]
        expected = _baseline(lvq_system, address, 1, lvq_system.tip_height)
        for seed in range(6):
            schedule = FaultSchedule(
                [
                    FaultRule(
                        FaultKind.CORRUPT,
                        direction="to_client",
                        at_messages=(0, 1, 2, 3),
                        param=3,
                    )
                ],
                seed=seed,
            )
            try:
                history = _query_through_injector(
                    lvq_system, lvq_full_node, address, schedule, loop_thread
                )
            except ReproError:
                continue  # denied, typed: allowed
            assert _history_key(history) == expected, (
                f"corrupted bytes produced a WRONG answer (seed {seed})"
            )

    def test_duplicate_frames_cannot_poison_later_requests(
        self, lvq_full_node, probe_addresses, loop_thread
    ):
        # A duplicated response leaves stray bytes on the connection; the
        # pool's health peek must evict it before the next request.
        request = QueryRequest(probe_addresses["Addr4"]).serialize()
        with NetServer(lvq_full_node, loop_thread=loop_thread) as server:
            with SocketFaultInjector(
                server.address,
                _schedule(FaultKind.DUPLICATE, direction="to_client", at=(1,)),
                loop_thread=loop_thread,
            ) as injector:
                pool = ConnectionPool(injector.address, size=1)
                try:
                    first = pool.request(request)
                    # Let the duplicated frame actually land in the
                    # client socket buffer before the next acquisition.
                    time.sleep(0.25)
                    second = pool.request(request)
                    assert first == second
                    assert pool.stats["health_evictions"] >= 1
                finally:
                    pool.close()

    def test_reorder_never_yields_a_wrong_answer(
        self, lvq_system, lvq_full_node, probe_addresses, loop_thread
    ):
        address = probe_addresses["Addr4"]
        expected = _baseline(lvq_system, address, 1, lvq_system.tip_height)
        schedule = _schedule(
            FaultKind.REORDER, direction="to_client", at=(1, 3)
        )
        try:
            history = _query_through_injector(
                lvq_system,
                lvq_full_node,
                address,
                schedule,
                loop_thread,
                request_timeout=0.5,
            )
        except ReproError:
            return  # denied, typed: allowed
        assert _history_key(history) == expected

    def test_injector_counts_in_shared_schedule(
        self, lvq_full_node, probe_addresses, loop_thread
    ):
        schedule = _schedule(FaultKind.DROP, at=(0,))
        with NetServer(lvq_full_node, loop_thread=loop_thread) as server:
            with SocketFaultInjector(
                server.address, schedule, loop_thread=loop_thread
            ) as injector:
                pool = ConnectionPool(injector.address, request_timeout=0.3)
                try:
                    with pytest.raises(TransportError):
                        pool.request(
                            QueryRequest(probe_addresses["Addr4"]).serialize()
                        )
                finally:
                    pool.close()
        assert schedule.fault_counts.get("drop") == 1, (
            "socket-layer faults must count in the shared FaultSchedule"
        )


# ---------------------------------------------------------------------------
# the PR 2 chaos matrix, over real loopback TCP


def _socketify(session, loop_thread):
    """Swap every peer's node for the same node behind a real socket.

    The peer's ``transport_factory`` (the FaultyTransport wrapper with
    its schedule) is untouched — in-process chaos composes with the TCP
    transport underneath it.
    """
    servers, remotes = [], []
    for peer in session.peers:
        server = NetServer(
            peer.node,
            loop_thread=loop_thread,
            idle_timeout=30.0,
            read_timeout=10.0,
        )
        server.start()
        remote = RemoteFullNode(
            server.address,
            size=2,
            request_timeout=10.0,
            backoff_base=0.005,
            backoff_max=0.05,
        )
        peer.node = remote
        servers.append(server)
        remotes.append(remote)
    return servers, remotes


def _unsocketify(servers, remotes):
    for remote in remotes:
        remote.close()
    for server in servers:
        server.close(drain=False)


@pytest.mark.parametrize("index", _MATRIX_INDICES)
def test_socket_chaos_soundness(any_system, probe_addresses, index, loop_thread):
    """The test_chaos gate, verbatim, with every peer behind real TCP."""
    session, address_name, first, last, benign = _make_scenario(
        any_system, index
    )
    address = probe_addresses[address_name]
    expected = _baseline(any_system, address, first, last)
    servers, remotes = _socketify(session, loop_thread)
    try:
        history = session.query(address, first_height=first, last_height=last)
    except ReproError:
        assert not benign, (
            f"availability violated over TCP: benign scenario {index} on "
            f"{any_system.config.kind.value} failed"
        )
    except BaseException as error:  # noqa: BLE001 - the invariant itself
        pytest.fail(
            f"non-ReproError escaped socket chaos: {type(error).__name__}: "
            f"{error}"
        )
    else:
        assert _history_key(history) == expected, (
            f"WRONG HISTORY over TCP on scenario {index} "
            f"({any_system.config.kind.value})"
        )
    finally:
        _unsocketify(servers, remotes)


# ---------------------------------------------------------------------------
# kill the server mid-request


def test_kill_server_mid_request_no_unverified_answers(
    lvq_system, probe_addresses, loop_thread
):
    """Hard-kill under load, restart, and audit every accepted answer.

    The LVQ promise under crash-recovery: a killed server can fail
    requests (typed) and delay clients, but no client may ever *accept*
    an answer that does not verify — so every success, before, during,
    or after the kill, must equal the honest baseline.
    """
    full_node = FullNode(lvq_system)
    names = ("Addr3", "Addr4", "Addr5", "Addr6")
    baselines = {
        probe_addresses[name]: _baseline(
            lvq_system, probe_addresses[name], 1, lvq_system.tip_height
        )
        for name in names
    }

    server = NetServer(full_node, loop_thread=loop_thread)
    server.start()
    address_tuple = server.address
    state = {"server": server}

    accepted = []  # (address, history_key) for every accepted answer
    errors = []
    wrong = []
    stop = threading.Event()

    def client(worker_index):
        rng = random.Random(worker_index)
        light = LightNode.from_full_node(full_node)
        remote = RemoteFullNode(
            address_tuple,
            size=1,
            request_timeout=2.0,
            backoff_base=0.005,
            backoff_max=0.05,
            seed=worker_index,
        )
        session = QuerySession(
            light,
            [Peer(f"srv{worker_index}", remote)],
            request_timeout=5.0,
            retry=RetryPolicy(max_rounds=4, base_delay=0.01, max_delay=0.05),
            seed=worker_index,
        )
        try:
            while not stop.is_set():
                name = names[rng.randrange(len(names))]
                address = probe_addresses[name]
                try:
                    history = session.query(address)
                except ReproError as error:
                    errors.append(error)
                except BaseException as error:  # noqa: BLE001
                    wrong.append(("untyped", type(error).__name__, error))
                    return
                else:
                    key = _history_key(history)
                    accepted.append((address, time.monotonic()))
                    if key != baselines[address]:
                        wrong.append(("mismatch", address, key))
        finally:
            remote.close()

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(4)
    ]
    for thread in threads:
        thread.start()

    time.sleep(0.3)  # let clients get answers flowing
    state["server"].abort()  # RST every live connection, mid-request
    killed_at = time.monotonic()
    time.sleep(0.2)  # clients churn against a dead port
    replacement = NetServer(
        full_node,
        host=address_tuple[0],
        port=address_tuple[1],
        loop_thread=loop_thread,
    )
    replacement.start()
    state["server"] = replacement
    time.sleep(0.8)  # recovery window
    stop.set()
    for thread in threads:
        thread.join(20.0)
    replacement.close()

    assert not wrong, f"unverified/wrong answers accepted: {wrong[:3]}"
    assert accepted, "no queries succeeded at all — harness is broken"
    recovered = [t for _, t in accepted if t > killed_at + 0.2]
    assert recovered, (
        "no client recovered after the kill+restart "
        f"({len(accepted)} successes, {len(errors)} typed errors)"
    )
