"""Unit tests for the byte-counting transport."""

import pytest

from repro.errors import TransportError
from repro.node.transport import InProcessTransport, LinkModel


class TestCounting:
    def test_counts_both_directions(self):
        transport = InProcessTransport()
        transport.send_to_server(b"abc")
        transport.send_to_client(b"defgh")
        assert transport.stats.bytes_to_server == 3
        assert transport.stats.bytes_to_client == 5
        assert transport.stats.total_bytes == 8
        assert transport.stats.messages_to_server == 1
        assert transport.stats.messages_to_client == 1

    def test_payload_passes_through(self):
        transport = InProcessTransport()
        assert transport.send_to_server(b"payload") == b"payload"

    def test_accumulates(self):
        transport = InProcessTransport()
        for _ in range(5):
            transport.send_to_client(b"xx")
        assert transport.stats.bytes_to_client == 10
        assert transport.stats.messages_to_client == 5


class TestLinkModel:
    def test_transfer_time_formula(self):
        link = LinkModel(bandwidth_bps=1_000_000, rtt_seconds=0.1)
        assert link.transfer_seconds(500_000) == pytest.approx(0.1 + 0.5)
        assert link.transfer_seconds(0, round_trips=3) == pytest.approx(0.3)

    def test_presets_ordering(self):
        fast = LinkModel.home_broadband()
        slow = LinkModel.mobile_3g()
        payload = 1_000_000
        assert fast.transfer_seconds(payload) < slow.transfer_seconds(payload)

    def test_estimated_latency_from_stats(self):
        transport = InProcessTransport()
        transport.send_to_server(b"x" * 100)
        transport.send_to_client(b"y" * 900)
        link = LinkModel(bandwidth_bps=1000, rtt_seconds=0.05)
        assert link.estimated_latency(transport.stats) == pytest.approx(
            0.05 + 1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0, rtt_seconds=0.1)
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=10, rtt_seconds=-1)
        link = LinkModel(bandwidth_bps=10, rtt_seconds=0)
        with pytest.raises(ValueError):
            link.transfer_seconds(-5)

    def test_paper_scale_comparison(self, lvq_system, strawman_system, probe_addresses):
        """A 3G light node feels the strawman's 41MB-vs-0.57MB gap as
        minutes vs sub-second; reproduced here at test scale."""
        from repro.node.full_node import FullNode
        from repro.node.light_node import LightNode

        link = LinkModel.mobile_3g()
        latencies = {}
        for system in (lvq_system, strawman_system):
            full_node = FullNode(system)
            light_node = LightNode.from_full_node(full_node)
            transport = InProcessTransport()
            light_node.query_history(
                full_node, probe_addresses["Addr1"], transport
            )
            latencies[system.config.kind.value] = link.estimated_latency(
                transport.stats
            )
        assert latencies["lvq"] < latencies["strawman"]


class TestFailureInjection:
    def test_budget_exhaustion(self):
        transport = InProcessTransport(byte_budget=10)
        transport.send_to_server(b"12345")
        with pytest.raises(TransportError):
            transport.send_to_client(b"1234567")
        assert transport.is_closed

    def test_exact_budget_allowed(self):
        transport = InProcessTransport(byte_budget=4)
        transport.send_to_server(b"1234")  # exactly at budget

    def test_closed_transport_rejects(self):
        transport = InProcessTransport()
        transport.close()
        with pytest.raises(TransportError):
            transport.send_to_server(b"x")

    def test_mid_query_link_failure(self, lvq_system, probe_addresses):
        """A link that dies mid-transfer surfaces as TransportError, and
        the light node accepts nothing."""
        from repro.node.full_node import FullNode
        from repro.node.light_node import LightNode

        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        starved = InProcessTransport(byte_budget=50)
        with pytest.raises(TransportError):
            light_node.query_history(
                full_node, probe_addresses["Addr6"], starved
            )

    def test_partial_delivery_is_recorded(self):
        """A budget-killed send records the bytes that actually crossed
        before the link died — experiments must not under-count."""
        transport = InProcessTransport(byte_budget=10)
        transport.send_to_server(b"1234567")  # 7 of 10 used
        with pytest.raises(TransportError):
            transport.send_to_client(b"abcdefgh")  # only 3 fit
        assert transport.is_closed
        assert transport.stats.bytes_to_server == 7
        assert transport.stats.bytes_to_client == 3  # the partial prefix
        assert transport.stats.total_bytes == 10
        # The partial message never arrived, so it is not counted as one.
        assert transport.stats.messages_to_client == 0

    def test_partial_delivery_zero_room(self):
        transport = InProcessTransport(byte_budget=4)
        transport.send_to_server(b"1234")
        with pytest.raises(TransportError):
            transport.send_to_server(b"xy")
        assert transport.stats.bytes_to_server == 4

    def test_mid_query_failure_still_counts_bytes(
        self, lvq_system, probe_addresses
    ):
        from repro.node.full_node import FullNode
        from repro.node.light_node import LightNode

        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        starved = InProcessTransport(byte_budget=50)
        with pytest.raises(TransportError):
            light_node.query_history(
                full_node, probe_addresses["Addr6"], starved
            )
        # The request went out whole; the response died mid-transfer at
        # the budget — exactly 50 bytes crossed the wire in total.
        assert starved.stats.total_bytes == 50
        assert starved.stats.bytes_to_client > 0


class TestTransportStatsMerge:
    def test_merge_accumulates(self):
        from repro.node.transport import TransportStats

        a = InProcessTransport()
        b = InProcessTransport()
        a.send_to_server(b"12345")
        b.send_to_client(b"abc")
        total = TransportStats()
        total.merge(a.stats).merge(b.stats)
        assert total.bytes_to_server == 5
        assert total.bytes_to_client == 3
        assert total.messages_to_server == 1
        assert total.messages_to_client == 1
        assert total.as_dict()["bytes_to_server"] == 5


class TestSimulatedClock:
    def test_advances_monotonically(self):
        from repro.node.transport import SimulatedClock

        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.sleep(0.5)  # alias
        assert clock.now() == pytest.approx(2.0)

    def test_rejects_negative(self):
        from repro.node.transport import SimulatedClock

        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)
