"""The TCP transport, functionally: framing, deadlines, gates, errors.

Everything here runs over real loopback sockets — no mocked I/O.  The
invariant under test is that the socket layer is *transparent*: a query
answered over TCP is byte-identical to the in-process answer, every
server-side failure crosses the wire as the same typed exception the
in-process path raises, and nothing a server says can ever manufacture a
:class:`~repro.errors.VerificationError` on the client (that class is
reserved for proofs failing *local* checks).
"""

import socket
import threading
import time

import pytest

from repro.errors import (
    ConnectionLimitError,
    EncodingError,
    QueryError,
    RateLimitedError,
    RequestShedError,
    RequestTimeoutError,
    ServerOverloadedError,
    TransportError,
    VerificationError,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import (
    BatchQueryRequest,
    ErrorResponse,
    PingRequest,
    PongResponse,
    QueryRequest,
)
from repro.node.net import FRAME_HEADER, EventLoopThread, NetServer
from repro.node.netclient import (
    ClientConnection,
    ConnectionPool,
    RemoteFullNode,
    error_from_frame,
)
from repro.node.server import QueryServer
from repro.node.transport import FRAME_ZLIB, InProcessTransport


@pytest.fixture(scope="module")
def loop_thread():
    """One shared event-loop thread for every server in this module."""
    thread = EventLoopThread("test-net-loop")
    yield thread
    thread.stop()


@pytest.fixture()
def served_lvq(lvq_system, loop_thread):
    """An LVQ full node behind a loopback NetServer."""
    full_node = FullNode(lvq_system)
    server = NetServer(full_node, loop_thread=loop_thread)
    server.start()
    yield server, full_node
    server.close()


def _raw_exchange(address, frame, timeout=5.0):
    """One framed request/response on a throwaway raw socket."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(FRAME_HEADER.pack(len(frame)) + frame)
        header = _read_exact(sock, FRAME_HEADER.size)
        (length,) = FRAME_HEADER.unpack(header)
        return _read_exact(sock, length)


def _read_exact(sock, length):
    chunks = []
    while length:
        chunk = sock.recv(length)
        if not chunk:
            raise AssertionError("peer closed before the full frame")
        chunks.append(chunk)
        length -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# transparency: socket answers == in-process answers


def test_query_over_tcp_matches_in_process(served_lvq, probe_addresses):
    server, full_node = served_lvq
    light = LightNode.from_full_node(full_node)
    address = probe_addresses["Addr5"]

    request = QueryRequest(address).serialize()
    over_wire = _raw_exchange(server.address, request)
    in_process = full_node.handle_query(request)
    assert over_wire == in_process, "the socket layer must be transparent"

    remote = RemoteFullNode(server.address)
    try:
        history = light.query_history(remote, address, InProcessTransport())
    finally:
        remote.close()
    baseline = light.query_history(full_node, address)
    assert [(h, t.txid()) for h, t in history.transactions] == [
        (h, t.txid()) for h, t in baseline.transactions
    ]


class _StubNode:
    """A target whose answer is long and compressible — unlike real
    responses, which are hash-dense and often pass through plain."""

    tip_height = 0

    def handle_query(self, payload):
        return b"\x02" + b"A" * 2000

    handle_batch_query = handle_headers = handle_query


def test_compressed_request_gets_mirrored_codec(loop_thread, probe_addresses):
    from repro.node.transport import compress_frame, decompress_frame

    stub = _StubNode()
    with NetServer(stub, loop_thread=loop_thread) as server:
        # A long repetitive address so the *request* actually compresses
        # (tiny or hash-dense frames legitimately pass through plain).
        request = QueryRequest("A" * 512).serialize()
        compressed = compress_frame(request, "zlib", min_size=0)
        assert compressed[0] == FRAME_ZLIB
        wire = _raw_exchange(server.address, compressed)
        assert wire[0] == FRAME_ZLIB, "response must mirror the request codec"
        assert decompress_frame(wire) == stub.handle_query(request)

        plain = _raw_exchange(server.address, request)
        assert plain[0] != FRAME_ZLIB, "plain request ⇒ plain response"


def test_ping_pong_inline(served_lvq, lvq_system):
    server, _ = served_lvq
    response = _raw_exchange(server.address, PingRequest(1234).serialize())
    pong = PongResponse.deserialize(response)
    assert pong.nonce == 1234
    assert pong.tip_height == lvq_system.tip_height


def test_query_server_target_round_trip(lvq_system, loop_thread, probe_addresses):
    full_node = FullNode(lvq_system)
    query_server = QueryServer(full_node, num_workers=2)
    try:
        with NetServer(query_server, loop_thread=loop_thread) as server:
            request = QueryRequest(probe_addresses["Addr4"]).serialize()
            assert _raw_exchange(server.address, request) == (
                full_node.handle_query(request)
            )
    finally:
        query_server.close()


# ---------------------------------------------------------------------------
# typed errors across the wire


def test_server_error_becomes_typed_client_exception(served_lvq):
    server, _ = served_lvq
    remote = RemoteFullNode(server.address)
    try:
        with pytest.raises(QueryError):
            # Height 0 is the genesis sentinel: the node rejects it.
            remote.handle_query(QueryRequest("addr", 5, 2).serialize())
    finally:
        remote.close()


def test_unknown_tag_rejected_with_typed_frame(served_lvq):
    server, _ = served_lvq
    response = _raw_exchange(server.address, bytes([200]) + b"junk")
    error = ErrorResponse.deserialize(response)
    assert error.kind == "QueryError"
    rebuilt = error_from_frame(error)
    assert isinstance(rebuilt, QueryError)


def test_wire_can_never_fabricate_verification_errors():
    """A malicious server naming a VerificationError kind gets a generic
    TransportError on the client: *only local checks* may claim a proof
    failed verification (otherwise a liar could poison peer scoring)."""
    for kind in ("VerificationError", "CorrectnessError", "NoSuchKind"):
        rebuilt = error_from_frame(ErrorResponse(kind, "you failed"))
        assert isinstance(rebuilt, TransportError)
        assert not isinstance(rebuilt, VerificationError)


def test_overload_crosses_wire_with_params(lvq_system, loop_thread):
    full_node = FullNode(lvq_system)
    query_server = QueryServer(full_node, num_workers=1, max_pending=1)
    release = threading.Event()
    original = full_node.handle_query

    def slow_handle(payload):
        release.wait(5.0)
        return original(payload)

    full_node.handle_query = slow_handle
    try:
        with NetServer(query_server, loop_thread=loop_thread) as server:
            request = QueryRequest("a").serialize()
            remote = RemoteFullNode(server.address, size=8)
            results, errors = [], []

            def fire():
                try:
                    results.append(remote.handle_query(request))
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            release.set()
            for thread in threads:
                thread.join(10.0)
            remote.close()
            overloaded = [
                e for e in errors if isinstance(e, ServerOverloadedError)
            ]
            assert overloaded, f"expected overload rejections, got {errors}"
            assert overloaded[0].max_pending == 1  # params survived the wire
    finally:
        full_node.handle_query = original
        release.set()
        query_server.close()


# ---------------------------------------------------------------------------
# limits, deadlines, reaping


def test_connection_gate_rejects_with_typed_frame(lvq_system, loop_thread):
    server = NetServer(
        FullNode(lvq_system), max_connections=1, loop_thread=loop_thread
    )
    with server:
        first = socket.create_connection(server.address, timeout=5.0)
        try:
            # Prove the first connection is actually being served.
            first.sendall(
                FRAME_HEADER.pack(len(PingRequest(1).serialize()))
                + PingRequest(1).serialize()
            )
            header = _read_exact(first, FRAME_HEADER.size)
            _read_exact(first, FRAME_HEADER.unpack(header)[0])

            response = _raw_exchange(
                server.address, PingRequest(2).serialize()
            )
            error = ErrorResponse.deserialize(response)
            assert error.kind == "ConnectionLimitError"
            rebuilt = error_from_frame(error)
            assert isinstance(rebuilt, ConnectionLimitError)
            assert rebuilt.max_connections == 1
        finally:
            first.close()
        assert server.stats.connections_rejected >= 1


def test_idle_connections_are_reaped(lvq_system, loop_thread):
    server = NetServer(
        FullNode(lvq_system), idle_timeout=0.15, loop_thread=loop_thread
    )
    with server:
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.settimeout(5.0)
            assert sock.recv(1) == b"", "idle connection should see EOF"
        deadline = time.monotonic() + 2.0
        while server.stats.connections_reaped == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)


def test_mid_frame_stall_hits_read_deadline(lvq_system, loop_thread):
    server = NetServer(
        FullNode(lvq_system),
        idle_timeout=5.0,
        read_timeout=0.15,
        loop_thread=loop_thread,
    )
    with server:
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(FRAME_HEADER.pack(100) + b"only-a-prefix")
            sock.settimeout(5.0)
            assert sock.recv(1) == b"", "stalled frame must close the link"
        deadline = time.monotonic() + 2.0
        while server.stats.deadline_closes == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)


def test_oversized_and_empty_frames_rejected(lvq_system, loop_thread):
    server = NetServer(
        FullNode(lvq_system), max_frame_bytes=1024, loop_thread=loop_thread
    )
    with server:
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(FRAME_HEADER.pack(1 << 30))  # huge claim, no body
            header = _read_exact(sock, FRAME_HEADER.size)
            body = _read_exact(sock, FRAME_HEADER.unpack(header)[0])
            error = ErrorResponse.deserialize(body)
            assert error.kind == "EncodingError"
            sock.settimeout(5.0)
            assert sock.recv(1) == b"", "framing is untrusted after abuse"

        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(FRAME_HEADER.pack(0))
            header = _read_exact(sock, FRAME_HEADER.size)
            body = _read_exact(sock, FRAME_HEADER.unpack(header)[0])
            assert ErrorResponse.deserialize(body).kind == "EncodingError"


def test_client_send_cap_is_symmetric(lvq_system, loop_thread):
    with NetServer(FullNode(lvq_system), loop_thread=loop_thread) as server:
        pool = ConnectionPool(server.address, max_frame_bytes=64)
        try:
            with pytest.raises(EncodingError):
                pool.request(b"\x01" + b"x" * 100)  # never leaves the host
            assert pool.stats["connects"] == 0
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# lifecycle: drain and abort


def test_graceful_drain_finishes_in_flight_requests(lvq_system, loop_thread):
    full_node = FullNode(lvq_system)
    started = threading.Event()
    original = full_node.handle_query

    def slow_handle(payload):
        started.set()
        time.sleep(0.25)
        return original(payload)

    full_node.handle_query = slow_handle
    server = NetServer(full_node, loop_thread=loop_thread)
    server.start()
    request = QueryRequest("nobody").serialize()
    result = {}

    def client():
        result["frame"] = _raw_exchange(server.address, request)

    thread = threading.Thread(target=client)
    thread.start()
    assert started.wait(5.0)
    server.close(drain=True, timeout=5.0)  # called *while* request runs
    thread.join(5.0)
    assert result["frame"] == original(request), (
        "drain must let the in-flight request finish and flush"
    )


def test_abort_resets_live_connections(lvq_system, loop_thread):
    full_node = FullNode(lvq_system)
    started = threading.Event()
    original = full_node.handle_query
    full_node.handle_query = lambda p: (started.set(), time.sleep(5.0), b"")[2]
    server = NetServer(full_node, loop_thread=loop_thread)
    server.start()
    pool = ConnectionPool(server.address, request_timeout=10.0)
    errors = []

    def client():
        try:
            pool.request(QueryRequest("nobody").serialize())
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    thread = threading.Thread(target=client)
    thread.start()
    assert started.wait(5.0)
    server.abort()
    thread.join(5.0)
    pool.close()
    assert len(errors) == 1
    assert isinstance(errors[0], TransportError)
    assert not isinstance(errors[0], RequestTimeoutError), (
        "an abort is a hard failure, not a timeout"
    )


# ---------------------------------------------------------------------------
# the client pool


def test_pool_reuses_healthy_connections(served_lvq, probe_addresses):
    server, _ = served_lvq
    pool = ConnectionPool(server.address, size=2)
    try:
        request = QueryRequest(probe_addresses["Addr4"]).serialize()
        for _ in range(5):
            pool.request(request)
        assert pool.stats["connects"] == 1, "serial requests reuse one socket"
        assert pool.stats["requests"] == 5
    finally:
        pool.close()


def test_pool_backoff_grows_and_blocks():
    # A port with no listener: every connect fails fast.
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    dead_address = placeholder.getsockname()
    placeholder.close()

    pool = ConnectionPool(
        dead_address,
        connect_timeout=0.2,
        backoff_base=30.0,  # far longer than the test: the block must show
        backoff_max=60.0,
        seed=7,
    )
    try:
        with pytest.raises(TransportError):
            pool.request(b"\x0c\x00")
        assert pool.stats["connect_failures"] == 1
        with pytest.raises(TransportError, match="backed off"):
            pool.request(b"\x0c\x00")  # inside the backoff window: no dial
        assert pool.stats["connect_failures"] == 1, (
            "a blocked attempt must not hit the network"
        )
        assert pool.stats["backoff_seconds"] > 0
    finally:
        pool.close()


def test_pool_evicts_dead_connections_after_server_restart(
    lvq_system, loop_thread, probe_addresses
):
    full_node = FullNode(lvq_system)
    server = NetServer(full_node, loop_thread=loop_thread)
    server.start()
    address = server.address
    pool = ConnectionPool(address, backoff_base=0.01, backoff_max=0.05)
    request = QueryRequest(probe_addresses["Addr4"]).serialize()
    try:
        first = pool.request(request)
        server.abort()  # the pooled connection is now a dead socket
        replacement = NetServer(
            full_node, host=address[0], port=address[1], loop_thread=loop_thread
        )
        replacement.start()
        try:
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    second = pool.request(request)
                    break
                except TransportError:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
            assert second == first
            assert (
                pool.stats["health_evictions"] + pool.stats["failovers"] >= 1
            ), "the dead pooled socket must have been detected"
        finally:
            replacement.close()
    finally:
        pool.close()


def test_remote_node_tip_height_via_pong(served_lvq, lvq_system):
    server, _ = served_lvq
    remote = RemoteFullNode(server.address)
    try:
        assert remote.tip_height == lvq_system.tip_height
    finally:
        remote.close()


def test_client_connection_rejects_bad_length_claims(served_lvq):
    server, _ = served_lvq
    connection = ClientConnection(server.address, max_frame_bytes=16)
    try:
        # The pong fits; now shrink the cap below the response size and
        # confirm the client refuses to read an over-cap frame.
        connection.max_frame_bytes = 2
        with pytest.raises(EncodingError):
            connection.request(PingRequest(9).serialize(), timeout=5.0)
    finally:
        connection.close()


# ---------------------------------------------------------------------------
# §11 admission control over live sockets


def test_retry_after_params_roundtrip_through_error_frames():
    """Every backpressure refusal carries its retry hint (integer
    milliseconds in the params tuple) across serialize/deserialize and
    rebuilds into the same typed exception with the hint intact."""
    originals = [
        ServerOverloadedError(7, 4, retry_after=0.25),
        ConnectionLimitError(9, 8, retry_after=1.5),
        RateLimitedError("hot", retry_after=0.125),
        RequestShedError("batch", "shed_low", retry_after=2.0),
    ]
    for original in originals:
        frame = ErrorResponse.from_exception(original).serialize()
        rebuilt = error_from_frame(ErrorResponse.deserialize(frame))
        assert type(rebuilt) is type(original)
        assert rebuilt.retry_after == pytest.approx(
            original.retry_after, abs=0.001
        ), f"hint lost for {type(original).__name__}"
    shed = error_from_frame(
        ErrorResponse.deserialize(
            ErrorResponse.from_exception(originals[3]).serialize()
        )
    )
    assert shed.priority == "batch"
    assert shed.state == "shed_low"


def test_rate_limited_client_gets_typed_frame_others_unaffected(
    lvq_system, loop_thread
):
    """A hot client exhausting its token bucket sees RateLimitedError
    over the wire; a cold client with its own hello identity is served
    without ever noticing."""
    query_server = QueryServer(
        FullNode(lvq_system), num_workers=2, rate_limit=5.0, rate_burst=2.0
    )
    try:
        with NetServer(query_server, loop_thread=loop_thread) as server:
            hot = RemoteFullNode(server.address, client_id="hot")
            cold = RemoteFullNode(server.address, client_id="cold")
            request = QueryRequest("a").serialize()
            try:
                limited = None
                for _ in range(4):
                    try:
                        hot.handle_query(request)
                    except RateLimitedError as error:
                        limited = error
                        break
                assert limited is not None, "hot client never rate limited"
                assert limited.retry_after is not None
                assert limited.retry_after > 0
                cold.handle_query(request)  # own bucket: still admitted
                assert server.stats.hellos >= 2
                admission = query_server.stats()["admission"]
                assert admission["ratelimited"] >= 1
                assert hot.pool.stats["backpressure_signals"] >= 1
            finally:
                hot.close()
                cold.close()
    finally:
        query_server.close()


def test_pool_honors_retry_after_before_next_request(
    lvq_system, loop_thread
):
    """After a rate-limit frame the pool defers its next request for
    the hinted interval instead of hammering — and then succeeds."""
    query_server = QueryServer(
        FullNode(lvq_system), num_workers=2, rate_limit=10.0, rate_burst=1.0
    )
    try:
        with NetServer(query_server, loop_thread=loop_thread) as server:
            remote = RemoteFullNode(server.address, client_id="eager")
            request = QueryRequest("a").serialize()
            try:
                remote.handle_query(request)  # spends the only token
                with pytest.raises(RateLimitedError):
                    remote.handle_query(request)
                started = time.monotonic()
                remote.handle_query(request)  # deferred, then admitted
                elapsed = time.monotonic() - started
                assert elapsed >= 0.05, (
                    f"pool retried after only {elapsed * 1000:.0f}ms"
                )
                assert remote.pool.stats["backpressure_wait_seconds"] > 0
            finally:
                remote.close()
    finally:
        query_server.close()


def test_queue_pressure_sheds_batch_class_with_typed_frame(
    lvq_system, loop_thread
):
    """With the queue over the low watermark, batch-class traffic is
    refused with a typed, named RequestShedError frame while the
    interactive work already queued keeps its place."""
    full_node = FullNode(lvq_system)
    gate = threading.Event()
    original = full_node.handle_query

    def gated_handle(payload):
        gate.wait(10.0)
        return original(payload)

    full_node.handle_query = gated_handle
    query_server = QueryServer(
        full_node,
        num_workers=1,
        max_pending=64,
        watermarks=(2, 4, 6),
    )
    feeders = []
    try:
        with NetServer(query_server, loop_thread=loop_thread) as server:
            # Four interactive queries: one occupies the worker, three
            # queue up and push the shedder past the low watermark.
            request = QueryRequest("a").serialize()
            for _ in range(4):
                sock = socket.create_connection(server.address, timeout=5.0)
                sock.sendall(FRAME_HEADER.pack(len(request)) + request)
                feeders.append(sock)
            deadline = time.monotonic() + 5.0
            while query_server.admission.state() == "normal":
                assert time.monotonic() < deadline, (
                    f"never shed: depth={query_server.admission.depth()}"
                )
                time.sleep(0.01)

            remote = RemoteFullNode(server.address, client_id="batcher")
            try:
                with pytest.raises(RequestShedError) as info:
                    remote.handle_batch_query(
                        BatchQueryRequest(["a", "b"]).serialize()
                    )
                assert info.value.priority == "batch"
                assert info.value.state == "shed_batch"
                assert info.value.retry_after is not None
                assert info.value.retry_after > 0
            finally:
                remote.close()
            gate.set()
    finally:
        gate.set()
        for sock in feeders:
            sock.close()
        query_server.close()
        full_node.handle_query = original


def test_hello_narrows_identity_below_shared_host(lvq_system, loop_thread):
    """Two pools on the same loopback host with distinct hello ids get
    distinct token buckets: one spending its budget never charges the
    other (without hello both would share the peer-host identity)."""
    query_server = QueryServer(
        FullNode(lvq_system), num_workers=2, rate_limit=1.0, rate_burst=1.0
    )
    try:
        with NetServer(query_server, loop_thread=loop_thread) as server:
            alice = RemoteFullNode(server.address, client_id="alice")
            bob = RemoteFullNode(server.address, client_id="bob")
            request = QueryRequest("a").serialize()
            try:
                alice.handle_query(request)
                with pytest.raises(RateLimitedError):
                    alice.handle_query(request)
                bob.handle_query(request)  # separate identity, full bucket
            finally:
                alice.close()
                bob.close()
            assert server.stats.hellos == 2
    finally:
        query_server.close()


# ---------------------------------------------------------------------------
# the real daemon: `python -m repro serve` as a subprocess


def test_repro_serve_subprocess_lifecycle(tmp_path):
    """Spawn the actual CLI daemon, query it over TCP, SIGTERM it, and
    assert a graceful drain: exit code 0 and the served-frames summary.
    This is the full packaging path — a crash after the "serving on"
    line (not reachable from in-process NetServer tests) fails here."""
    import os
    import re
    import signal
    import subprocess
    import sys

    import repro

    from repro.workload.generator import WorkloadParams, generate_workload

    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--blocks",
            "24",
            "--txs-per-block",
            "6",
            "--port",
            "0",
            "--workers",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": src_root},
    )
    try:
        deadline = time.monotonic() + 60.0
        address = None
        while address is None:
            line = process.stdout.readline()
            assert (
                process.poll() is None and time.monotonic() < deadline
            ), f"daemon died before binding: {line!r}"
            match = re.search(r"serving on ([0-9.]+):(\d+)", line)
            if match:
                address = (match.group(1), int(match.group(2)))

        workload = generate_workload(
            WorkloadParams(num_blocks=24, txs_per_block=6, seed=2020)
        )
        remote = RemoteFullNode(address)
        try:
            assert remote.tip_height == 24  # genesis + 24 workload blocks
            response = remote.handle_query(
                QueryRequest(workload.probe_addresses["Addr4"]).serialize()
            )
            assert response and response[0] == 2  # QueryResponse tag
        finally:
            remote.close()

        process.send_signal(signal.SIGTERM)
        output = process.stdout.read()
        assert process.wait(30.0) == 0
        assert "draining..." in output
        assert re.search(r"served \d+ frames over \d+ connections", output)
    finally:
        if process.poll() is None:
            process.kill()
