"""Per-frame compression codec and :class:`CompressedTransport`.

Covers the §8.3 negotiation rules (tag-dispatched, passthrough for
small or incompressible frames), adversarial decoding (truncated or
corrupt compressed frames raise :class:`EncodingError`, never a zlib
exception or a crash), and the codec-agnosticism of the PR 2 fault
machinery: a chaos spot-run where corrupt/truncate faults land on the
*compressed* bytes must uphold the same soundness invariant as the
plain-transport matrix.
"""

import random

import pytest

from repro.errors import EncodingError, ReproError
from repro.node.faults import (
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.session import Peer, QuerySession, RetryPolicy
from repro.node.transport import (
    FRAME_ZLIB,
    HAVE_ZSTD,
    MIN_COMPRESS_SIZE,
    CompressedTransport,
    InProcessTransport,
    SimulatedClock,
    compress_frame,
    decompress_frame,
)
from repro.query.adversary import ALL_ATTACKS, MaliciousFullNode


# ---------------------------------------------------------------------------
# codec


def test_round_trip_compressible_frame():
    payload = b"ab" * 4096
    frame = compress_frame(payload)
    assert frame[0] == FRAME_ZLIB
    assert len(frame) < len(payload)
    assert decompress_frame(frame) == payload


def test_small_frames_pass_through():
    payload = b"x" * (MIN_COMPRESS_SIZE - 1)
    assert compress_frame(payload) == payload
    assert decompress_frame(payload) == payload


def test_incompressible_frames_pass_through():
    payload = random.Random(7).randbytes(4096)
    assert compress_frame(payload) == payload


def test_unknown_codec_is_refused():
    with pytest.raises(EncodingError):
        compress_frame(b"y" * 1024, codec="lz4")


def test_zstd_gated_on_library():
    if HAVE_ZSTD:
        frame = compress_frame(b"ab" * 4096, codec="zstd")
        assert decompress_frame(frame) == b"ab" * 4096
    else:
        with pytest.raises(EncodingError):
            compress_frame(b"ab" * 4096, codec="zstd")


def test_truncated_compressed_frame_is_typed():
    frame = compress_frame(b"ab" * 4096)
    for cut in (1, 2, len(frame) // 2, len(frame) - 1):
        truncated = frame[:cut]
        try:
            decompressed = decompress_frame(truncated)
        except EncodingError:
            continue
        # A cut before the codec tag byte survives only as passthrough.
        assert decompressed == truncated


def test_corrupt_compressed_frame_is_typed():
    frame = bytearray(compress_frame(b"ab" * 4096))
    rng = random.Random(13)
    for _ in range(200):
        pos = rng.randrange(len(frame))
        old = frame[pos]
        frame[pos] = rng.randrange(256)
        try:
            decompress_frame(bytes(frame))
        except ReproError:
            pass  # typed — the invariant
        finally:
            frame[pos] = old


def test_declared_length_must_match():
    import zlib

    from repro.crypto.encoding import write_varint

    body = zlib.compress(b"ab" * 4096)
    # Lie about the raw length: both shorter and longer must be refused.
    for lie in (1, 8191, 8193, 1 << 20):
        frame = bytes([FRAME_ZLIB]) + write_varint(lie) + body
        with pytest.raises(EncodingError):
            decompress_frame(frame)


def test_trailing_garbage_is_refused():
    frame = compress_frame(b"ab" * 4096)
    with pytest.raises(EncodingError):
        decompress_frame(frame + b"\x00\x01")


# ---------------------------------------------------------------------------
# transport wrapper


def test_compressed_transport_end_to_end(lvq_nodes, probe_addresses):
    full_node, light_node = lvq_nodes
    plain = InProcessTransport()
    compressed = CompressedTransport()
    address = probe_addresses["Addr5"]
    history_plain = light_node.query_history(full_node, address, plain)
    history_compressed = light_node.query_history(
        full_node, address, compressed
    )
    assert [(h, t.txid()) for h, t in history_plain.transactions] == [
        (h, t.txid()) for h, t in history_compressed.transactions
    ]
    # The compressed link moved fewer bytes for the same verified answer.
    assert (
        compressed.stats.bytes_to_client < plain.stats.bytes_to_client
    )


def test_compressed_transport_aggregated_batch(lvq_nodes, probe_addresses):
    full_node, light_node = lvq_nodes
    addresses = [probe_addresses[name] for name in ("Addr4", "Addr5", "Addr6")]
    plain_t = InProcessTransport()
    agg_t = CompressedTransport()
    plain = light_node.query_batch(full_node, addresses, plain_t)
    aggregated = light_node.query_batch(
        full_node, addresses, agg_t, aggregated=True
    )
    for address in addresses:
        assert [(h, t.txid()) for h, t in plain[address].transactions] == [
            (h, t.txid()) for h, t in aggregated[address].transactions
        ]
    assert agg_t.stats.bytes_to_client < plain_t.stats.bytes_to_client


def test_compressed_transport_delta_sync(lvq_system):
    full_node = FullNode(lvq_system)
    genesis = lvq_system.headers()[0]
    light_node = LightNode([genesis], lvq_system.config)
    transport = CompressedTransport()
    accepted = light_node.sync_headers(full_node, transport, delta=True)
    assert accepted == lvq_system.tip_height
    assert [h.serialize() for h in light_node.headers] == [
        h.serialize() for h in lvq_system.headers()
    ]


def test_compressed_transport_requires_known_codec():
    with pytest.raises(EncodingError):
        CompressedTransport(codec="lz4")
    if not HAVE_ZSTD:
        with pytest.raises(EncodingError):
            CompressedTransport(codec="zstd")


# ---------------------------------------------------------------------------
# chaos spot-run: faults land on compressed bytes


def _mangling_schedule(seed):
    rng = random.Random(seed)
    rules = []
    for _ in range(rng.randrange(1, 4)):
        kind = rng.choice(
            [FaultKind.CORRUPT, FaultKind.TRUNCATE, FaultKind.DROP]
        )
        rules.append(
            FaultRule(
                kind,
                direction=rng.choice(("both", "to_server", "to_client")),
                probability=rng.uniform(0.1, 0.5),
                param=rng.randrange(1, 6) if kind is FaultKind.CORRUPT else None,
            )
        )
    return FaultSchedule(rules, seed=rng.randrange(1 << 30))


@pytest.mark.parametrize("index", range(12))
def test_chaos_spot_run_over_compressed_transport(
    lvq_system, probe_addresses, index
):
    """PR 2 invariant, codec-stacked: corrupt/truncate on *compressed*
    frames still yields baseline-equal history or a typed error."""
    rng = random.Random(20200806 + index)
    clock = SimulatedClock()
    address = probe_addresses[rng.choice(("Addr2", "Addr4", "Addr5", "Addr6"))]

    baseline_history = LightNode(
        lvq_system.headers(), lvq_system.config
    ).query_history(FullNode(lvq_system), address)
    expected = [(h, t.txid()) for h, t in baseline_history.transactions]

    def chaotic_compressed():
        return CompressedTransport(
            inner=FaultyTransport(
                schedule=_mangling_schedule(rng.randrange(1 << 30)),
                clock=clock,
            )
        )

    peers = [
        Peer("flaky", FullNode(lvq_system), transport_factory=chaotic_compressed)
    ]
    if index % 2:
        liar = MaliciousFullNode(
            lvq_system, ALL_ATTACKS[rng.choice(sorted(ALL_ATTACKS))]
        )
        peers.append(Peer("liar", liar, transport_factory=chaotic_compressed))
    # A clean compressed peer keeps half the scenarios satisfiable.
    peers.append(
        Peer(
            "honest",
            FullNode(lvq_system),
            transport_factory=CompressedTransport,
        )
    )
    rng.shuffle(peers)

    session = QuerySession(
        LightNode(lvq_system.headers(), lvq_system.config),
        peers,
        clock=clock,
        request_timeout=5.0,
        retry=RetryPolicy(max_rounds=4, base_delay=0.05, max_delay=0.5),
        quarantine_base=0.05,
        seed=rng.randrange(1 << 30),
    )
    try:
        history = session.query(address)
    except ReproError:
        pass  # typed denial — allowed under mangling faults
    else:
        assert [(h, t.txid()) for h, t in history.transactions] == expected


# ---------------------------------------------------------------------------
# frame-size limits (symmetric) and dropped-deadline accounting


def test_frame_limit_enforced_on_send():
    payload = b"z" * 200
    with pytest.raises(EncodingError, match="exceeds"):
        compress_frame(payload, max_frame_bytes=100)


def test_frame_limit_enforced_on_receive_plain():
    payload = b"z" * 200
    with pytest.raises(EncodingError, match="exceeds"):
        decompress_frame(payload, 100)


def test_frame_limit_enforced_on_claimed_length():
    """A zip bomb: tiny compressed frame *claiming* a huge raw size must
    be rejected before any decompression buffer is allocated."""
    import zlib

    from repro.crypto.encoding import write_varint

    bomb = bytes([FRAME_ZLIB]) + write_varint(1 << 40) + zlib.compress(b"x")
    with pytest.raises(EncodingError, match="over"):
        decompress_frame(bomb)


def test_frame_limit_is_configurable_per_transport(lvq_nodes, probe_addresses):
    from repro.node.messages import QueryRequest

    full_node, _light = lvq_nodes
    tight = CompressedTransport(max_frame_bytes=64)
    request = QueryRequest(probe_addresses["Addr5"]).serialize()
    # The request fits; the (much larger) response must be refused by
    # the same limit on the other direction — symmetric enforcement.
    framed = tight.send_to_server(request)
    response = full_node.handle_query(decompress_frame(framed))
    with pytest.raises(EncodingError, match="exceeds"):
        tight.send_to_client(response)
    with pytest.raises(EncodingError):
        CompressedTransport(max_frame_bytes=0)


def test_default_frame_limit_is_32mib():
    from repro.node.transport import DEFAULT_MAX_FRAME_BYTES

    assert DEFAULT_MAX_FRAME_BYTES == 32 << 20


def test_dropped_deadline_is_recorded_not_silent():
    """arm_timeout over an inner transport with no deadline support used
    to be a silent no-op; it must now count in TransportStats."""

    class _BareTransport:
        def __init__(self):
            from repro.node.transport import TransportStats

            self.stats = TransportStats()
            self.is_closed = False

        def send_to_server(self, payload):
            return payload

        def send_to_client(self, payload):
            return payload

        def close(self):
            self.is_closed = True

    wrapped = CompressedTransport(inner=_BareTransport())
    wrapped.arm_timeout(5.0)
    wrapped.arm_timeout(1.0)
    wrapped.arm_timeout(None)  # clearing a deadline is not a drop
    assert wrapped.stats.dropped_deadlines == 2
    assert wrapped.stats.as_dict()["dropped_deadlines"] == 2


def test_armed_deadline_forwards_when_inner_supports_it():
    inner = FaultyTransport(clock=SimulatedClock())  # has arm_timeout
    wrapped = CompressedTransport(inner=inner)
    wrapped.arm_timeout(3.0)
    assert wrapped.stats.dropped_deadlines == 0


def test_dropped_deadlines_merge_across_stats():
    from repro.node.transport import TransportStats

    first, second = TransportStats(), TransportStats()
    first.dropped_deadlines = 2
    second.dropped_deadlines = 3
    first.merge(second)
    assert first.dropped_deadlines == 5
