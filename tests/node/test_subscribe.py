"""Subscription subsystem, in-process: messages, registry, eviction.

The socket-free half of the streaming suite.  Wire messages round-trip
and reject garbage like every other tag; the registry is driven through
list-backed fake channels so fan-out, grouping, retraction, and the
slow-consumer eviction contract (typed final frame, outbox reclaimed,
no head-of-line blocking) are asserted without any TCP in the loop.
"""

import pytest

from repro.chain.block import BlockHeader
from repro.crypto.encoding import ByteReader
from repro.errors import (
    ChainError,
    EncodingError,
    QueryError,
    SubscriberEvictedError,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import (
    MAX_WATCH_ADDRESSES,
    ErrorResponse,
    PushRetraction,
    PushUpdate,
    SubscribeAck,
    SubscribeRequest,
    SubscriptionEvicted,
    UnsubscribeRequest,
)
from repro.node.netclient import error_from_frame
from repro.node.server import QueryServer
from repro.node.subscribe import SubscriptionRegistry
from repro.query.batch import BatchQueryResult, verify_batch_result
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.verifier import VerifiedHistory
from repro.wallet import Wallet
from repro.workload.generator import WorkloadParams, generate_workload


def _build(num_blocks=8, extra=8, seed=7, txs=6):
    """A small mutable chain: serve ``num_blocks``, keep ``extra`` bodies
    aside so tests can append/reorg deterministically."""
    workload = generate_workload(
        WorkloadParams(num_blocks=num_blocks + extra, txs_per_block=txs, seed=seed)
    )
    config = SystemConfig.lvq(bf_bytes=192, segment_len=8)
    system = build_system(workload.bodies[: num_blocks + 1], config)
    return workload, config, system


class ListChannel:
    """The channel duck, backed by a list (optionally bounded)."""

    def __init__(self, capacity=None):
        self.frames = []
        self.capacity = capacity
        self.closed = False
        self.evicted = False

    def push(self, frame):
        if self.closed:
            return "closed"
        if self.capacity is not None and len(self.frames) >= self.capacity:
            return "overflow"
        self.frames.append(frame)
        return "ok"

    def evict(self, frame_factory):
        dropped = len(self.frames) + 1
        self.frames = [frame_factory(dropped)]
        self.evicted = True
        return dropped

    def close(self):
        self.closed = True


# ---------------------------------------------------------------------------
# wire messages


def test_subscribe_request_round_trip():
    request = SubscribeRequest(["alice", "bob", "carol"])
    decoded = SubscribeRequest.deserialize(request.serialize())
    assert decoded.addresses == ["alice", "bob", "carol"]


@pytest.mark.parametrize(
    "addresses",
    [
        [],
        [""],
        ["a", "a"],
        ["a"] * (MAX_WATCH_ADDRESSES + 1),
    ],
    ids=["empty", "blank", "duplicate", "too-many"],
)
def test_subscribe_request_rejects_bad_watch_sets(addresses):
    with pytest.raises((EncodingError, QueryError, ValueError)):
        SubscribeRequest(addresses)


def test_subscribe_ack_and_unsubscribe_round_trip():
    ack = SubscribeAck.deserialize(SubscribeAck(7, 123).serialize())
    assert (ack.subscription_id, ack.tip_height) == (7, 123)
    req = UnsubscribeRequest.deserialize(UnsubscribeRequest(7).serialize())
    assert req.subscription_id == 7


def test_push_update_round_trip():
    update = PushUpdate(42, b"header-bytes", b"batch-bytes")
    decoded = PushUpdate.deserialize(update.serialize())
    assert decoded.height == 42
    assert decoded.header_bytes == b"header-bytes"
    assert decoded.batch_bytes == b"batch-bytes"


def test_push_retraction_round_trip_and_validation():
    retraction = PushRetraction.deserialize(PushRetraction(10, 14).serialize())
    assert (retraction.fork_height, retraction.old_tip) == (10, 14)
    with pytest.raises((EncodingError, ValueError)):
        PushRetraction(10, 9)  # old tip below the fork is nonsense


def test_subscription_evicted_round_trip_and_typed_error():
    notice = SubscriptionEvicted.deserialize(
        SubscriptionEvicted(3, 17, "outbox overflow").serialize()
    )
    error = notice.to_error()
    assert isinstance(error, SubscriberEvictedError)
    assert error.subscription_id == 3
    assert error.dropped_frames == 17

    frame = ErrorResponse.from_exception(error).serialize()
    rebuilt = error_from_frame(ErrorResponse.deserialize(frame))
    assert isinstance(rebuilt, SubscriberEvictedError)
    assert rebuilt.subscription_id == 3
    assert rebuilt.dropped_frames == 17


@pytest.mark.parametrize(
    "cls",
    [SubscribeRequest, SubscribeAck, UnsubscribeRequest,
     PushUpdate, PushRetraction, SubscriptionEvicted],
)
def test_truncated_subscription_frames_rejected(cls):
    if cls is SubscribeRequest:
        frame = SubscribeRequest(["alice"]).serialize()
    elif cls is SubscribeAck:
        frame = SubscribeAck(1, 5).serialize()
    elif cls is UnsubscribeRequest:
        frame = UnsubscribeRequest(1).serialize()
    elif cls is PushUpdate:
        frame = PushUpdate(1, b"h", b"b").serialize()
    elif cls is PushRetraction:
        frame = PushRetraction(1, 2).serialize()
    else:
        frame = SubscriptionEvicted(1, 2, "outbox overflow").serialize()
    for cut in range(len(frame)):
        with pytest.raises(EncodingError):
            cls.deserialize(frame[:cut])


# ---------------------------------------------------------------------------
# registry fan-out


def test_registry_subscribe_returns_tip_and_distinct_ids():
    _, _, system = _build()
    registry = SubscriptionRegistry(FullNode(system))
    channel = ListChannel()
    id1, tip1 = registry.subscribe(["alice"], channel)
    id2, tip2 = registry.subscribe(["bob"], channel)
    assert id1 != id2
    assert tip1 == tip2 == system.tip_height
    assert registry.stats.active == 2


def test_append_fans_out_one_verified_update_per_watch_set():
    workload, config, system = _build()
    node = FullNode(system)
    registry = SubscriptionRegistry(node)
    watched = list(workload.probe_addresses.values())[:2]

    # Three subscribers, two distinct watch sets: the shared set must be
    # built once and pushed twice.
    shared_a = ListChannel()
    shared_b = ListChannel()
    other = ListChannel()
    registry.subscribe(watched, shared_a)
    registry.subscribe(watched, shared_b)
    registry.subscribe([watched[0]], other)

    system.append_block(workload.bodies[system.tip_height + 1])
    height = system.tip_height

    assert registry.stats.updates_built == 2
    assert registry.stats.update_frames == 3
    assert len(shared_a.frames) == len(shared_b.frames) == len(other.frames) == 1
    assert shared_a.frames[0] == shared_b.frames[0]

    # The pushed frame verifies exactly like a pulled batch would.
    update = PushUpdate.deserialize(shared_a.frames[0])
    assert update.height == height
    reader = ByteReader(update.header_bytes)
    header = BlockHeader.deserialize(
        reader, config.header_extension_kind, config.header_bloom_bytes
    )
    reader.finish()
    assert header.block_id() == system.headers()[height].block_id()
    batch = BatchQueryResult.deserialize(update.batch_bytes, config)
    histories = verify_batch_result(
        batch,
        system.headers()[: height + 1],
        config,
        watched,
        (height, height),
    )
    assert set(histories) == set(watched)


def test_reorg_fans_out_retraction_with_fork_and_old_tip():
    workload, _, system = _build()
    registry = SubscriptionRegistry(FullNode(system))
    channel = ListChannel()
    registry.subscribe(["whoever"], channel)
    old_tip = system.tip_height

    alt = generate_workload(
        WorkloadParams(num_blocks=12, txs_per_block=6, seed=99)
    )
    system.reorg(old_tip - 2, alt.bodies[old_tip - 1 : old_tip + 3])

    retraction = PushRetraction.deserialize(channel.frames[0])
    assert retraction.fork_height == old_tip - 2
    assert retraction.old_tip == old_tip
    # The replacement blocks follow as ordinary updates.
    heights = [
        PushUpdate.deserialize(frame).height for frame in channel.frames[1:]
    ]
    assert heights == list(range(old_tip - 1, system.tip_height + 1))


def test_unsubscribe_requires_the_owning_channel():
    _, _, system = _build()
    registry = SubscriptionRegistry(FullNode(system))
    owner = ListChannel()
    thief = ListChannel()
    sub_id, _ = registry.subscribe(["alice"], owner)
    registry.subscribe(["bob"], thief)
    with pytest.raises(QueryError):
        registry.unsubscribe(sub_id, thief)
    registry.unsubscribe(sub_id, owner)
    assert registry.stats.active == 1
    with pytest.raises(QueryError):
        registry.unsubscribe(sub_id, owner)  # already gone


def test_detach_channel_forgets_every_subscription_on_it():
    workload, _, system = _build()
    registry = SubscriptionRegistry(FullNode(system))
    channel = ListChannel()
    registry.subscribe(["a"], channel)
    registry.subscribe(["b"], channel)
    survivor = ListChannel()
    registry.subscribe(["c"], survivor)

    assert registry.detach_channel(channel) == 2
    assert registry.stats.active == 1
    system.append_block(workload.bodies[system.tip_height + 1])
    assert channel.frames == []
    assert len(survivor.frames) == 1


def test_closed_channel_is_detached_on_push():
    workload, _, system = _build()
    registry = SubscriptionRegistry(FullNode(system))
    channel = ListChannel()
    registry.subscribe(["a"], channel)
    channel.close()
    system.append_block(workload.bodies[system.tip_height + 1])
    assert registry.stats.active == 0
    assert channel.frames == []


def test_dead_registry_listener_is_inert():
    import gc

    workload, _, system = _build()
    registry = SubscriptionRegistry(FullNode(system))
    registry.subscribe(["a"], ListChannel())
    del registry
    gc.collect()
    # The weakref listener must no-op, not blow up the append path.
    system.append_block(workload.bodies[system.tip_height + 1])


# ---------------------------------------------------------------------------
# slow-consumer eviction (the in-process half of satellite 3)


def test_slow_consumer_evicted_with_typed_frame_and_reclaimed_outbox():
    workload, _, system = _build(extra=8)
    registry = SubscriptionRegistry(FullNode(system))
    slow = ListChannel(capacity=2)
    fast = ListChannel()
    slow_id, _ = registry.subscribe(["alice"], slow)
    registry.subscribe(["alice"], fast)

    for _ in range(3):
        system.append_block(workload.bodies[system.tip_height + 1])

    # Third push overflowed the bound of 2: the outbox was reclaimed and
    # replaced by exactly one typed eviction frame.
    assert slow.evicted
    assert len(slow.frames) == 1
    notice = SubscriptionEvicted.deserialize(slow.frames[0])
    assert notice.subscription_id == slow_id
    assert notice.dropped_frames == 3  # two queued + the overflowing one
    error = notice.to_error()
    assert isinstance(error, SubscriberEvictedError)

    # The registry dropped the subscription and did the accounting.
    assert registry.stats.evicted_slow == 1
    assert registry.stats.frames_dropped == 3
    assert registry.stats.active == 1

    # No head-of-line blocking: the fast subscriber saw every update.
    assert len(fast.frames) == 3
    heights = [PushUpdate.deserialize(frame).height for frame in fast.frames]
    assert heights == sorted(heights)

    # And the evicted channel receives nothing further.
    system.append_block(workload.bodies[system.tip_height + 1])
    assert len(slow.frames) == 1
    assert len(fast.frames) == 4


def test_registry_rejects_tiny_outbox_bound():
    _, _, system = _build()
    with pytest.raises(ValueError):
        SubscriptionRegistry(FullNode(system), max_outbox=1)


# ---------------------------------------------------------------------------
# adjacent surfaces


def test_query_server_submit_rejects_subscription_tags_with_typed_hint():
    _, _, system = _build()
    server = QueryServer(FullNode(system), num_workers=1)
    try:
        with pytest.raises(QueryError, match="push-capable transport"):
            server.submit(SubscribeRequest(["alice"]).serialize())
        with pytest.raises(QueryError, match="push-capable transport"):
            server.submit(UnsubscribeRequest(1).serialize())
    finally:
        server.close()


def test_truncate_headers_drops_suffix_only():
    _, config, system = _build()
    light = LightNode(system.headers(), config)
    tip = light.tip_height
    assert light.truncate_headers(tip) == 0  # no-op at the tip
    assert light.truncate_headers(tip - 3) == 3
    assert light.tip_height == tip - 3
    assert light.headers[-1].block_id() == system.headers()[tip - 3].block_id()
    with pytest.raises(ChainError):
        light.truncate_headers(-1)


# ---------------------------------------------------------------------------
# wallet event folding


class _Event:
    def __init__(self, kind, **fields):
        self.kind = kind
        for name, value in fields.items():
            setattr(self, name, value)


def test_wallet_apply_event_merges_updates_and_retractions():
    workload, config, system = _build(num_blocks=10, extra=2)
    node = FullNode(system)
    light = LightNode(system.headers(), config)
    address = list(workload.probe_addresses.values())[2]
    wallet = Wallet(light, [address])
    wallet.refresh(node)
    baseline = wallet.history(address)
    truth_balance = wallet.balance(address)

    # A quiet single-height update must not change anything.
    quiet = _Event(
        "update",
        first_height=light.tip_height + 1,
        last_height=light.tip_height + 1,
        histories={address: VerifiedHistory(address, [], None)},
    )
    wallet.apply_event(quiet)
    assert wallet.history(address) == baseline
    assert wallet.balance(address) == truth_balance

    # Retract above a fork: only transactions above it disappear.
    heights = [height for height, _tx in baseline]
    assert heights, "probe address must have history for this test"
    fork = heights[-1] - 1  # guarantees at least the last hit is retracted
    retract = _Event("retract", fork_height=fork, old_tip=light.tip_height)
    assert wallet.apply_event(retract) is True
    assert all(height <= fork for height, _tx in wallet.history(address))

    # A backfill re-covering the retracted range restores the truth.
    restored = [
        (height, tx) for height, tx in baseline if height > fork
    ]
    backfill = _Event(
        "backfill",
        first_height=fork + 1,
        last_height=light.tip_height,
        histories={address: VerifiedHistory(address, restored, None)},
    )
    assert wallet.apply_event(backfill) is True
    assert wallet.history(address) == baseline
    assert wallet.balance(address) == truth_balance


def test_wallet_apply_event_ignores_unknown_addresses_and_kinds():
    workload, config, system = _build(num_blocks=10, extra=2)
    node = FullNode(system)
    light = LightNode(system.headers(), config)
    address = list(workload.probe_addresses.values())[2]
    wallet = Wallet(light, [address])
    wallet.refresh(node)
    before = wallet.history(address)

    stranger = _Event(
        "update",
        first_height=1,
        last_height=light.tip_height,
        histories={"never-watched": VerifiedHistory("never-watched", [], None)},
    )
    assert wallet.apply_event(stranger) is False
    assert wallet.apply_event(_Event("disconnect", reason="x", final=True)) is False
    assert wallet.history(address) == before
