"""Unit tests for FullNode / LightNode behaviour."""

import pytest

from repro.chain.block import BASE_HEADER_SIZE
from repro.errors import QueryError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import HeadersRequest, HeadersResponse, QueryRequest
from repro.node.transport import InProcessTransport


class TestFullNode:
    def test_query_equals_answer(self, lvq_system, probe_addresses):
        node = FullNode(lvq_system)
        address = probe_addresses["Addr3"]
        config = lvq_system.config
        assert node.query(address).serialize(config) == node.answer(
            address
        ).serialize(config)

    def test_handle_query_rejects_empty_address(self, lvq_system):
        node = FullNode(lvq_system)
        with pytest.raises(QueryError):
            node.handle_query(QueryRequest("").serialize())

    def test_handle_headers(self, lvq_system):
        node = FullNode(lvq_system)
        payload = node.handle_headers(HeadersRequest(10).serialize())
        response = HeadersResponse.deserialize(payload, extension_kind=3)
        assert response.from_height == 10
        assert len(response.headers) == len(lvq_system.headers()) - 10

    def test_handle_headers_at_tip_plus_one_is_empty(self, lvq_system):
        """Asking from tip+1 is a no-op sync, not an error."""
        node = FullNode(lvq_system)
        payload = node.handle_headers(
            HeadersRequest(lvq_system.tip_height + 1).serialize()
        )
        response = HeadersResponse.deserialize(payload, extension_kind=3)
        assert response.headers == []

    def test_handle_headers_beyond_tip(self, lvq_system):
        node = FullNode(lvq_system)
        with pytest.raises(QueryError):
            node.handle_headers(
                HeadersRequest(lvq_system.tip_height + 2).serialize()
            )


class TestLightNode:
    def test_bootstrap_from_full_node(self, lvq_system):
        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        assert light_node.tip_height == lvq_system.tip_height
        assert light_node.headers[0] == lvq_system.headers()[0]

    def test_storage_is_headers_only(self, lvq_system):
        light_node = LightNode(lvq_system.headers(), lvq_system.config)
        expected = sum(h.size_bytes() for h in lvq_system.headers())
        assert light_node.storage_bytes() == expected
        # LVQ: 80-byte core + 64 bytes of commitments per block.
        assert expected == len(lvq_system.headers()) * (BASE_HEADER_SIZE + 64)

    def test_query_history_counts_bytes(self, lvq_system, probe_addresses):
        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        transport = InProcessTransport()
        light_node.query_history(full_node, probe_addresses["Addr4"], transport)
        result = full_node.query(probe_addresses["Addr4"])
        # Response = 1 tag byte + serialized result.
        assert transport.stats.bytes_to_client == (
            1 + result.size_bytes(lvq_system.config)
        )
        assert transport.stats.bytes_to_server > 0

    def test_query_balance(self, workload, lvq_system, probe_addresses):
        from repro.chain.utxo import balance_from_history

        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        address = probe_addresses["Addr6"]
        balance = light_node.query_balance(full_node, address)
        expected = balance_from_history(
            address, (tx for _h, tx in workload.history_of(address))
        )
        assert balance == expected

    def test_cross_system_nodes_disagree(self, lvq_system, strawman_system):
        """A light node on one system cannot consume another's answers."""
        from repro.errors import VerificationError

        full_node = FullNode(strawman_system)
        light_node = LightNode(lvq_system.headers(), lvq_system.config)
        with pytest.raises((VerificationError, Exception)):
            light_node.query_history(full_node, "1AnyAddress")
