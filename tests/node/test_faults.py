"""Unit tests for the fault-injection layer (link and peer chaos)."""

import pytest

from repro.errors import (
    EncodingError,
    RequestTimeoutError,
    TransportError,
)
from repro.node.faults import (
    ByzantineFlakyFullNode,
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
    FlakyFullNode,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import QueryRequest
from repro.node.transport import InProcessTransport, LinkModel, SimulatedClock
from repro.query.adversary import omit_one_transaction


class TestFaultSchedule:
    def test_deterministic_for_seed(self):
        a = FaultSchedule.drops(0.5, seed=11)
        b = FaultSchedule.drops(0.5, seed=11)
        draws_a = [bool(a.draw("to_server")) for _ in range(50)]
        draws_b = [bool(b.draw("to_server")) for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_scripted_fires_exactly_once(self):
        schedule = FaultSchedule.scripted([(2, FaultKind.DROP)])
        fired = [bool(schedule.draw("to_server")) for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_direction_filter(self):
        rule = FaultRule(FaultKind.CORRUPT, direction="to_client")
        schedule = FaultSchedule([rule])
        assert not schedule.draw("to_server")
        assert schedule.draw("to_client")

    def test_is_benign(self):
        assert FaultSchedule.drops(0.3).is_benign
        assert FaultSchedule.latency(2.0).is_benign
        assert not FaultSchedule(
            [FaultRule(FaultKind.CORRUPT, probability=0.1)]
        ).is_benign

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(FaultKind.DROP, direction="sideways")
        with pytest.raises(ValueError):
            FaultRule(FaultKind.DROP, probability=1.5)


class TestFaultyTransportFaults:
    def _transport(self, events, clock=None, **kwargs):
        return FaultyTransport(
            schedule=FaultSchedule.scripted(events), clock=clock, **kwargs
        )

    def test_clean_passthrough_counts_bytes(self):
        transport = self._transport([])
        assert transport.send_to_server(b"abc") == b"abc"
        assert transport.stats.bytes_to_server == 3
        assert not transport.is_closed

    def test_drop_raises_timeout_and_burns_deadline(self):
        clock = SimulatedClock()
        transport = self._transport([(0, FaultKind.DROP)], clock=clock)
        transport.arm_timeout(3.0)
        with pytest.raises(RequestTimeoutError) as excinfo:
            transport.send_to_server(b"request")
        assert excinfo.value.timeout_seconds == 3.0
        assert excinfo.value.elapsed_seconds > 3.0
        assert clock.now() > 3.0  # the client waited the timeout out
        # The sender's bytes crossed the first hop and are charged.
        assert transport.stats.bytes_to_server == 7

    def test_truncate_loses_the_tail(self):
        transport = self._transport([(0, FaultKind.TRUNCATE)])
        delivered = transport.send_to_server(b"0123456789")
        assert len(delivered) < 10
        assert b"0123456789".startswith(delivered)

    def test_corrupt_flips_bytes(self):
        transport = self._transport([(0, FaultKind.CORRUPT)])
        delivered = transport.send_to_server(b"\x00" * 64)
        assert delivered != b"\x00" * 64
        assert len(delivered) == 64

    def test_duplicate_charges_twice(self):
        transport = self._transport([(0, FaultKind.DUPLICATE)])
        delivered = transport.send_to_client(b"resp")
        assert delivered == b"resp"
        assert transport.stats.bytes_to_client == 8
        assert transport.stats.messages_to_client == 2

    def test_reorder_delivers_stale_message(self):
        transport = self._transport(
            [(0, FaultKind.REORDER), (1, FaultKind.REORDER)]
        )
        first = transport.send_to_client(b"first")
        second = transport.send_to_client(b"second")
        assert first == b"first"  # nothing earlier to deliver yet
        assert second == b"first"  # the stale one arrives instead

    def test_close_partial_bytes_recorded(self):
        transport = self._transport([(0, FaultKind.CLOSE)])
        transport.schedule.rules[0].param = 4
        with pytest.raises(TransportError):
            transport.send_to_client(b"0123456789")
        assert transport.is_closed
        assert transport.stats.bytes_to_client == 4
        assert transport.stats.messages_to_client == 0
        with pytest.raises(TransportError):
            transport.send_to_server(b"more")

    def test_delay_blows_armed_deadline(self):
        clock = SimulatedClock()
        transport = self._transport([(0, FaultKind.DELAY)], clock=clock)
        transport.schedule.rules[0].param = 10.0
        transport.arm_timeout(1.0)
        with pytest.raises(RequestTimeoutError):
            transport.send_to_server(b"req")

    def test_delay_within_deadline_passes(self):
        clock = SimulatedClock()
        transport = self._transport([(0, FaultKind.DELAY)], clock=clock)
        transport.schedule.rules[0].param = 0.5
        transport.arm_timeout(2.0)
        assert transport.send_to_server(b"req") == b"req"
        assert clock.now() == pytest.approx(0.5)

    def test_link_model_latency_charged(self):
        clock = SimulatedClock()
        link = LinkModel(bandwidth_bps=1000, rtt_seconds=0.1)
        transport = FaultyTransport(clock=clock, link=link)
        transport.send_to_server(b"x" * 500)
        assert clock.now() == pytest.approx(0.1 + 0.5)

    def test_fault_counts_accumulate(self):
        schedule = FaultSchedule.scripted(
            [(0, FaultKind.TRUNCATE), (1, FaultKind.CORRUPT)]
        )
        transport = FaultyTransport(schedule=schedule)
        transport.send_to_server(b"0123456789")
        transport.send_to_client(b"0123456789")
        assert schedule.fault_counts == {"truncate": 1, "corrupt": 1}

    def test_schedule_survives_reconnect(self):
        """A fresh transport per attempt continues the same script."""
        schedule = FaultSchedule.scripted([(1, FaultKind.DROP)])
        first = FaultyTransport(schedule=schedule)
        first.send_to_server(b"ok")  # message 0: clean
        second = FaultyTransport(schedule=schedule)  # reconnect
        with pytest.raises(RequestTimeoutError):
            second.send_to_server(b"dropped")  # message 1: scripted drop


class TestFaultyTransportEndToEnd:
    def test_corrupted_response_degrades_to_typed_error(
        self, lvq_system, probe_addresses
    ):
        """Corruption on the response leg: the light node rejects with a
        ReproError (decode or verification), never a wrong history."""
        from repro.errors import ReproError

        full_node = FullNode(lvq_system)
        light = LightNode.from_full_node(full_node)
        schedule = FaultSchedule(
            [FaultRule(FaultKind.CORRUPT, direction="to_client", param=4)],
            seed=5,
        )
        transport = FaultyTransport(schedule=schedule)
        with pytest.raises(ReproError):
            light.query_history(
                full_node, probe_addresses["Addr6"], transport
            )

    def test_truncated_response_is_encoding_error(
        self, lvq_system, probe_addresses
    ):
        full_node = FullNode(lvq_system)
        light = LightNode.from_full_node(full_node)
        schedule = FaultSchedule(
            [FaultRule(FaultKind.TRUNCATE, direction="to_client", param=40)]
        )
        transport = FaultyTransport(schedule=schedule)
        with pytest.raises(EncodingError):
            light.query_history(
                full_node, probe_addresses["Addr5"], transport
            )


class TestFlakyNodes:
    def test_fail_on_scripted_requests(self, lvq_system, probe_addresses):
        node = FlakyFullNode(lvq_system, fail_on=(0, 2))
        request = QueryRequest(probe_addresses["Addr5"]).serialize()
        with pytest.raises(TransportError):
            node.handle_query(request)
        node.handle_query(request)  # request 1 succeeds
        with pytest.raises(TransportError):
            node.handle_query(request)
        assert node.failures_injected == 2
        assert node.request_index == 3

    def test_flaky_is_honest_when_it_serves(self, lvq_system, probe_addresses):
        node = FlakyFullNode(lvq_system, fail_on=(0,))
        light = LightNode.from_full_node(node)
        with pytest.raises(TransportError):
            light.query_history(node, probe_addresses["Addr5"])
        history = light.query_history(node, probe_addresses["Addr5"])
        assert history.transactions

    def test_probabilistic_failures_are_seeded(self, lvq_system):
        a = FlakyFullNode(lvq_system, failure_rate=0.5, seed=9)
        b = FlakyFullNode(lvq_system, failure_rate=0.5, seed=9)
        request = QueryRequest("addr").serialize()

        def pattern(node):
            outcomes = []
            for _ in range(20):
                try:
                    node.handle_headers(
                        b"\x03\x00"
                    )  # cheap RPC, same failure gate
                    outcomes.append(True)
                except TransportError:
                    outcomes.append(False)
            return outcomes

        assert pattern(a) == pattern(b)
        assert not all(pattern(a))

    def test_byzantine_flaky_lies_and_flaps(self, lvq_system, probe_addresses):
        from repro.errors import ReproError, VerificationError

        node = ByzantineFlakyFullNode(
            lvq_system, omit_one_transaction, fail_on=(0,)
        )
        light = LightNode.from_full_node(node)
        address = probe_addresses["Addr6"]
        with pytest.raises(TransportError):
            light.query_history(node, address)
        with pytest.raises(VerificationError):
            light.query_history(node, address)

    def test_byzantine_attack_rate_zero_is_honest(
        self, lvq_system, probe_addresses
    ):
        node = ByzantineFlakyFullNode(
            lvq_system, omit_one_transaction, attack_rate=0.0
        )
        light = LightNode.from_full_node(node)
        history = light.query_history(node, probe_addresses["Addr6"])
        assert history.transactions

    def test_validation(self, lvq_system):
        with pytest.raises(ValueError):
            FlakyFullNode(lvq_system, failure_rate=2.0)
        with pytest.raises(ValueError):
            ByzantineFlakyFullNode(
                lvq_system, omit_one_transaction, attack_rate=-0.1
            )
