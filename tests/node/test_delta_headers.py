"""The §8.2 delta-encoded header frame and its sync path.

The safety property: the decoder *derives* every omitted prev-hash by
hashing the previous header, so the frame cannot assert linkage — the
client recomputes it.  A delta frame must therefore decode to exactly
the headers a full frame carries, or fail typed; and a sync over the
delta path must accept exactly the chains the full path accepts.
"""

import pytest

from repro.errors import EncodingError, ReproError, VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import (
    DeltaHeadersRequest,
    DeltaHeadersResponse,
    HeadersRequest,
    HeadersResponse,
)
from repro.node.transport import InProcessTransport


def _fresh_client(system):
    return LightNode([system.headers()[0]], system.config)


def test_frame_round_trips_byte_identically(any_system):
    headers = any_system.headers()[1:]
    config = any_system.config
    frame = DeltaHeadersResponse(1, headers).serialize()
    decoded = DeltaHeadersResponse.deserialize(
        frame, config.header_extension_kind, config.header_bloom_bytes
    )
    assert decoded.from_height == 1
    assert [h.serialize() for h in decoded.headers] == [
        h.serialize() for h in headers
    ]


def test_frame_is_smaller_than_full(any_system):
    headers = any_system.headers()[1:]
    full = HeadersResponse(1, headers).serialize()
    delta = DeltaHeadersResponse(1, headers).serialize()
    # Each non-first header drops its 32-byte prev-hash and varint-packs
    # the core fields: > 32 bytes saved per header.
    assert delta < full or len(delta) <= len(full) - 32 * (len(headers) - 1)


def test_encoder_refuses_unchained_headers(lvq_system):
    headers = list(lvq_system.headers()[1:])
    headers[2], headers[3] = headers[3], headers[2]
    with pytest.raises(EncodingError):
        DeltaHeadersResponse(1, headers).serialize()


def test_empty_and_single_header_frames(lvq_system):
    config = lvq_system.config
    for headers in ([], [lvq_system.headers()[5]]):
        frame = DeltaHeadersResponse(6, headers).serialize()
        decoded = DeltaHeadersResponse.deserialize(
            frame, config.header_extension_kind, config.header_bloom_bytes
        )
        assert [h.serialize() for h in decoded.headers] == [
            h.serialize() for h in headers
        ]


def test_delta_sync_equals_full_sync(any_system):
    full_node = FullNode(any_system)
    via_full = _fresh_client(any_system)
    via_delta = _fresh_client(any_system)
    t_full, t_delta = InProcessTransport(), InProcessTransport()
    assert via_full.sync_headers(full_node, t_full) == (
        via_delta.sync_headers(full_node, t_delta, delta=True)
    )
    assert [h.serialize() for h in via_full.headers] == [
        h.serialize() for h in via_delta.headers
    ]
    assert t_delta.stats.bytes_to_client < t_full.stats.bytes_to_client


def test_delta_sync_resumes_mid_chain(lvq_system):
    full_node = FullNode(lvq_system)
    client = LightNode(lvq_system.headers()[:20], lvq_system.config)
    accepted = client.sync_headers(full_node, delta=True)
    assert accepted == lvq_system.tip_height - 19
    assert [h.serialize() for h in client.headers] == [
        h.serialize() for h in lvq_system.headers()
    ]


def test_request_tags_differ():
    plain = HeadersRequest(3).serialize()
    delta = DeltaHeadersRequest(3).serialize()
    assert plain[1:] == delta[1:] and plain[0] != delta[0]


class _TamperingFullNode(FullNode):
    """Serves delta frames with one byte flipped at a chosen offset."""

    def __init__(self, system, offset):
        super().__init__(system)
        self.offset = offset

    def handle_headers(self, payload):
        frame = bytearray(super().handle_headers(payload))
        frame[self.offset % len(frame)] ^= 0x01
        return bytes(frame)


@pytest.mark.parametrize("offset", [3, 10, 50, 200, 900, 2500])
def test_tampered_delta_frames_never_weaken_acceptance(lvq_system, offset):
    """Any bit flip yields a typed error or a chain the *full* path's
    acceptance rules would equally accept.

    Without proof-of-work a lying server can always serve a
    self-consistent forged suffix — through either frame format; that is
    the multi-peer layer's problem.  What the delta codec must guarantee
    is that it adds no acceptance: whatever survives a flip must still
    link onto the client's local chain under the exact checks the full
    path runs (prev-hash equals the client's own hash of the previous
    header).  The derived prev-hashes make that hold by re-hashing, and
    this test pins it.
    """
    liar = _TamperingFullNode(lvq_system, offset)
    client = _fresh_client(lvq_system)
    genesis_id = client.headers[0].block_id()
    try:
        client.sync_headers(liar, delta=True)
    except ReproError:
        return  # typed rejection (decode error or linkage failure)
    previous_id = genesis_id
    for header in client.headers[1:]:
        assert header.prev_hash == previous_id
        previous_id = header.block_id()


def test_forged_tip_extension_fails_linkage(lvq_system):
    """A delta frame can only splice via its *first* (full) header's
    prev-hash — and the client's linkage check kills it."""

    class _Splicer(FullNode):
        def handle_headers(self, payload):
            request = DeltaHeadersRequest.deserialize(payload)
            first = self.system.chain.headers_from(request.from_height)[0]
            forged = type(first)(
                b"\x42" * 32,
                first.merkle_root,
                first.timestamp,
                first.extension,
                first.version,
                first.bits,
                first.nonce,
            )
            return DeltaHeadersResponse(
                request.from_height, [forged]
            ).serialize()

    client = _fresh_client(lvq_system)
    with pytest.raises(VerificationError):
        client.sync_headers(_Splicer(lvq_system), delta=True)
