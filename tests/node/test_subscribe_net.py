"""Streaming subscriptions over real loopback sockets (PROTOCOL.md §10).

End-to-end shape: a FullNode + SubscriptionRegistry behind a NetServer,
a SubscriptionSession on a real TCP connection, live appends and reorgs
on the server.  Asserted invariants:

* every surfaced update was verified against trusted headers — the
  histories match the honest in-process answer byte for byte;
* a healthy subscribed connection survives the server's idle deadline
  via keepalive pings (satellite 1), while a genuinely silent one is
  reaped and counted in ``stats.subscribers_reaped``;
* a stalled consumer is evicted with the typed final frame and never
  blocks its neighbours (the socket half of satellite 3);
* the ``repro serve --mine-blocks`` / ``repro watch`` CLI pair streams
  parseable lines and shuts down cleanly on SIGINT (satellite 2).
"""

import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.errors import RequestShedError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import (
    PushRetraction,
    PushUpdate,
    SubscribeAck,
    SubscribeRequest,
    SubscriptionEvicted,
    UnsubscribeRequest,
)
from repro.node.net import FRAME_HEADER, EventLoopThread, NetServer
from repro.node.netclient import ClientConnection
from repro.node.subscribe import (
    SubscriptionRegistry,
    SubscriptionSession,
    WatchRetraction,
    WatchUpdate,
)
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def loop_thread():
    thread = EventLoopThread("test-subscribe-loop")
    yield thread
    thread.stop()


def _build(num_blocks=8, extra=10, seed=7, txs=6):
    workload = generate_workload(
        WorkloadParams(num_blocks=num_blocks + extra, txs_per_block=txs, seed=seed)
    )
    config = SystemConfig.lvq(bf_bytes=192, segment_len=8)
    system = build_system(workload.bodies[: num_blocks + 1], config)
    return workload, config, system


def _serve(system, loop_thread, **kwargs):
    node = FullNode(system)
    registry = SubscriptionRegistry(
        node, max_outbox=kwargs.pop("max_outbox", 256)
    )
    server = NetServer(
        node,
        subscriptions=registry,
        loop_thread=loop_thread,
        **kwargs,
    ).start()
    return node, registry, server


def _collect(session, want, timeout=10.0):
    """Drain events until ``want(events)`` is satisfied or timeout."""
    events = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        event = session.next_event(timeout=0.2)
        if event is not None:
            events.append(event)
        if want(events):
            return events
    raise AssertionError(f"condition not reached; events: {events}")


def _truth_histories(node, config, addresses, height):
    """The honest single-height answer, verified locally."""
    from repro.query.batch import verify_batch_result

    batch = node.answer_batch(list(addresses), height, height)
    return verify_batch_result(
        batch,
        node.system.headers(),
        config,
        list(addresses),
        (height, height),
    )


def _txids(histories):
    return {
        address: [(h, tx.txid()) for h, tx in history.transactions]
        for address, history in histories.items()
    }


# ---------------------------------------------------------------------------
# live updates and retractions


def test_pushed_updates_match_the_honest_answer(loop_thread):
    workload, config, system = _build()
    node, registry, server = _serve(system, loop_thread)
    light = LightNode(system.headers(), config)
    watched = list(workload.probe_addresses.values())[:3]
    try:
        with SubscriptionSession(
            light, server.address, watched, keepalive=1.0
        ) as session:
            assert session.wait_subscribed(10.0)
            for _ in range(4):
                node.extend_chain([workload.bodies[system.tip_height + 1]])
            events = _collect(
                session,
                lambda evs: sum(isinstance(e, WatchUpdate) for e in evs) >= 4,
            )
            updates = [e for e in events if isinstance(e, WatchUpdate)]
            assert [u.height for u in updates] == list(
                range(9, 13)
            ), "one update per append, in order, no gaps"
            for update in updates:
                truth = _truth_histories(node, config, watched, update.height)
                assert _txids(update.histories) == _txids(truth)
            assert light.tip_height == system.tip_height
            assert session.stats.updates_verified == 4
            assert session.stats.updates_rejected == 0
    finally:
        server.close()


def test_reorg_pushes_retraction_then_replacement_blocks(loop_thread):
    workload, config, system = _build(extra=12)
    node, registry, server = _serve(system, loop_thread)
    light = LightNode(system.headers(), config)
    watched = list(workload.probe_addresses.values())[:2]
    try:
        with SubscriptionSession(
            light, server.address, watched, keepalive=1.0
        ) as session:
            assert session.wait_subscribed(10.0)
            for _ in range(3):
                node.extend_chain([workload.bodies[system.tip_height + 1]])
            _collect(
                session,
                lambda evs: sum(isinstance(e, WatchUpdate) for e in evs) >= 3,
            )
            old_tip = system.tip_height
            fork = old_tip - 2
            alt = generate_workload(
                WorkloadParams(num_blocks=old_tip + 4, txs_per_block=6, seed=99)
            )
            node.reorg(fork, alt.bodies[fork + 1 : old_tip + 2])
            new_tip = system.tip_height
            assert new_tip > old_tip

            events = _collect(
                session,
                lambda evs: any(isinstance(e, WatchRetraction) for e in evs)
                and light.tip_height == new_tip,
            )
            retraction = next(
                e for e in events if isinstance(e, WatchRetraction)
            )
            assert retraction.fork_height == fork
            assert retraction.old_tip == old_tip
            # The replacement branch arrived verified, frame by frame.
            assert [
                h.block_id() for h in light.headers
            ] == [h.block_id() for h in system.headers()]
            assert session.stats.updates_rejected == 0
    finally:
        server.close()


def test_unsubscribe_over_the_wire_and_no_marker_collision(loop_thread):
    """Wire unsubscribe round-trips — and no tag shadows a frame marker.

    Regression: the original tag assignment gave UnsubscribeRequest and
    PushUpdate the bytes 0x10/0x11, which first-byte dispatch reserves
    for zlib/zstd compressed frames (§9.5) — an unsubscribe on the wire
    was "decompressed" into an EncodingError.  Subscription tags now
    start at 0x14.
    """
    from repro.node.transport import FRAME_ZLIB, FRAME_ZSTD

    for message_class in (
        SubscribeRequest,
        SubscribeAck,
        UnsubscribeRequest,
        PushUpdate,
        PushRetraction,
        SubscriptionEvicted,
    ):
        assert message_class.type_tag not in (FRAME_ZLIB, FRAME_ZSTD), (
            f"{message_class.__name__} tag collides with a frame marker"
        )

    workload, config, system = _build()
    node, registry, server = _serve(system, loop_thread)
    watched = list(workload.probe_addresses.values())[:2]
    try:
        connection = ClientConnection(server.address)
        try:
            ack = SubscribeAck.deserialize(
                connection.request(SubscribeRequest(watched).serialize(), 5.0)
            )
            assert registry.stats.active == 1
            echo = SubscribeAck.deserialize(
                connection.request(
                    UnsubscribeRequest(ack.subscription_id).serialize(), 5.0
                )
            )
            assert echo.subscription_id == ack.subscription_id
            assert echo.tip_height == system.tip_height
            assert registry.stats.active == 0
            # The channel is mute now: an append pushes nothing here.
            node.extend_chain([workload.bodies[system.tip_height + 1]])
            assert registry.stats.update_frames == 0
        finally:
            connection.close()
    finally:
        server.close()


# ---------------------------------------------------------------------------
# satellite 1: idle deadline vs keepalive


def test_keepalive_outlives_the_idle_deadline(loop_thread):
    workload, config, system = _build()
    node, registry, server = _serve(system, loop_thread, idle_timeout=0.6)
    light = LightNode(system.headers(), config)
    watched = [list(workload.probe_addresses.values())[0]]
    try:
        with SubscriptionSession(
            light, server.address, watched, keepalive=0.2
        ) as session:
            # Several idle windows pass with no appends at all.
            time.sleep(2.0)
            assert session.stats.keepalives >= 2
            assert session.stats.disconnects == 0
            assert server.stats.subscribers_reaped == 0
            assert registry.stats.active == 1
            # ...and the stream still works afterwards.
            node.extend_chain([workload.bodies[system.tip_height + 1]])
            _collect(
                session,
                lambda evs: any(isinstance(e, WatchUpdate) for e in evs),
            )
    finally:
        server.close()


def test_silent_subscriber_is_reaped_and_counted(loop_thread):
    workload, config, system = _build()
    node, registry, server = _serve(system, loop_thread, idle_timeout=0.3)
    try:
        conn = ClientConnection(server.address)
        conn.send_frame(
            SubscribeRequest(["whoever"]).serialize(), time.monotonic() + 5.0
        )
        ack = SubscribeAck.deserialize(conn.recv_frame(time.monotonic() + 5.0))
        assert ack.subscription_id >= 1
        assert registry.stats.active == 1

        # No pings, no frames: the idle deadline must reap and the reap
        # must be attributed to a live subscriber.
        deadline = time.monotonic() + 5.0
        while registry.stats.active and time.monotonic() < deadline:
            time.sleep(0.05)
        assert registry.stats.active == 0, "registry must forget the reaped sub"
        assert server.stats.subscribers_reaped == 1
        assert server.stats.connections_reaped == 1
        conn.close()
    finally:
        server.close()


# ---------------------------------------------------------------------------
# satellite 3, socket half: slow-consumer eviction on a real connection


def test_slow_socket_consumer_gets_typed_eviction_frame(loop_thread):
    workload, config, system = _build(num_blocks=8, extra=80, seed=11)
    node, registry, server = _serve(
        system,
        loop_thread,
        max_outbox=4,
        push_outbox=4,
        # Zero transport buffer: the stalled socket's backpressure hits
        # the outbox as soon as the kernel buffers fill, instead of
        # hiding behind asyncio's 64 KiB high-water default.
        push_buffer_bytes=0,
        idle_timeout=30.0,
        write_timeout=30.0,
    )
    # Clamp the kernel send buffer (inherited by accepted sockets, and an
    # explicit SO_SNDBUF disables autotuning) so the stalled reader's
    # backpressure reaches the outbox within a few dozen frames instead
    # of vanishing into megabytes of autotuned kernel buffer.
    for listener in server._server.sockets:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
    watched = list(workload.probe_addresses.values())[:4]
    light = LightNode(system.headers(), config)
    try:
        # A healthy session rides along to prove no head-of-line blocking.
        healthy = SubscriptionSession(
            light, server.address, watched, keepalive=1.0
        ).start()
        assert healthy.wait_subscribed(10.0)

        # The stalled client: tiny receive buffer, subscribes, then
        # stops reading entirely.
        raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        raw.connect(server.address)
        request = SubscribeRequest(watched).serialize()
        raw.sendall(FRAME_HEADER.pack(len(request)) + request)
        header = raw.recv(FRAME_HEADER.size)
        (length,) = FRAME_HEADER.unpack(header)
        ack = SubscribeAck.deserialize(raw.recv(length))
        assert registry.stats.active == 2

        appended = 0
        deadline = time.monotonic() + 30.0
        while (
            registry.stats.evicted_slow == 0
            and system.tip_height + 1 < len(workload.bodies)
            and time.monotonic() < deadline
        ):
            node.extend_chain([workload.bodies[system.tip_height + 1]])
            appended += 1
            # Pace on the healthy watcher so only the stalled socket backs
            # up: eviction must single out the consumer that stopped
            # reading, not whoever verifies slowest.
            while (
                light.tip_height < system.tip_height
                and registry.stats.evicted_slow == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert registry.stats.evicted_slow == 1, (
            f"stalled consumer not evicted after {appended} appends"
        )
        assert registry.stats.frames_dropped >= registry.max_outbox
        assert registry.stats.active == 1, "outbox entry reclaimed"

        # The healthy neighbour kept receiving everything, unblocked.
        final_tip = system.tip_height
        deadline = time.monotonic() + 20.0
        while light.tip_height < final_tip and time.monotonic() < deadline:
            time.sleep(0.05)
        assert light.tip_height == final_tip
        assert healthy.stats.updates_rejected == 0
        healthy.stop()

        # The stalled client, finally reading, sees pending pushes and
        # then the typed eviction notice as the stream's final frame.
        raw.settimeout(10.0)
        saw_eviction = False
        buffered = b""
        while not saw_eviction:
            while len(buffered) < FRAME_HEADER.size:
                chunk = raw.recv(65536)
                if not chunk:
                    raise AssertionError(
                        "connection closed before the eviction frame"
                    )
                buffered += chunk
            (length,) = FRAME_HEADER.unpack(buffered[: FRAME_HEADER.size])
            while len(buffered) < FRAME_HEADER.size + length:
                chunk = raw.recv(65536)
                if not chunk:
                    raise AssertionError("truncated frame from the server")
                buffered += chunk
            frame = buffered[FRAME_HEADER.size : FRAME_HEADER.size + length]
            buffered = buffered[FRAME_HEADER.size + length :]
            if frame[0] == SubscriptionEvicted.type_tag:
                notice = SubscriptionEvicted.deserialize(frame)
                assert notice.subscription_id == ack.subscription_id
                assert notice.dropped_frames >= registry.max_outbox
                assert notice.reason == "outbox overflow"
                saw_eviction = True
            else:
                assert frame[0] == PushUpdate.type_tag
        # After the final frame the server severs the connection.
        raw.settimeout(10.0)
        while True:
            tail = raw.recv(65536)
            if not tail:
                break
        raw.close()
    finally:
        server.close()


# ---------------------------------------------------------------------------
# §11: a shed backfill heals through the verified pull path


class _ShedFirstSession(SubscriptionSession):
    """A session whose first N backfill batch queries are refused with
    a §11 shed frame — the remote itself stays honest throughout."""

    def __init__(self, *args, shed_times=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.sheds_left = shed_times

    def _remote(self):
        inner = super()._remote()
        outer = self

        class _Shedding:
            def handle_batch_query(self, payload):
                if outer.sheds_left > 0:
                    outer.sheds_left -= 1
                    raise RequestShedError(
                        "batch", "shed_batch", retry_after=0.05
                    )
                return inner.handle_batch_query(payload)

            def __getattr__(self, name):
                return getattr(inner, name)

        return _Shedding()


def test_shed_backfill_heals_through_verified_pull(loop_thread):
    """A subscriber whose catch-up backfill is load-shed (typed §11
    refusal, retry hint) waits the hint out and completes the identical
    verified range query — no teardown, no unverified data, no gap."""
    workload, config, system = _build(extra=12)
    node, registry, server = _serve(system, loop_thread)
    light = LightNode(system.headers(), config)
    watched = list(workload.probe_addresses.values())[:3]
    gap_first = system.tip_height + 1
    for _ in range(3):
        node.extend_chain([workload.bodies[system.tip_height + 1]])
    gap_last = system.tip_height

    session = _ShedFirstSession(
        light, server.address, watched, keepalive=1.0, shed_times=2
    )
    session.start()
    try:
        assert session.wait_subscribed(10.0)
        deadline = time.monotonic() + 15.0
        events = []
        while light.tip_height < system.tip_height:
            assert time.monotonic() < deadline, (
                f"backfill never healed; events: {events}"
            )
            event = session.next_event(timeout=0.2)
            if event is not None:
                events.append(event)
        assert session.sheds_left == 0, "the shed path was never exercised"
        assert session.stats.backpressure_waits == 2
        backfills = [e for e in events if e.kind == "backfill"]
        assert any(
            b.first_height <= gap_first and b.last_height >= gap_last
            for b in backfills
        ), f"gap [{gap_first},{gap_last}] not covered: {backfills}"
        # The healed answer is the honest one, height by height.
        for backfill in backfills:
            for height in range(
                backfill.first_height, backfill.last_height + 1
            ):
                truth = _truth_histories(node, config, watched, height)
                for address, history in backfill.histories.items():
                    got = [
                        (h, tx.txid())
                        for h, tx in history.transactions
                        if h == height
                    ]
                    expected = [
                        (h, tx.txid())
                        for h, tx in truth[address].transactions
                        if h == height
                    ]
                    assert got == expected, (
                        f"backfill diverged at {height} for {address}"
                    )
        assert session.stats.verification_failures == 0
    finally:
        session.stop()
        server.close()


# ---------------------------------------------------------------------------
# satellite 2: the CLI pair, as real subprocesses


_SERVE_RE = re.compile(r"serving on ([0-9.]+):(\d+)")


def _spawn(args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )


def test_cli_watch_streams_parseable_lines_and_stops_cleanly():
    chain = ["--blocks", "12", "--txs-per-block", "6", "--seed", "31"]
    daemon = _spawn(
        ["serve", *chain, "--port", "0",
         "--mine-blocks", "24", "--mine-interval", "0.5"]
    )
    watcher = None
    try:
        address = None
        deadline = time.monotonic() + 60.0
        while address is None:
            line = daemon.stdout.readline()
            match = _SERVE_RE.search(line or "")
            if match:
                address = f"{match.group(1)}:{match.group(2)}"
            assert daemon.poll() is None and time.monotonic() < deadline, (
                "daemon failed to start"
            )

        watcher = _spawn(
            ["watch", *chain, "--connect", address,
             "Addr4", "Addr5", "--max-updates", "3", "--keepalive", "0.5"]
        )
        out, _ = watcher.communicate(timeout=60.0)
        assert watcher.returncode == 0, out
        update_lines = [
            line for line in out.splitlines()
            if re.fullmatch(r"update height=\d+ hits=\d+ quiet=\d+ txs=\d+", line)
        ]
        assert len(update_lines) >= 3, out
        assert "0 unverified surfaced" in out

        # Ctrl-C on a fresh watcher: graceful shutdown, still exit 0.
        watcher = _spawn(["watch", *chain, "--connect", address, "Addr4"])
        time.sleep(2.0)
        assert watcher.poll() is None
        watcher.send_signal(signal.SIGINT)
        out, _ = watcher.communicate(timeout=30.0)
        assert watcher.returncode == 0, out
        assert "watch done:" in out
    finally:
        if watcher is not None and watcher.poll() is None:
            watcher.kill()
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(30.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
