"""Trailing-byte strictness audit over every wire message type.

A deserializer that tolerates trailing garbage gives an attacker (or a
corrupting link) a free byte-channel and makes "byte-identical" result
comparisons unsound.  Every message ``deserialize`` must consume the
payload exactly: one extra byte anywhere — appended to the message, or
smuggled inside a nested length-prefixed blob — must raise
:class:`EncodingError`.

The TCP layer gets the same treatment from the *delivery* side: a frame
dribbled in one byte at a time, or split at every header/body boundary,
must produce a response byte-identical to the in-process handler call —
TCP segmentation can never change what a server decodes.
"""

import socket
import time

import pytest

from repro.errors import EncodingError
from repro.node.full_node import FullNode
from repro.node.messages import (
    BatchQueryRequest,
    BatchQueryResponse,
    ErrorResponse,
    HeadersRequest,
    HeadersResponse,
    PingRequest,
    PongResponse,
    QueryRequest,
    QueryResponse,
)

MESSAGE_TYPES = (
    "QueryRequest",
    "QueryResponse",
    "BatchQueryRequest",
    "BatchQueryResponse",
    "HeadersRequest",
    "HeadersResponse",
    "ErrorResponse",
    "PingRequest",
    "PongResponse",
)


def _encode_and_decoder(message_type, system, address):
    """Return (serialized_bytes, strict_decoder) for one message type."""
    config = system.config
    node = FullNode(system)
    if message_type == "QueryRequest":
        return (
            QueryRequest(address).serialize(),
            QueryRequest.deserialize,
        )
    if message_type == "QueryResponse":
        return (
            node.handle_query(QueryRequest(address).serialize()),
            lambda raw: QueryResponse.deserialize(raw, config),
        )
    if message_type == "BatchQueryRequest":
        return (
            BatchQueryRequest([address]).serialize(),
            BatchQueryRequest.deserialize,
        )
    if message_type == "BatchQueryResponse":
        return (
            node.handle_batch_query(BatchQueryRequest([address]).serialize()),
            lambda raw: BatchQueryResponse.deserialize(raw, config),
        )
    if message_type == "HeadersRequest":
        return (
            HeadersRequest(0).serialize(),
            HeadersRequest.deserialize,
        )
    if message_type == "HeadersResponse":
        return (
            node.handle_headers(HeadersRequest(0).serialize()),
            lambda raw: HeadersResponse.deserialize(
                raw, config.header_extension_kind, config.header_bloom_bytes
            ),
        )
    if message_type == "ErrorResponse":
        return (
            ErrorResponse("QueryError", "bad range", (3, 9)).serialize(),
            ErrorResponse.deserialize,
        )
    if message_type == "PingRequest":
        return (PingRequest(77).serialize(), PingRequest.deserialize)
    assert message_type == "PongResponse"
    return (PongResponse(77, 48).serialize(), PongResponse.deserialize)


@pytest.mark.parametrize("message_type", MESSAGE_TYPES)
class TestTrailingBytes:
    def test_clean_roundtrip(self, any_system, probe_addresses, message_type):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        decode(raw)  # must not raise

    @pytest.mark.parametrize("garbage", [b"\x00", b"\xff", b"\x00\x01\x02"])
    def test_trailing_garbage_rejected(
        self, any_system, probe_addresses, message_type, garbage
    ):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        with pytest.raises(EncodingError):
            decode(raw + garbage)

    def test_truncation_rejected(
        self, any_system, probe_addresses, message_type
    ):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        with pytest.raises(EncodingError):
            decode(raw[:-1])

    def test_empty_rejected(self, any_system, probe_addresses, message_type):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        with pytest.raises(EncodingError):
            decode(b"")


# ---------------------------------------------------------------------------
# delivery strictness over real TCP: segmentation must be invisible


@pytest.fixture(scope="module")
def tcp_served_node(request):
    """A served LVQ node, started once for the delivery-strictness tests."""
    from repro.node.net import EventLoopThread, NetServer

    lvq_system = request.getfixturevalue("lvq_system")
    loop_thread = EventLoopThread("test-strictness-loop")
    node = FullNode(lvq_system)
    server = NetServer(
        node, idle_timeout=30.0, read_timeout=10.0, loop_thread=loop_thread
    )
    server.start()
    yield server, node
    server.close()
    loop_thread.stop()


def _tcp_exchange_with_chunks(address, chunks):
    """Send pre-split wire bytes (with pauses between chunks) and read
    one full response frame back."""
    from repro.node.net import FRAME_HEADER

    with socket.create_connection(address, timeout=10.0) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        for chunk in chunks:
            sock.sendall(chunk)
            time.sleep(0.002)  # force distinct TCP segments
        header = b""
        while len(header) < FRAME_HEADER.size:
            piece = sock.recv(FRAME_HEADER.size - len(header))
            assert piece, "server closed before the response header"
            header += piece
        (length,) = FRAME_HEADER.unpack(header)
        body = b""
        while len(body) < length:
            piece = sock.recv(length - len(body))
            assert piece, "server closed mid-response"
            body += piece
        return body


def _wire_bytes(frame):
    from repro.node.net import FRAME_HEADER

    return FRAME_HEADER.pack(len(frame)) + frame


def test_tcp_byte_dribble_matches_in_process(
    tcp_served_node, probe_addresses
):
    """The whole request delivered ONE BYTE AT A TIME: the decoded
    request — hence the response — must be byte-identical to the
    in-process handler call (InProcessTransport's delivery)."""
    server, node = tcp_served_node
    request = QueryRequest(probe_addresses["Addr5"]).serialize()
    expected = node.handle_query(request)

    wire = _wire_bytes(request)
    dribbled = [wire[i : i + 1] for i in range(len(wire))]
    assert _tcp_exchange_with_chunks(server.address, dribbled) == expected


@pytest.mark.parametrize("split", [1, 2, 3, 4])
def test_tcp_header_boundary_splits_match_in_process(
    tcp_served_node, probe_addresses, split
):
    """The wire bytes split at every header-boundary offset (inside the
    4-byte length prefix and exactly between header and body)."""
    server, node = tcp_served_node
    request = QueryRequest(probe_addresses["Addr4"]).serialize()
    expected = node.handle_query(request)

    wire = _wire_bytes(request)
    chunks = [wire[:split], wire[split:]]
    assert _tcp_exchange_with_chunks(server.address, chunks) == expected


def test_tcp_back_to_back_frames_in_one_segment(
    tcp_served_node, probe_addresses
):
    """Two frames coalesced into a single send must still produce two
    correct responses — the inverse segmentation hazard."""
    from repro.node.net import FRAME_HEADER

    server, node = tcp_served_node
    first = QueryRequest(probe_addresses["Addr4"]).serialize()
    second = QueryRequest(probe_addresses["Addr5"]).serialize()
    with socket.create_connection(server.address, timeout=10.0) as sock:
        sock.sendall(_wire_bytes(first) + _wire_bytes(second))
        responses = []
        for _ in range(2):
            header = b""
            while len(header) < FRAME_HEADER.size:
                header += sock.recv(FRAME_HEADER.size - len(header))
            (length,) = FRAME_HEADER.unpack(header)
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
            responses.append(body)
    assert responses[0] == node.handle_query(first)
    assert responses[1] == node.handle_query(second)


def test_nested_header_blob_trailing_byte_rejected(lvq_system):
    """Garbage hidden *inside* a length-prefixed header blob (so the
    outer framing still lines up) must still be rejected."""
    from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint

    node = FullNode(lvq_system)
    raw = node.handle_headers(HeadersRequest(0).serialize())
    config = lvq_system.config

    # Re-frame: append one byte to the first header's var_bytes payload.
    reader = ByteReader(raw)
    tag = reader.bytes(1)
    from_height = reader.varint()
    count = reader.varint()
    first_blob = reader.var_bytes()
    rest = reader.bytes(reader.remaining)
    tampered = (
        tag
        + write_varint(from_height)
        + write_varint(count)
        + write_var_bytes(first_blob + b"\x00")
        + rest
    )
    with pytest.raises(EncodingError):
        HeadersResponse.deserialize(
            tampered, config.header_extension_kind, config.header_bloom_bytes
        )
