"""Trailing-byte strictness audit over every wire message type.

A deserializer that tolerates trailing garbage gives an attacker (or a
corrupting link) a free byte-channel and makes "byte-identical" result
comparisons unsound.  Every message ``deserialize`` must consume the
payload exactly: one extra byte anywhere — appended to the message, or
smuggled inside a nested length-prefixed blob — must raise
:class:`EncodingError`.
"""

import pytest

from repro.errors import EncodingError
from repro.node.full_node import FullNode
from repro.node.messages import (
    BatchQueryRequest,
    BatchQueryResponse,
    HeadersRequest,
    HeadersResponse,
    QueryRequest,
    QueryResponse,
)

MESSAGE_TYPES = (
    "QueryRequest",
    "QueryResponse",
    "BatchQueryRequest",
    "BatchQueryResponse",
    "HeadersRequest",
    "HeadersResponse",
)


def _encode_and_decoder(message_type, system, address):
    """Return (serialized_bytes, strict_decoder) for one message type."""
    config = system.config
    node = FullNode(system)
    if message_type == "QueryRequest":
        return (
            QueryRequest(address).serialize(),
            QueryRequest.deserialize,
        )
    if message_type == "QueryResponse":
        return (
            node.handle_query(QueryRequest(address).serialize()),
            lambda raw: QueryResponse.deserialize(raw, config),
        )
    if message_type == "BatchQueryRequest":
        return (
            BatchQueryRequest([address]).serialize(),
            BatchQueryRequest.deserialize,
        )
    if message_type == "BatchQueryResponse":
        return (
            node.handle_batch_query(BatchQueryRequest([address]).serialize()),
            lambda raw: BatchQueryResponse.deserialize(raw, config),
        )
    if message_type == "HeadersRequest":
        return (
            HeadersRequest(0).serialize(),
            HeadersRequest.deserialize,
        )
    assert message_type == "HeadersResponse"
    return (
        node.handle_headers(HeadersRequest(0).serialize()),
        lambda raw: HeadersResponse.deserialize(
            raw, config.header_extension_kind, config.header_bloom_bytes
        ),
    )


@pytest.mark.parametrize("message_type", MESSAGE_TYPES)
class TestTrailingBytes:
    def test_clean_roundtrip(self, any_system, probe_addresses, message_type):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        decode(raw)  # must not raise

    @pytest.mark.parametrize("garbage", [b"\x00", b"\xff", b"\x00\x01\x02"])
    def test_trailing_garbage_rejected(
        self, any_system, probe_addresses, message_type, garbage
    ):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        with pytest.raises(EncodingError):
            decode(raw + garbage)

    def test_truncation_rejected(
        self, any_system, probe_addresses, message_type
    ):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        with pytest.raises(EncodingError):
            decode(raw[:-1])

    def test_empty_rejected(self, any_system, probe_addresses, message_type):
        raw, decode = _encode_and_decoder(
            message_type, any_system, probe_addresses["Addr5"]
        )
        with pytest.raises(EncodingError):
            decode(b"")


def test_nested_header_blob_trailing_byte_rejected(lvq_system):
    """Garbage hidden *inside* a length-prefixed header blob (so the
    outer framing still lines up) must still be rejected."""
    from repro.crypto.encoding import ByteReader, write_var_bytes, write_varint

    node = FullNode(lvq_system)
    raw = node.handle_headers(HeadersRequest(0).serialize())
    config = lvq_system.config

    # Re-frame: append one byte to the first header's var_bytes payload.
    reader = ByteReader(raw)
    tag = reader.bytes(1)
    from_height = reader.varint()
    count = reader.varint()
    first_blob = reader.var_bytes()
    rest = reader.bytes(reader.remaining)
    tampered = (
        tag
        + write_varint(from_height)
        + write_varint(count)
        + write_var_bytes(first_blob + b"\x00")
        + rest
    )
    with pytest.raises(EncodingError):
        HeadersResponse.deserialize(
            tampered, config.header_extension_kind, config.header_bloom_bytes
        )
