"""The admission-control layer: token buckets, watermark shedding,
weighted-fair scheduling, classification, and the metrics exporter.

The integration tests at the bottom drive a real :class:`QueryServer`
(gated workers) through the staged-degradation story the ISSUE
promises: a filling queue sheds batch first, then low-priority, then
everything — with typed, retry-hinted refusals — while one hot client
exhausts its own token bucket without denting anyone else.
"""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.errors import (
    QueryError,
    RateLimitedError,
    RequestShedError,
    ServerOverloadedError,
)
from repro.node.admission import (
    PRIO_BACKFILL,
    PRIO_BATCH,
    PRIO_INTERACTIVE,
    PRIO_SYNC,
    STATE_NORMAL,
    STATE_SHED_ALL,
    STATE_SHED_BATCH,
    STATE_SHED_LOW,
    AdmissionController,
    FairScheduler,
    RateLimiter,
    TokenBucket,
    WatermarkShedder,
    classify,
)
from repro.node.full_node import FullNode
from repro.node.messages import (
    AggregatedBatchRequest,
    BatchQueryRequest,
    DeltaHeadersRequest,
    HeadersRequest,
    QueryRequest,
)
from repro.node.metrics import MetricsServer, parse_metrics, render_metrics
from repro.node.server import QueryServer
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload

CONFIG = SystemConfig.lvq(bf_bytes=192, segment_len=8)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadParams(num_blocks=18, txs_per_block=5, seed=29)
    )


@pytest.fixture(scope="module")
def system(workload):
    return build_system(workload.bodies, CONFIG)


class _GatedFullNode(FullNode):
    """Honest node whose query handling blocks until the gate opens."""

    def __init__(self, system, gate: threading.Event) -> None:
        super().__init__(system)
        self._gate = gate

    def handle_query(self, payload: bytes) -> bytes:
        self._gate.wait()
        return super().handle_query(payload)

    def handle_batch_query(self, payload: bytes) -> bytes:
        self._gate.wait()
        return super().handle_batch_query(payload)

    def handle_headers(self, payload: bytes) -> bytes:
        self._gate.wait()
        return super().handle_headers(payload)


class TestClassify:
    def test_open_ended_query_is_interactive(self):
        payload = QueryRequest("addr", 1, 0).serialize()
        assert classify(payload) == PRIO_INTERACTIVE

    def test_bounded_range_query_is_backfill(self):
        payload = QueryRequest("addr", 3, 9).serialize()
        assert classify(payload) == PRIO_BACKFILL

    def test_header_requests_are_sync(self):
        assert classify(HeadersRequest(0).serialize()) == PRIO_SYNC
        assert classify(DeltaHeadersRequest(4).serialize()) == PRIO_SYNC

    def test_batch_requests_are_batch(self):
        assert classify(BatchQueryRequest(["a"]).serialize()) == PRIO_BATCH
        assert (
            classify(AggregatedBatchRequest(["a"]).serialize())
            == PRIO_BATCH
        )

    def test_malformed_query_defaults_interactive(self):
        payload = bytes([QueryRequest.type_tag]) + b"\xff\xff"
        assert classify(payload) == PRIO_INTERACTIVE


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert bucket.take(0.0) == (True, 0.0)
        assert bucket.take(0.0) == (True, 0.0)
        ok, retry_after = bucket.take(0.0)
        assert not ok
        assert retry_after == pytest.approx(0.1)
        # After the hinted wait the bucket holds exactly one token.
        ok, _ = bucket.take(retry_after)
        assert ok

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0, now=0.0)
        bucket.take(1000.0)  # long idle: refill clamps at burst
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)


class TestRateLimiter:
    def test_hot_client_limited_others_unaffected(self):
        clock = [0.0]
        limiter = RateLimiter(rate=5.0, burst=3.0, clock=lambda: clock[0])
        for _ in range(3):
            limiter.check("hot")
        with pytest.raises(RateLimitedError) as info:
            limiter.check("hot")
        assert info.value.retry_after is not None
        assert info.value.retry_after > 0
        limiter.check("cold")  # a different identity: full bucket
        assert limiter.rejected == 1

    def test_bucket_refills_over_time(self):
        clock = [0.0]
        limiter = RateLimiter(rate=10.0, burst=1.0, clock=lambda: clock[0])
        limiter.check("c")
        with pytest.raises(RateLimitedError):
            limiter.check("c")
        clock[0] += 0.2
        limiter.check("c")  # refilled

    def test_identity_table_is_lru_bounded(self):
        limiter = RateLimiter(rate=1.0, max_clients=4, clock=lambda: 0.0)
        for index in range(8):
            limiter.check(f"client-{index}")
        assert limiter.clients() == 4
        assert limiter.evicted_clients == 4


class TestWatermarkShedder:
    def test_staged_escalation_and_refusal_sets(self):
        shedder = WatermarkShedder((4, 8, 12))
        assert shedder.observe(0) == STATE_NORMAL
        assert not shedder.refuses(PRIO_BATCH)
        assert shedder.observe(4) == STATE_SHED_BATCH
        assert shedder.refuses(PRIO_BATCH)
        assert shedder.refuses(PRIO_BACKFILL)
        assert not shedder.refuses(PRIO_SYNC)
        assert shedder.observe(8) == STATE_SHED_LOW
        assert shedder.refuses(PRIO_SYNC)
        assert not shedder.refuses(PRIO_INTERACTIVE)
        assert shedder.observe(12) == STATE_SHED_ALL
        assert shedder.refuses(PRIO_INTERACTIVE)

    def test_hysteresis_holds_until_clear_fraction(self):
        shedder = WatermarkShedder((4, 8, 12), clear_fraction=0.75)
        shedder.observe(4)
        assert shedder.state == STATE_SHED_BATCH
        # Depth 3 is below the watermark but not below 0.75 * 4 = 3.
        assert shedder.observe(3) == STATE_SHED_BATCH
        assert shedder.observe(2) == STATE_NORMAL

    def test_deescalation_can_skip_states(self):
        shedder = WatermarkShedder((4, 8, 12))
        shedder.observe(12)
        assert shedder.state == STATE_SHED_ALL
        assert shedder.observe(0) == STATE_NORMAL

    def test_transitions_counted_and_logged(self, caplog):
        shedder = WatermarkShedder((4, 8, 12))
        with caplog.at_level("WARNING", logger="repro.node.admission"):
            shedder.observe(4)
            shedder.observe(0)
        assert shedder.transitions == 2
        lines = [record.getMessage() for record in caplog.records]
        assert any(
            "previous=normal state=shed_batch" in line for line in lines
        )
        assert any(
            "previous=shed_batch state=normal" in line for line in lines
        )

    def test_rejects_non_increasing_watermarks(self):
        with pytest.raises(ValueError):
            WatermarkShedder((4, 4, 12))


class TestFairScheduler:
    def test_weighted_drain_ratio(self):
        scheduler = FairScheduler(weights=(3, 1, 1, 1))
        for index in range(30):
            scheduler.push(PRIO_INTERACTIVE, ("i", index))
            scheduler.push(PRIO_BATCH, ("b", index))
        first_12 = [scheduler.pop()[0] for _ in range(12)]
        # 3:1 ratio: every 4 consecutive pops hold 3 interactive, 1 batch.
        assert first_12.count(PRIO_INTERACTIVE) == 9
        assert first_12.count(PRIO_BATCH) == 3

    def test_batch_backlog_cannot_starve_interactive(self):
        scheduler = FairScheduler()
        for index in range(100):
            scheduler.push(PRIO_BATCH, index)
        scheduler.push(PRIO_INTERACTIVE, "urgent")
        popped = [scheduler.pop() for _ in range(16)]
        positions = [
            at for at, (priority, _item) in enumerate(popped)
            if priority == PRIO_INTERACTIVE
        ]
        assert positions and positions[0] < 16

    def test_fifo_within_one_class(self):
        scheduler = FairScheduler()
        for index in range(5):
            scheduler.push(PRIO_SYNC, index)
        drained = []
        while True:
            popped = scheduler.pop()
            if popped is None:
                break
            drained.append(popped[1])
        assert drained == [0, 1, 2, 3, 4]

    def test_drain_empties_everything(self):
        scheduler = FairScheduler()
        scheduler.push(PRIO_BATCH, "b")
        scheduler.push(PRIO_INTERACTIVE, "i")
        assert sorted(item for _p, item in scheduler.drain()) == ["b", "i"]
        assert scheduler.depth() == 0


class TestAdmissionController:
    def test_rate_limit_checked_before_queue(self):
        controller = AdmissionController(
            max_pending=8, rate_limit=2.0, rate_burst=1.0,
            clock=lambda: 0.0,
        )
        payload = QueryRequest("a").serialize()
        controller.enqueue(controller.submit(payload, "hot"), "r1")
        with pytest.raises(RateLimitedError):
            controller.submit(payload, "hot")
        assert controller.stats.ratelimited == 1
        controller.submit(payload, "cold")  # other identities unharmed
        controller.submit(payload, None)  # anonymous bypasses the limiter

    def test_staged_shedding_by_priority(self):
        controller = AdmissionController(max_pending=20, watermarks=(4, 8, 12))
        interactive = QueryRequest("a").serialize()
        batch = BatchQueryRequest(["a"]).serialize()
        sync = HeadersRequest(0).serialize()
        for index in range(4):
            controller.enqueue(controller.submit(interactive), index)
        # Depth 4 = shed_batch: batch refused, sync and interactive pass.
        with pytest.raises(RequestShedError) as info:
            controller.submit(batch)
        assert info.value.state == "shed_batch"
        assert info.value.retry_after > 0
        for index in range(4):
            controller.enqueue(controller.submit(sync), index)
        # Depth 8 = shed_low: sync refused too.
        with pytest.raises(RequestShedError) as info:
            controller.submit(sync)
        assert info.value.state == "shed_low"
        for index in range(4):
            controller.enqueue(controller.submit(interactive), index)
        # Depth 12 = shed_all: even interactive refused.
        with pytest.raises(RequestShedError) as info:
            controller.submit(interactive)
        assert info.value.state == "shed_all"
        report = controller.stats_dict()
        assert report["shed"] == 3
        assert report["shed_by_state"]["shed_batch"] >= 1
        assert report["shed_by_state"]["shed_all"] >= 1

    def test_hard_bound_overload_error(self):
        controller = AdmissionController(
            max_pending=3, watermarks=(10, 11, 12)
        )
        payload = QueryRequest("a").serialize()
        for index in range(3):
            controller.enqueue(controller.submit(payload), index)
        with pytest.raises(ServerOverloadedError) as info:
            controller.submit(payload)
        assert info.value.max_pending == 3
        assert info.value.retry_after > 0
        assert controller.stats.queue_full == 1

    def test_worker_pop_clears_shed_state(self):
        controller = AdmissionController(max_pending=20, watermarks=(2, 8, 12))
        payload = QueryRequest("a").serialize()
        for index in range(2):
            controller.enqueue(controller.submit(payload), index)
        assert controller.state() == "shed_batch"
        while controller.depth():
            controller.next_request()
        assert controller.state() == "normal"

    def test_close_rejects_and_returns_backlog(self):
        controller = AdmissionController(max_pending=8)
        payload = QueryRequest("a").serialize()
        controller.enqueue(controller.submit(payload), "queued")
        pending = controller.close()
        assert [item for _p, item in pending] == ["queued"]
        with pytest.raises(QueryError):
            controller.submit(payload)
        assert controller.next_request() is None  # workers told to exit


class TestQueryServerIntegration:
    def test_hot_client_rate_limited_others_served(self, system, workload):
        server = QueryServer(
            FullNode(system),
            num_workers=2,
            max_pending=32,
            rate_limit=50.0,
            rate_burst=3.0,
        )
        address = workload.probe_addresses["Addr3"]
        try:
            limited = 0
            for _ in range(6):  # burst well past the 3-token bucket
                try:
                    server.submit(
                        QueryRequest(address).serialize(), client="hot"
                    )
                except RateLimitedError:
                    limited += 1
            assert limited >= 1
            # The polite client is admitted and served to completion.
            future = server.submit(
                QueryRequest(address).serialize(), client="polite"
            )
            assert future.result(5)
            report = server.stats()
            assert report["admission"]["ratelimited"] == limited
            assert report["admission"]["rate_limit"]["clients"] == 2
        finally:
            server.close()

    def test_staged_shedding_under_gated_workers(self, system, workload):
        gate = threading.Event()
        server = QueryServer(
            _GatedFullNode(system, gate),
            num_workers=1,
            max_pending=20,
            watermarks=(4, 8, 12),
        )
        address = workload.probe_addresses["Addr4"]
        try:
            accepted = []
            # Fill past the first watermark with interactive queries.
            while server.admission.depth() < 4:
                accepted.append(
                    server.submit(QueryRequest(address).serialize())
                )
            with pytest.raises(RequestShedError) as info:
                server.submit(BatchQueryRequest([address]).serialize())
            assert info.value.priority == "batch"
            assert server.stats()["admission"]["state"] == "shed_batch"
            gate.set()
            for future in accepted:
                assert future.result(10)  # admitted traffic all completes
            assert server.drain(timeout=10)
            assert server.stats()["admission"]["state"] == "normal"
        finally:
            gate.set()
            server.close()

    def test_stats_report_admission_block(self, system, workload):
        with QueryServer(FullNode(system), num_workers=2) as server:
            server.query(workload.probe_addresses["Addr3"])
            report = server.stats()
        admission = report["admission"]
        assert admission["state"] == "normal"
        assert admission["admitted"] == 1
        assert admission["classes"]["interactive"]["completed"] == 1
        assert "rate_limit" not in admission  # limiter off by default


class TestMetrics:
    def test_render_and_parse_roundtrip(self, system, workload):
        with QueryServer(
            FullNode(system), num_workers=2, rate_limit=100.0
        ) as server:
            server.query(workload.probe_addresses["Addr3"])
            text = render_metrics(server=server)
        parsed = parse_metrics(text)
        assert parsed["lvq_requests_completed_total"] == 1.0
        assert parsed["lvq_admission_state"] == 0.0
        assert parsed['lvq_admission_state_info{state="normal"}'] == 1.0
        assert parsed['lvq_class_completed{class="interactive"}'] == 1.0
        assert 'lvq_latency_ms{quantile="p99",stage="total"}' in parsed
        assert parsed["lvq_ratelimited_total"] == 0.0
        # Exposition hygiene: HELP/TYPE comments parse away cleanly.
        assert all(not key.startswith("#") for key in parsed)

    def test_cache_hit_rate_exported(self, system, workload):
        with QueryServer(FullNode(system), num_workers=2) as server:
            address = workload.probe_addresses["Addr4"]
            server.query(address)
            server.query(address)
            parsed = parse_metrics(render_metrics(server=server))
        assert parsed['lvq_cache_hit_rate{cache="responses"}'] > 0.0

    def test_http_endpoint_scrapes(self, system, workload):
        with QueryServer(FullNode(system), num_workers=2) as server:
            with MetricsServer(port=0, server=server) as metrics:
                host, port = metrics.address
                with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics", timeout=5
                ) as response:
                    assert response.status == 200
                    assert "text/plain" in response.headers["Content-Type"]
                    body = response.read().decode("utf-8")
        parsed = parse_metrics(body)
        assert "lvq_queue_depth" in parsed
        assert metrics.scrapes == 1

    def test_extra_gauges_and_sources_compose(self, system):
        text = render_metrics(extra={"bench_phase": 2.0})
        assert parse_metrics(text)["lvq_bench_phase"] == 2.0


class TestOverloadNeverQuarantines:
    """Satellite regression: overload is traffic, not malice."""

    def test_record_overload_never_bans_or_ladders(self):
        from repro.node.session import Peer

        peer = Peer("busy", node=None)
        for _ in range(50):  # a *sustained* overload storm
            peer.record_overload(
                ServerOverloadedError(9, 8, retry_after=0.05), now=0.0
            )
        assert not peer.banned
        assert peer.quarantined_until == 0.0  # the ladder never engaged
        assert peer.consecutive_failures == 0
        assert peer.score == 1.0
        assert peer.stats.overloads == 50
        # The hold-off is flat (the hint), not exponential.
        assert peer.overloaded_until == pytest.approx(0.05)
        assert not peer.available(0.0)
        assert peer.available(0.06)

    def test_session_classifies_backpressure_as_overload(self, system):
        from repro.node.light_node import LightNode
        from repro.node.session import Peer, QuerySession, RetryPolicy

        class _OverloadedNode(FullNode):
            def handle_query(self, payload: bytes) -> bytes:
                raise ServerOverloadedError(9, 8, retry_after=0.01)

        peer = Peer("busy", _OverloadedNode(system))
        session = QuerySession(
            LightNode.from_full_node(FullNode(system)),
            [peer],
            retry=RetryPolicy(max_rounds=2, base_delay=0.01, jitter=0.0),
        )
        with pytest.raises(Exception):
            session.query("absent-address")
        assert not peer.banned
        assert peer.quarantined_until == 0.0
        assert peer.stats.overloads >= 1
        assert peer.stats.transport_failures == 0
