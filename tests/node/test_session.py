"""Unit tests for the resilient multi-peer QuerySession."""

import pytest

from repro.errors import (
    NoHonestPeerError,
    PeerQuarantinedError,
    RetryExhaustedError,
    SessionTimeoutError,
)
from repro.node.faults import (
    ByzantineFlakyFullNode,
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
    FlakyFullNode,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.session import (
    PartialHistory,
    Peer,
    QuerySession,
    RetryPolicy,
)
from repro.node.transport import SimulatedClock
from repro.query.adversary import (
    MaliciousFullNode,
    omit_one_transaction,
    truncate_blocks,
)


@pytest.fixture()
def light(lvq_system):
    return LightNode(lvq_system.headers(), lvq_system.config)


def _faulty_factory(schedule, clock):
    return lambda: FaultyTransport(schedule=schedule, clock=clock)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(
            max_rounds=5, base_delay=1.0, multiplier=2.0, max_delay=3.0,
            jitter=0.0,
        )
        rng = random.Random(0)
        assert policy.backoff_seconds(1, rng) == 1.0
        assert policy.backoff_seconds(2, rng) == 2.0
        assert policy.backoff_seconds(3, rng) == 3.0  # capped
        assert policy.backoff_seconds(4, rng) == 3.0

    def test_jitter_is_bounded(self):
        import random

        policy = RetryPolicy(base_delay=1.0, jitter=0.25)
        rng = random.Random(7)
        for round_index in range(1, 20):
            pause = policy.backoff_seconds(1, rng)
            assert 0.75 <= pause <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_rounds=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestHappyPath:
    def test_single_honest_peer(self, lvq_system, light, probe_addresses):
        session = QuerySession(light, [FullNode(lvq_system)])
        history = session.query(probe_addresses["Addr5"])
        assert history.transactions
        assert session.last_winner == "peer0"
        assert session.stats.successes == 1
        assert session.stats.attempts == 1

    def test_matches_direct_query(self, lvq_system, light, probe_addresses):
        full_node = FullNode(lvq_system)
        direct = light.query_history(full_node, probe_addresses["Addr6"])
        session = QuerySession(light, [full_node])
        resilient = session.query(probe_addresses["Addr6"])
        assert [(h, t.txid()) for h, t in resilient.transactions] == [
            (h, t.txid()) for h, t in direct.transactions
        ]

    def test_labelled_peers(self, lvq_system, light, probe_addresses):
        session = QuerySession(
            light, [("primary", FullNode(lvq_system))]
        )
        session.query(probe_addresses["Addr5"])
        assert session.last_winner == "primary"

    def test_needs_a_peer(self, light):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            QuerySession(light, [])


class TestRetriesAndFailover:
    def test_flaky_peer_retried_until_it_serves(
        self, lvq_system, light, probe_addresses
    ):
        """One peer, fails twice, then honest: retries win."""
        node = FlakyFullNode(lvq_system, fail_on=(0, 1))
        clock = SimulatedClock()
        session = QuerySession(
            light,
            [node],
            clock=clock,
            retry=RetryPolicy(max_rounds=4, base_delay=0.1),
            quarantine_base=0.01,
        )
        history = session.query(probe_addresses["Addr5"])
        assert history.transactions
        assert session.stats.attempts == 3
        assert session.stats.retries >= 1
        assert session.stats.backoff_seconds > 0
        assert clock.now() > 0  # backoff was slept on the simulated clock

    def test_failover_to_second_peer(self, lvq_system, light, probe_addresses):
        dead = FlakyFullNode(lvq_system, failure_rate=1.0)
        session = QuerySession(light, [dead, FullNode(lvq_system)])
        history = session.query(probe_addresses["Addr5"])
        assert history.transactions
        assert session.last_winner == "peer1"

    def test_retry_exhausted_is_typed(self, lvq_system, light, probe_addresses):
        dead = FlakyFullNode(lvq_system, failure_rate=1.0)
        session = QuerySession(
            light,
            [dead],
            retry=RetryPolicy(max_rounds=2, base_delay=0.1),
            quarantine_base=0.01,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            session.query(probe_addresses["Addr5"])
        error = excinfo.value
        assert error.address == probe_addresses["Addr5"]
        assert error.attempts >= 1
        assert "peer0" in error.reasons
        details = error.details()
        assert details["kind"] == "RetryExhaustedError"
        assert details["attempts"] == error.attempts
        assert session.stats.failures == 1

    def test_health_ranking_prefers_reliable_peer(
        self, lvq_system, light, probe_addresses
    ):
        """After the first peer flaps, the healthy peer is tried first."""
        flaky = FlakyFullNode(lvq_system, fail_on=(0,))
        session = QuerySession(
            light,
            [("flaky", flaky), ("steady", FullNode(lvq_system))],
            retry=RetryPolicy(max_rounds=3, base_delay=0.1),
        )
        session.query(probe_addresses["Addr5"])  # flaky fails → steady wins
        session.query(probe_addresses["Addr5"])
        steady = next(p for p in session.peers if p.label == "steady")
        flaky_peer = next(p for p in session.peers if p.label == "flaky")
        assert steady.score > flaky_peer.score
        assert steady.stats.successes == 2
        # The second query never bothered the quarantined flaky peer.
        assert flaky_peer.stats.attempts == 1


class TestQuarantineAndBans:
    def test_verification_failure_is_permanent_ban(
        self, lvq_system, light, probe_addresses
    ):
        liar = MaliciousFullNode(lvq_system, omit_one_transaction)
        session = QuerySession(
            light, [("liar", liar), ("honest", FullNode(lvq_system))]
        )
        session.query(probe_addresses["Addr6"])
        liar_peer = next(p for p in session.peers if p.label == "liar")
        assert liar_peer.banned
        assert liar_peer.stats.verification_failures == 1
        # Second query: the ban holds, the liar is never contacted again.
        session.query(probe_addresses["Addr6"])
        assert liar_peer.stats.attempts == 1
        error = liar_peer.quarantine_error(0.0)
        assert isinstance(error, PeerQuarantinedError)
        assert error.permanent
        assert error.details()["peer"] == "liar"

    def test_transport_failure_quarantine_decays(
        self, lvq_system, light, probe_addresses
    ):
        flaky = FlakyFullNode(lvq_system, fail_on=(0,))
        clock = SimulatedClock()
        session = QuerySession(
            light,
            [flaky],
            clock=clock,
            retry=RetryPolicy(max_rounds=3, base_delay=0.1),
            quarantine_base=0.5,
        )
        history = session.query(probe_addresses["Addr5"])
        assert history.transactions
        peer = session.peers[0]
        assert not peer.banned
        assert peer.consecutive_failures == 0  # reset on success

    def test_all_malicious_raises_no_honest_peer(
        self, lvq_system, light, probe_addresses
    ):
        session = QuerySession(
            light,
            [
                MaliciousFullNode(lvq_system, omit_one_transaction),
                MaliciousFullNode(lvq_system, truncate_blocks),
            ],
        )
        with pytest.raises(NoHonestPeerError) as excinfo:
            session.query(probe_addresses["Addr6"])
        assert set(excinfo.value.reasons) == {"peer0", "peer1"}
        assert all(peer.banned for peer in session.peers)


class TestTimeouts:
    def test_request_timeout_counts(self, lvq_system, light, probe_addresses):
        clock = SimulatedClock()
        schedule = FaultSchedule.drops(1.0)  # every message dropped
        dead_link = Peer(
            "dead",
            FullNode(lvq_system),
            transport_factory=_faulty_factory(schedule, clock),
        )
        session = QuerySession(
            light,
            [dead_link, Peer("alive", FullNode(lvq_system))],
            clock=clock,
            request_timeout=2.0,
            retry=RetryPolicy(max_rounds=2, base_delay=0.1),
        )
        history = session.query(probe_addresses["Addr5"])
        assert history.transactions
        assert session.last_winner == "alive"
        assert session.stats.peers["dead"].timeouts == 1
        assert clock.now() > 2.0  # the timeout was waited out

    def test_session_timeout(self, lvq_system, light, probe_addresses):
        clock = SimulatedClock()
        schedule = FaultSchedule.drops(1.0)
        session = QuerySession(
            light,
            [
                Peer(
                    "dead",
                    FullNode(lvq_system),
                    transport_factory=_faulty_factory(schedule, clock),
                )
            ],
            clock=clock,
            request_timeout=2.0,
            session_timeout=3.0,
            retry=RetryPolicy(max_rounds=50, base_delay=1.0),
            quarantine_base=0.1,
        )
        with pytest.raises(SessionTimeoutError) as excinfo:
            session.query(probe_addresses["Addr5"])
        assert excinfo.value.timeout_seconds == 3.0
        assert excinfo.value.elapsed_seconds > 3.0


class TestPartialHistory:
    def test_full_coverage_when_possible(
        self, lvq_system, light, probe_addresses
    ):
        session = QuerySession(light, [FullNode(lvq_system)])
        partial = session.query_partial(probe_addresses["Addr5"])
        assert isinstance(partial, PartialHistory)
        assert partial.is_complete
        assert partial.coverage_fraction() == 1.0
        assert partial.covered_ranges == [(1, light.tip_height)]
        assert partial.transactions

    def test_uncovered_ranges_reported(
        self, lvq_system, light, probe_addresses, workload
    ):
        """A peer that refuses a height sub-range forces bisection; the
        unserved blocks come back as uncovered_ranges, and everything
        else is verified history."""
        address = probe_addresses["Addr5"]
        tip = light.tip_height

        class RangeRefusingNode(FullNode):
            """Serves any range not touching blocks 20..24."""

            def answer(self, address, first_height=1, last_height=None):
                last = last_height if last_height is not None else tip
                if first_height <= 24 and last >= 20:
                    from repro.errors import QueryError

                    raise QueryError("blocks 20..24 are offline")
                return super().answer(address, first_height, last_height)

        session = QuerySession(
            light,
            [RangeRefusingNode(lvq_system)],
            retry=RetryPolicy.no_retries(),
        )
        partial = session.query_partial(address)
        assert not partial.is_complete
        assert partial.uncovered_ranges
        lo = min(r[0] for r in partial.uncovered_ranges)
        hi = max(r[1] for r in partial.uncovered_ranges)
        assert lo <= 24 and hi >= 20  # the refused window is inside
        # Every returned transaction is real, in-range, verified history.
        truth = {
            (h, t.txid())
            for h, t in workload.history_of(address)
        }
        for height, tx in partial.transactions:
            assert (height, tx.txid()) in truth
            assert not any(
                lo <= height <= hi for lo, hi in partial.uncovered_ranges
            )
        assert 0 < partial.coverage_fraction() < 1.0
        assert session.stats.partials == 1
        balance = partial.partial_balance()
        assert isinstance(balance, int)

    def test_all_banned_reports_everything_uncovered(
        self, lvq_system, light, probe_addresses
    ):
        session = QuerySession(
            light,
            [MaliciousFullNode(lvq_system, omit_one_transaction)],
            retry=RetryPolicy.no_retries(),
        )
        partial = session.query_partial(probe_addresses["Addr6"])
        assert not partial.is_complete
        assert partial.coverage_fraction() < 1.0
        assert partial.uncovered_ranges[0][0] == 1


class TestHeaderSyncFailover:
    def test_partial_sync_reused_across_peers(self, lvq_system, workload):
        """Peer A dies after serving a prefix; peer B continues from the
        advanced tip instead of starting over."""
        full = FullNode(lvq_system)
        tip = full.tip_height

        class ShortServingNode(FullNode):
            """Serves at most 10 headers per request, then crashes once."""

            def __init__(self, system):
                super().__init__(system)
                self.calls = 0

            def handle_headers(self, payload):
                from repro.errors import TransportError
                from repro.node.messages import (
                    HeadersRequest,
                    HeadersResponse,
                )

                self.calls += 1
                if self.calls > 1:
                    raise TransportError("crashed after first response")
                request = HeadersRequest.deserialize(payload)
                headers = self.system.chain.headers_from(request.from_height)
                return HeadersResponse(
                    request.from_height, headers[:10]
                ).serialize()

        light = LightNode(lvq_system.headers()[:1], lvq_system.config)
        short = ShortServingNode(lvq_system)
        session = QuerySession(
            light,
            [("short", short), ("full", full)],
            retry=RetryPolicy(max_rounds=2, base_delay=0.1),
        )
        accepted = session.sync_headers()
        assert light.tip_height == tip
        assert accepted == tip
        # The second peer only had to serve the remainder.
        full_peer_bytes = session.stats.peers["full"].transport
        assert session.stats.peers["short"].successes >= 1

    def test_sync_all_dead_raises(self, lvq_system):
        light = LightNode(lvq_system.headers()[:1], lvq_system.config)
        dead = FlakyFullNode(lvq_system, failure_rate=1.0)
        session = QuerySession(
            light,
            [dead],
            retry=RetryPolicy(max_rounds=2, base_delay=0.1),
            quarantine_base=0.01,
        )
        with pytest.raises(RetryExhaustedError):
            session.sync_headers()


class TestSessionStats:
    def test_as_dict_schema(self, lvq_system, light, probe_addresses):
        session = QuerySession(light, [("p", FullNode(lvq_system))])
        session.query(probe_addresses["Addr5"])
        stats = session.stats.as_dict()
        assert stats["queries"] == 1
        assert stats["successes"] == 1
        assert stats["peers"]["p"]["attempts"] == 1
        assert stats["peers"]["p"]["bytes_to_client"] > 0

    def test_byzantine_flaky_composition(
        self, lvq_system, light, probe_addresses
    ):
        """The full zoo at once: flaky byzantine + dead link + honest."""
        clock = SimulatedClock()
        schedule = FaultSchedule(
            [FaultRule(FaultKind.CORRUPT, probability=0.5, param=2)], seed=3
        )
        peers = [
            Peer(
                "byzantine",
                ByzantineFlakyFullNode(
                    lvq_system, omit_one_transaction, failure_rate=0.3, seed=1
                ),
            ),
            Peer(
                "noisy-link",
                FullNode(lvq_system),
                transport_factory=_faulty_factory(schedule, clock),
            ),
            Peer("honest", FullNode(lvq_system)),
        ]
        session = QuerySession(
            light,
            peers,
            clock=clock,
            retry=RetryPolicy(max_rounds=4, base_delay=0.1),
            seed=11,
        )
        truth = light.query_history(
            FullNode(lvq_system), probe_addresses["Addr6"]
        )
        for _ in range(5):
            history = session.query(probe_addresses["Addr6"])
            assert [(h, t.txid()) for h, t in history.transactions] == [
                (h, t.txid()) for h, t in truth.transactions
            ]
