"""Overload chaos: admission control under the PR-2 fault matrix.

A stride-sampled slice of the seeded chaos schedules (same
``MATRIX_SEED`` as ``test_chaos.py``) runs against a full node served
through the admission-controlled :class:`QueryServer` while a hot
client floods its own token bucket from another thread.  Gates:

* **zero unverified answers** — every history the session surfaces is
  byte-identical to the honest baseline, even with a byzantine peer in
  the mix and the server under flood;
* **availability 1.0 for admitted traffic** — the benign-faulted
  honest peer answers every scenario despite the concurrent flood, and
  every request the flood itself got *admitted* completes;
* **overload is traffic, not malice** — the honest peer is never
  banned, and a pure-overload refusal never touches score or the
  quarantine ladder.
"""

import random
import threading
import time

import pytest

from repro.errors import (
    BackpressureError,
    RateLimitedError,
    ReproError,
)
from repro.node.faults import (
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.messages import QueryRequest
from repro.node.server import QueryServer
from repro.node.session import Peer, QuerySession, RetryPolicy
from repro.node.transport import SimulatedClock
from repro.query.adversary import ALL_ATTACKS, MaliciousFullNode

SCENARIOS_PER_SYSTEM = 48
MATRIX_SEED = 20200704  # PR 2's chaos seed; the slice below strides it
STRIDE = 6
INDICES = list(range(0, SCENARIOS_PER_SYSTEM, STRIDE))

_ATTACK_NAMES = sorted(ALL_ATTACKS)
_PROBES = ("Addr1", "Addr2", "Addr3", "Addr4", "Addr5", "Addr6")


class ServedNode:
    """The FullNode handler surface, routed through an admission-
    controlled :class:`QueryServer` — what an honest peer looks like to
    the session when the server is protecting itself under load."""

    def __init__(self, query_server, label):
        self._server = query_server
        self._label = label

    def _route(self, payload):
        return self._server.submit(payload, client=self._label).result(10.0)

    def handle_query(self, payload):
        return self._route(payload)

    def handle_batch_query(self, payload):
        return self._route(payload)

    def handle_headers(self, payload):
        return self._route(payload)

    @property
    def tip_height(self):
        return self._server.node.tip_height


def _benign_schedule(rng):
    """PR 2's benign generator: finite drops plus latency — can slow a
    peer, never starve it (availability stays structural)."""
    rules = []
    dropped = sorted(rng.sample(range(8), rng.randrange(0, 4)))
    if dropped:
        rules.append(FaultRule(FaultKind.DROP, at_messages=dropped))
    if rng.random() < 0.7:
        rules.append(
            FaultRule(
                FaultKind.DELAY,
                probability=rng.uniform(0.2, 0.8),
                param=rng.uniform(0.05, 0.5),
            )
        )
    return FaultSchedule(rules, seed=rng.randrange(1 << 30))


def _history_key(history):
    return [(h, t.txid()) for h, t in history.transactions]


class _WallClock:
    """Real time, for tests that coordinate with actual worker threads
    (the session default is a SimulatedClock whose sleeps are instant)."""

    @staticmethod
    def now():
        return time.monotonic()

    @staticmethod
    def sleep(seconds):
        time.sleep(seconds)


@pytest.mark.parametrize("index", INDICES)
def test_overload_chaos_admitted_traffic_fully_available(
    lvq_system, probe_addresses, index
):
    """Chaos slice × flood: right answer, full availability, no bans."""
    rng = random.Random(MATRIX_SEED + 555_000 + index)
    clock = SimulatedClock()
    query_server = QueryServer(
        FullNode(lvq_system),
        num_workers=2,
        max_pending=32,
        rate_limit=200.0,
        rate_burst=8.0,
    )
    schedule = _benign_schedule(rng)
    served = ServedNode(query_server, "session")
    peers = [
        Peer(
            "honest0",
            served,
            transport_factory=lambda: FaultyTransport(
                schedule=schedule, clock=clock
            ),
        )
    ]
    if rng.random() < 0.5:
        # A liar alongside: the flood must not soften verification.
        attack = ALL_ATTACKS[rng.choice(_ATTACK_NAMES)]
        peers.append(Peer("liar", MaliciousFullNode(lvq_system, attack)))
    rng.shuffle(peers)
    honest = next(p for p in peers if p.label == "honest0")

    address = probe_addresses[rng.choice(_PROBES)]
    light = LightNode(lvq_system.headers(), lvq_system.config)
    expected = _history_key(
        LightNode(lvq_system.headers(), lvq_system.config).query_history(
            FullNode(lvq_system), address
        )
    )

    hot_stop = threading.Event()
    hot_stats = {"admitted": 0, "limited": 0, "other": 0}
    hot_failures = []
    flood_payload = QueryRequest(address).serialize()

    def flood():
        futures = []
        while not hot_stop.is_set():
            try:
                futures.append(
                    query_server.submit(flood_payload, client="hot")
                )
                hot_stats["admitted"] += 1
            except RateLimitedError:
                hot_stats["limited"] += 1
            except BackpressureError:
                hot_stats["other"] += 1
            time.sleep(0.001)
        for future in futures:
            try:
                future.result(10.0)
            except Exception as error:  # noqa: BLE001 - gate below
                hot_failures.append(error)

    session = QuerySession(
        light,
        peers,
        clock=clock,
        request_timeout=5.0,
        retry=RetryPolicy(
            max_rounds=8, base_delay=0.05, max_delay=0.5, jitter=0.25
        ),
        quarantine_base=0.05,
        seed=rng.randrange(1 << 30),
    )
    flooder = threading.Thread(target=flood)
    flooder.start()
    try:
        # Let the flood actually saturate its bucket before querying,
        # so the session demonstrably runs *during* the overload.
        deadline = time.monotonic() + 5.0
        while hot_stats["limited"] == 0:
            assert time.monotonic() < deadline, "flood never saturated"
            time.sleep(0.001)
        try:
            history = session.query(address)
        except ReproError as error:
            pytest.fail(
                f"availability violated on scenario {index}: benign-faulted "
                f"honest peer behind admission control denied: {error}"
            )
    finally:
        hot_stop.set()
        flooder.join(30.0)
        query_server.close()

    assert _history_key(history) == expected, (
        f"WRONG HISTORY under overload chaos, scenario {index}"
    )
    assert hot_stats["limited"] > 0, "the flood never hit its rate limit"
    assert not hot_failures, (
        f"admitted flood traffic failed: {hot_failures[:3]}"
    )
    assert not honest.banned, "an overloaded honest peer must never be banned"


def test_overloaded_peer_heals_without_quarantine(
    lvq_system, probe_addresses
):
    """A peer refusing with queue-full overload is retried flat — the
    query lands once the burst drains, with score and quarantine ladder
    untouched (overload is traffic, not evidence of misbehaviour)."""
    node = FullNode(lvq_system)
    gate = threading.Event()
    original = node.handle_query

    def gated_handle(payload):
        gate.wait(10.0)
        return original(payload)

    node.handle_query = gated_handle
    query_server = QueryServer(node, num_workers=1, max_pending=1)
    address = probe_addresses["Addr3"]
    blocker_payload = QueryRequest(address).serialize()
    try:
        # Occupy the worker, then the single queue slot.
        background = [query_server.submit(blocker_payload, client="bg")]
        deadline = time.monotonic() + 5.0
        while query_server.admission.depth() > 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        background.append(query_server.submit(blocker_payload, client="bg"))
        assert query_server.admission.depth() == 1

        served = ServedNode(query_server, "session")
        peer = Peer("honest", served)
        light = LightNode(lvq_system.headers(), lvq_system.config)
        session = QuerySession(
            light,
            [peer],
            clock=_WallClock(),
            request_timeout=5.0,
            retry=RetryPolicy(max_rounds=12, base_delay=0.05, max_delay=0.2),
            quarantine_base=0.05,
            seed=11,
        )
        threading.Timer(0.4, gate.set).start()
        history = session.query(address)

        expected = _history_key(
            LightNode(lvq_system.headers(), lvq_system.config).query_history(
                FullNode(lvq_system), address
            )
        )
        assert _history_key(history) == expected
        assert peer.stats.overloads >= 1, "the overload path never fired"
        assert peer.quarantined_until == 0.0, (
            "overload refusals must never feed the quarantine ladder"
        )
        assert peer.score == 1.0
        assert not peer.banned
        assert query_server.stats()["admission"]["queue_full"] >= 1
        for future in background:
            future.result(10.0)
    finally:
        gate.set()
        query_server.close()
        node.handle_query = original
