"""Streaming chaos: the watch stream under faults, crashes, and lies.

Three adversaries against a live :class:`SubscriptionSession`:

* **socket chaos** — a :class:`SocketFaultInjector` between session and
  server drops, corrupts, delays, duplicates, and resets frames while
  the chain grows.  The session may reconnect and resync as often as it
  needs, but every event it surfaces must be verified: a wallet folding
  the stream must end byte-identical to the honest pull answer.
* **kill the server mid-stream** — the server is hard-killed (RST),
  blocks are mined while it is down, and it restarts on the same port.
  The session must reconnect, resubscribe, and cover the outage through
  a verified backfill range query (PROTOCOL.md §10.6).
* **a Byzantine server** — every batch proof it serves has one flipped
  byte.  The session must reject every push, surface *nothing*, and
  tear the stream down with a typed final disconnect; at no point may a
  wrong update reach the consumer.
"""

import time

import pytest

from test_subscribe_net import _build, _serve, _truth_histories, _txids

from repro.node.faults import FaultKind, FaultRule, FaultSchedule
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.net import EventLoopThread, NetServer, SocketFaultInjector
from repro.node.session import RetryPolicy
from repro.node.subscribe import SubscriptionRegistry, SubscriptionSession
from repro.wallet import Wallet


@pytest.fixture(scope="module")
def loop_thread():
    thread = EventLoopThread("test-subscribe-chaos-loop")
    yield thread
    thread.stop()


def _drain(session, events, wallet=None, timeout=0.05):
    """Move every queued event into ``events`` (and the wallet)."""
    while True:
        event = session.next_event(timeout=timeout)
        if event is None:
            return
        events.append(event)
        if wallet is not None:
            wallet.apply_event(event)


# ---------------------------------------------------------------------------
# socket chaos: faults on the wire, zero unverified events surfaced


def test_watch_stream_survives_socket_chaos_zero_unverified(loop_thread):
    workload, config, system = _build(num_blocks=8, extra=32, seed=13)
    node, registry, server = _serve(system, loop_thread)
    schedule = FaultSchedule(
        [
            FaultRule(FaultKind.DROP, probability=0.06),
            FaultRule(FaultKind.CORRUPT, probability=0.06, param=3),
            FaultRule(FaultKind.DELAY, probability=0.10, param=1.0),
            FaultRule(FaultKind.DUPLICATE, probability=0.05),
            FaultRule(FaultKind.CLOSE, probability=0.04, param=64),
        ],
        seed=29,
    )
    injector = SocketFaultInjector(
        server.address, schedule, loop_thread=loop_thread
    )
    injector.start()
    light = LightNode(system.headers(), config)
    watched = list(workload.probe_addresses.values())[:3]
    wallet = Wallet(light, watched)
    wallet.refresh(node)  # verified in-process baseline at the quiet tip
    session = SubscriptionSession(
        light,
        injector.address,
        watched,
        keepalive=0.3,
        request_timeout=5.0,
        retry_policy=RetryPolicy(
            max_rounds=100, base_delay=0.02, max_delay=0.2
        ),
    )
    events = []
    session.start()
    try:
        for _ in range(20):
            node.extend_chain([workload.bodies[system.tip_height + 1]])
            time.sleep(0.05)
            _drain(session, events, wallet, timeout=0.0)

        # Stop injecting for the tail so convergence is deterministic;
        # nudge with spare blocks if the last chaotic push was swallowed
        # (a lost *final* frame leaves no later push to expose the gap).
        schedule.rules.clear()
        deadline = time.monotonic() + 30.0
        last_tip, stalled_since = -1, time.monotonic()
        while (
            light.tip_height < system.tip_height
            and time.monotonic() < deadline
        ):
            _drain(session, events, wallet, timeout=0.1)
            if light.tip_height != last_tip:
                last_tip = light.tip_height
                stalled_since = time.monotonic()
            elif (
                time.monotonic() - stalled_since > 2.0
                and system.tip_height + 1 < len(workload.bodies)
            ):
                node.extend_chain([workload.bodies[system.tip_height + 1]])
                stalled_since = time.monotonic()
        _drain(session, events, wallet, timeout=0.1)
    finally:
        session.stop()
        injector.close()
        server.close()

    assert sum(schedule.fault_counts.values()) > 0, (
        "no faults fired — the chaos run did not exercise anything"
    )
    assert light.tip_height == system.tip_height, (
        f"watcher never converged: {light.tip_height} < {system.tip_height}"
    )
    # Availability: the session rode out every fault without giving up.
    assert not any(
        e.kind == "disconnect" and e.final for e in events
    ), "session gave up under survivable chaos"
    assert session.stats.updates_verified >= 1

    # Every surfaced update matches the honest single-height answer.
    for event in events:
        if event.kind == "update":
            truth = _truth_histories(node, config, watched, event.height)
            assert _txids(event.histories) == _txids(truth), (
                f"unverified update surfaced at height {event.height}"
            )

    # The folded wallet equals the honest pull answer — the stream lost
    # nothing, invented nothing, double-counted nothing.
    honest_light = LightNode(system.headers(), config)
    honest_wallet = Wallet(honest_light, watched)
    honest_wallet.refresh(node)
    for address in watched:
        streamed = [(h, tx.txid()) for h, tx in wallet.history(address)]
        honest = [(h, tx.txid()) for h, tx in honest_wallet.history(address)]
        assert streamed == honest, f"wallet diverged for {address}"
    assert wallet.balances() == honest_wallet.balances()


# ---------------------------------------------------------------------------
# kill the server mid-stream: reconnect, resubscribe, verified backfill


def test_kill_server_mid_stream_resubscribes_and_backfills(loop_thread):
    workload, config, system = _build(num_blocks=8, extra=12, seed=17)
    node, registry, server = _serve(system, loop_thread)
    address = server.address
    light = LightNode(system.headers(), config)
    watched = list(workload.probe_addresses.values())[:3]
    session = SubscriptionSession(
        light,
        address,
        watched,
        keepalive=0.3,
        request_timeout=5.0,
        retry_policy=RetryPolicy(
            max_rounds=100, base_delay=0.05, max_delay=0.3
        ),
    )
    events = []
    replacement = None
    session.start()
    try:
        assert session.wait_subscribed(10.0)
        for _ in range(2):
            node.extend_chain([workload.bodies[system.tip_height + 1]])
        deadline = time.monotonic() + 10.0
        while (
            light.tip_height < system.tip_height
            and time.monotonic() < deadline
        ):
            _drain(session, events, timeout=0.1)
        assert light.tip_height == system.tip_height, "pre-kill stream broken"

        server.abort()  # RST the live stream mid-flight
        missed_first = system.tip_height + 1
        for _ in range(3):
            node.extend_chain([workload.bodies[system.tip_height + 1]])
        missed_last = system.tip_height
        time.sleep(0.3)  # session churns against a dead port

        replacement = NetServer(
            node,
            host=address[0],
            port=address[1],
            subscriptions=registry,
            loop_thread=loop_thread,
        ).start()

        deadline = time.monotonic() + 20.0
        while (
            light.tip_height < system.tip_height
            and time.monotonic() < deadline
        ):
            _drain(session, events, timeout=0.1)
        assert light.tip_height == system.tip_height, (
            "no recovery after restart"
        )

        # The outage is covered by a verified backfill range query, not
        # by replayed pushes.
        backfills = [e for e in events if e.kind == "backfill"]
        assert any(
            b.first_height <= missed_first and b.last_height >= missed_last
            for b in backfills
        ), f"outage [{missed_first},{missed_last}] not backfilled: {backfills}"
        for backfill in backfills:
            for height in range(
                backfill.first_height, backfill.last_height + 1
            ):
                truth = _truth_histories(node, config, watched, height)
                for address_, history in backfill.histories.items():
                    expected = truth[address_]
                    got = [
                        (h, tx.txid())
                        for h, tx in history.transactions
                        if h == height
                    ]
                    want = [
                        (h, tx.txid())
                        for h, tx in expected.transactions
                        if h == height
                    ]
                    assert got == want, f"backfill wrong at height {height}"

        assert session.stats.subscribes >= 2, "did not resubscribe"
        assert session.stats.disconnects >= 1
        assert not any(e.kind == "disconnect" and e.final for e in events)

        # And the resumed stream is live again: one more mined block
        # arrives as a pushed, verified update.
        node.extend_chain([workload.bodies[system.tip_height + 1]])
        deadline = time.monotonic() + 10.0
        while (
            light.tip_height < system.tip_height
            and time.monotonic() < deadline
        ):
            _drain(session, events, timeout=0.1)
        assert light.tip_height == system.tip_height, "stream not live again"
    finally:
        session.stop()
        if replacement is not None:
            replacement.close()
        server.close()


# ---------------------------------------------------------------------------
# Byzantine server: every proof is subtly wrong, nothing may surface


class _TamperedBatch:
    """Duck-typed batch result whose serialization lies by one byte."""

    def __init__(self, honest):
        self._honest = honest

    def __getattr__(self, name):
        return getattr(self._honest, name)

    def serialize(self, config):
        raw = bytearray(self._honest.serialize(config))
        raw[len(raw) // 2] ^= 0x55
        return bytes(raw)


class _LyingNode(FullNode):
    """Serves honest headers but tampers every batch proof."""

    def answer_batch(self, addresses, first_height, last_height):
        honest = super().answer_batch(addresses, first_height, last_height)
        return _TamperedBatch(honest)


def test_byzantine_server_cannot_surface_wrong_updates(loop_thread):
    workload, config, system = _build(num_blocks=8, extra=6, seed=23)
    node = _LyingNode(system)
    registry = SubscriptionRegistry(node)
    server = NetServer(
        node, subscriptions=registry, loop_thread=loop_thread
    ).start()
    light = LightNode(system.headers(), config)
    baseline_tip = light.tip_height
    watched = list(workload.probe_addresses.values())[:3]
    session = SubscriptionSession(
        light,
        server.address,
        watched,
        keepalive=0.3,
        request_timeout=2.0,
        max_reconnects=3,
        retry_policy=RetryPolicy(max_rounds=5, base_delay=0.02, max_delay=0.1),
    )
    events = []
    session.start()
    try:
        assert session.wait_subscribed(10.0)
        for _ in range(3):
            node.extend_chain([workload.bodies[system.tip_height + 1]])
        deadline = time.monotonic() + 40.0
        while time.monotonic() < deadline:
            _drain(session, events, timeout=0.2)
            if any(e.kind == "disconnect" and e.final for e in events):
                break
        else:
            raise AssertionError(f"no final disconnect; events: {events}")
    finally:
        session.stop()
        server.close()

    # Nothing unverified surfaced — not one update, not one backfill.
    surfaced = [e for e in events if e.kind in ("update", "backfill")]
    assert surfaced == [], f"Byzantine data surfaced: {surfaced}"
    assert session.stats.updates_verified == 0
    assert session.stats.updates_rejected >= 1, (
        "the tampered push was never even examined"
    )
    # The delivered watermark never moved past the honest prefix.
    assert session._delivered_through == baseline_tip
    assert session.stats.evictions == 0
